//! End-to-end mining walkthrough: generate a synthetic query log over a
//! topical corpus, run the full §3 stack (timeout sessions → query-flow
//! graph → logical sessions → shortcuts recommender → Algorithm 1), and
//! inspect the mined specialization model.
//!
//! Run with: `cargo run --example log_mining`

use serpdiv::corpus::{Testbed, TestbedConfig};
use serpdiv::mining::{AmbiguityDetector, QueryFlowGraph, ShortcutsModel, SpecializationModel};
use serpdiv::querylog::{split_sessions, FreqTable, LogConfig, QueryLogGenerator};

fn main() {
    // 1. A small topical world: 6 ambiguous topics with 3–6 subtopics.
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 6;
    let testbed = Testbed::generate(cfg);
    println!(
        "corpus: {} documents, {} ambiguous topics",
        testbed.num_docs(),
        testbed.topics.len()
    );

    // 2. Simulate three months of users refining ambiguous queries.
    let generator = QueryLogGenerator::new(
        LogConfig::aol_like(8_000),
        &testbed.topics,
        &testbed.background,
    );
    let (log, _truth) = generator.generate();
    println!(
        "log: {} submissions of {} distinct queries",
        log.len(),
        log.num_queries()
    );

    // 3. The §3 mining stack.
    let physical = split_sessions(&log);
    println!("physical sessions (30-min timeout): {}", physical.len());

    let qfg = QueryFlowGraph::build(&log, &physical);
    println!(
        "query-flow graph: {} nodes with out-edges, {} edges",
        qfg.num_nodes(),
        qfg.num_edges()
    );

    let logical = qfg.extract_logical_sessions(&log, &physical, 0.001);
    println!("logical sessions after QFG refinement: {}", logical.len());

    let shortcuts = ShortcutsModel::train(&log, &logical, 16);
    let freq = FreqTable::build(&log);
    let detector = AmbiguityDetector::new(&shortcuts, &freq, 10.0);
    let model = SpecializationModel::mine(&log, &detector);
    println!("\nmined {} ambiguous queries:", model.len());

    // 4. Inspect: the mined probabilities should track the ground-truth
    //    subtopic weights of each topic.
    for topic in &testbed.topics {
        let Some(entry) = model.get(&topic.query) else {
            println!("  {:<12} (not detected — too few sessions)", topic.query);
            continue;
        };
        println!("  {:<12} |Sq| = {}", entry.query, entry.len());
        for (spec, p) in entry.specializations.iter().take(3) {
            let truth = topic
                .subtopics
                .iter()
                .find(|s| &s.query == spec)
                .map(|s| format!("{:.2}", s.weight))
                .unwrap_or_else(|| "?".into());
            println!("      P = {p:.2} (ground truth {truth})  {spec}");
        }
    }

    // 5. The model serializes for deployment (§4.1).
    let json = model.to_json();
    println!(
        "\nserialized model: {} bytes ({} bytes in-memory estimate)",
        json.len(),
        model.byte_size()
    );
}
