//! Click-through analysis: attach simulated results and clicks to a
//! synthetic log and measure position bias and click entropy — the signal
//! Clough et al. use for ambiguity (and the paper's §6 "click-through
//! data" future-work direction).
//!
//! Run with: `cargo run --release --example click_analysis`

use serpdiv::corpus::{Testbed, TestbedConfig};
use serpdiv::index::SearchEngine;
use serpdiv::querylog::{ClickStats, LogConfig, QueryLogGenerator};

fn main() {
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 6;
    let testbed = Testbed::generate(cfg);
    let index = testbed.build_index();
    let engine = SearchEngine::new(&index);

    let mut log_cfg = LogConfig::msn_like(3_000);
    log_cfg.noise_fraction = 0.1;
    let generator = QueryLogGenerator::new(log_cfg, &testbed.topics, &testbed.background);
    let (mut log, _) = generator.generate();
    let filled = generator.attach_results(&mut log, &engine, 10);
    println!("attached results+clicks to {filled} records\n");

    // Position bias: CTR must decay with rank.
    let stats = ClickStats::build(&log);
    println!("rank  CTR");
    for rank in 0..10 {
        let ctr = stats.ctr_at(rank);
        let bar = "#".repeat((ctr * 80.0) as usize);
        println!("{:>4}  {:.3} {}", rank + 1, ctr, bar);
    }

    // Click entropy over *interpretations*: map every clicked document to
    // its subtopic (via the qrels) and measure the entropy of that
    // distribution per query. Ambiguous queries scatter clicks across
    // interpretations; specializations concentrate on one.
    let subtopic_entropy = |query: &str, topic: &serpdiv::corpus::Topic| -> f64 {
        let Some(qid) = log.query_id(query) else {
            return 0.0;
        };
        let mut counts = std::collections::HashMap::new();
        let mut total = 0u64;
        for r in log.records().iter().filter(|r| r.query == qid) {
            for c in &r.clicks {
                for sub in testbed.qrels.subtopics_of(topic.id, *c) {
                    *counts.entry(sub).or_insert(0u64) += 1;
                    total += 1;
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        counts
            .values()
            .map(|&n| {
                let p = n as f64 / total as f64;
                -p * p.log2()
            })
            .sum::<f64>()
            .max(0.0)
    };

    println!("\nclick entropy over interpretations (bits):");
    for topic in testbed.topics.iter().take(3) {
        let ambiguous = subtopic_entropy(&topic.query, topic);
        let spec = subtopic_entropy(&topic.subtopics[0].query, topic);
        println!(
            "  {:<12} ambiguous = {ambiguous:.2}   \"{}\" = {spec:.2}",
            topic.query, topic.subtopics[0].query
        );
    }
    println!("\nAmbiguous queries scatter clicks across interpretations — the");
    println!("Clough et al. signal that a query would benefit from diversification.");
}
