//! The paper's headline in one minute: OptSelect vs the greedy baselines
//! on a large candidate set — the |Rq| = 10 000, k ∈ {10, 1000} slice of
//! Table 2.
//!
//! Run with: `cargo run --release --example efficiency`

use serpdiv::prelude::*;
use std::time::Instant;

fn main() {
    // A Table-2-shaped workload: 10 000 candidates, 3–8 specializations,
    // precomputed utilities (the paper times the selection phase).
    use serpdiv::core::{Diversifier, IaSelect};
    let workload = serpdiv_bench_workload(10_000);

    println!("selection time on |Rq| = 10 000 (single query, release build)\n");
    println!("{:<11} {:>9} {:>11}", "algorithm", "k=10", "k=1000");
    let opt = OptSelect::new();
    let xq = XQuad::new();
    let ia = IaSelect::new();
    let time = |f: &dyn Fn(usize) -> Vec<usize>, k: usize| {
        let start = Instant::now();
        let out = f(k);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(out.len());
        ms
    };
    type Select<'a> = Box<dyn Fn(usize) -> Vec<usize> + 'a>;
    let rows: Vec<(&str, Select)> = vec![
        ("OptSelect", Box::new(|k| opt.select(&workload, k))),
        ("xQuAD", Box::new(|k| xq.select(&workload, k))),
        ("IASelect", Box::new(|k| ia.select(&workload, k))),
    ];
    let mut opt_1000 = 0.0;
    let mut worst_1000: f64 = 0.0;
    for (name, f) in &rows {
        let t10 = time(f.as_ref(), 10);
        let t1000 = time(f.as_ref(), 1000);
        if *name == "OptSelect" {
            opt_1000 = t1000;
        }
        worst_1000 = worst_1000.max(t1000);
        println!("{name:<11} {t10:>7.2}ms {t1000:>9.2}ms");
    }
    println!(
        "\nOptSelect is {:.0}x faster than the slowest greedy at k = 1000",
        worst_1000 / opt_1000.max(1e-9)
    );
    println!("(paper, Table 2: ~two orders of magnitude at the largest settings)");
}

/// One query of the Table 2 workload (inlined so the example is
/// self-contained; the bench crate has the full generator).
fn serpdiv_bench_workload(n: usize) -> serpdiv::core::DiversifyInput {
    use serpdiv::core::UtilityMatrix;
    let m = 5;
    let probs: Vec<f64> = {
        let raw: Vec<f64> = (0..m).map(|j| 1.0 / (j + 1) as f64).collect();
        let s: f64 = raw.iter().sum();
        raw.into_iter().map(|p| p / s).collect()
    };
    // Deterministic pseudo-random utilities: each doc serves one spec.
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut values = vec![0.0f64; n * m];
    let mut relevance = Vec::with_capacity(n);
    for i in 0..n {
        let primary = (next() * m as f64) as usize % m;
        values[i * m + primary] = 0.2 + 0.8 * next();
        relevance.push(next());
    }
    serpdiv::core::DiversifyInput::new(probs, relevance, UtilityMatrix::from_values(n, m, values))
}
