//! A miniature TREC 2009 Diversity-task run: build the synthetic testbed,
//! mine specializations from a synthetic log, diversify every topic with
//! all four algorithms, and score them with α-NDCG@20 and IA-P@20.
//!
//! This is the small sibling of the full Table 3 harness
//! (`cargo run -p serpdiv-bench --release --bin table3_effectiveness`).
//!
//! Run with: `cargo run --release --example trec_run`

use serpdiv::core::{AlgorithmKind, DiversificationPipeline, PipelineParams, UtilityParams};
use serpdiv::corpus::{Testbed, TestbedConfig};
use serpdiv::eval::{alpha_ndcg_at, ia_precision_at};
use serpdiv::index::SearchEngine;
use serpdiv::mining::{AmbiguityDetector, QueryFlowGraph, ShortcutsModel, SpecializationModel};
use serpdiv::querylog::{split_sessions, FreqTable, LogConfig, QueryLogGenerator};

fn main() {
    // Testbed: 12 topics keeps this example under a few seconds in release.
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 12;
    cfg.docs_per_subtopic = 20;
    // Near-topic junk pages make the relevance-only baseline beatable —
    // see DESIGN.md §2 on the distractor model.
    cfg.proportional_docs = true;
    cfg.distractors_per_topic = 60;
    let testbed = Testbed::generate(cfg);
    let index = testbed.build_index();
    let engine = SearchEngine::new(&index);

    // Mine the model from a synthetic log.
    let generator = QueryLogGenerator::new(
        LogConfig::aol_like(15_000),
        &testbed.topics,
        &testbed.background,
    );
    let (log, _) = generator.generate();
    let physical = split_sessions(&log);
    let qfg = QueryFlowGraph::build(&log, &physical);
    let logical = qfg.extract_logical_sessions(&log, &physical, 0.001);
    let shortcuts = ShortcutsModel::train(&log, &logical, 16);
    let freq = FreqTable::build(&log);
    let detector = AmbiguityDetector::new(&shortcuts, &freq, 20.0);
    let model = SpecializationModel::mine(&log, &detector);
    println!(
        "mined {} ambiguous queries from {} log records\n",
        model.len(),
        log.len()
    );

    let params = PipelineParams {
        k_spec_results: 20,
        utility: UtilityParams { threshold_c: 0.10 },
        ..PipelineParams::default()
    };
    let pipeline = DiversificationPipeline::new(&engine, &model, params);

    let systems = [
        ("DPH baseline", AlgorithmKind::Baseline),
        ("OptSelect", AlgorithmKind::OptSelect),
        ("xQuAD", AlgorithmKind::XQuad),
        ("IASelect", AlgorithmKind::IaSelect),
        ("MMR", AlgorithmKind::Mmr),
    ];
    println!("{:<14} {:>10} {:>9}", "system", "aNDCG@20", "IA-P@20");
    for (name, algo) in systems {
        let (mut andcg, mut iap) = (0.0, 0.0);
        for topic in &testbed.topics {
            let out = pipeline.diversify(&topic.query, 2_000, 1_000, algo);
            andcg += alpha_ndcg_at(&out.docs, &testbed.qrels, topic.id, 0.5, 20);
            iap += ia_precision_at(&out.docs, &testbed.qrels, topic.id, 20);
        }
        let n = testbed.topics.len() as f64;
        println!("{:<14} {:>10.3} {:>9.3}", name, andcg / n, iap / n);
    }
    println!("\nDiversifiers should beat the baseline on both diversity metrics");
    println!("(Table 3 of the paper shows the full c-threshold sweep).");
}
