//! Quickstart: index a handful of documents, declare an ambiguous query's
//! specializations, and diversify its results with OptSelect.
//!
//! Run with: `cargo run --example quickstart`

use serpdiv::core::{AlgorithmKind, DiversificationPipeline, PipelineParams, UtilityParams};
use serpdiv::index::{Document, IndexBuilder, SearchEngine};
use serpdiv::mining::SpecializationModel;

fn main() {
    // 1. Build a tiny web corpus: "jaguar" the car, the cat, the OS.
    let mut builder = IndexBuilder::new();
    let docs = [
        ("car", "jaguar xk sports car engine roadster speed luxury coupe"),
        ("car", "jaguar car dealership price leasing warranty motor drive"),
        ("car", "classic jaguar etype restoration engine chrome motor club"),
        ("cat", "jaguar big cat rainforest predator habitat prey jungle"),
        ("cat", "jaguar cat conservation amazon wildlife spotted fur jungle"),
        ("cat", "jaguar panther feline hunting territory south america jungle"),
        ("os", "jaguar mac os x operating system release apple software update"),
        ("os", "installing jaguar os x on older apple hardware software guide"),
    ];
    for (i, (kind, body)) in docs.iter().enumerate() {
        builder.add(Document::new(
            i as u32,
            format!("http://example.org/{kind}/{i}"),
            format!("jaguar {kind}"),
            body.to_string(),
        ));
    }
    let index = builder.build();
    let engine = SearchEngine::new(&index);

    // 2. The mined knowledge: "jaguar" is ambiguous with three popular
    //    specializations (normally produced by serpdiv-mining from a query
    //    log — see the `log_mining` example).
    let model = SpecializationModel::from_json(
        r#"{"entries":{"jaguar":{"query":"jaguar","specializations":[
            ["jaguar car",0.5],["jaguar cat",0.3],["jaguar os",0.2]]}}}"#,
    )
    .expect("valid model");

    // 3. Deploy the pipeline and compare the baseline with OptSelect.
    let params = PipelineParams {
        k_spec_results: 3,
        utility: UtilityParams { threshold_c: 0.3 },
        ..PipelineParams::default()
    };
    let pipeline = DiversificationPipeline::new(&engine, &model, params);

    println!("query: \"jaguar\" — top 3 results\n");
    for algo in [AlgorithmKind::Baseline, AlgorithmKind::OptSelect] {
        let out = pipeline.diversify("jaguar", 8, 3, algo);
        println!("{}:", out.algorithm);
        for (rank, doc) in out.docs.iter().enumerate() {
            let d = index.store().get(*doc).expect("stored");
            println!("  {}. {} — {}", rank + 1, d.title, d.url);
        }
        println!();
    }
    println!("The baseline ranks by DPH relevance alone; OptSelect packs all");
    println!("three interpretations into the first page (§1 of the paper).");
}
