//! Quickstart: index a handful of documents, declare an ambiguous query's
//! specializations, deploy the serving engine, and compare the baseline
//! with OptSelect — all through the `serve::SearchEngine` request API.
//!
//! Run with: `cargo run --example quickstart`

use serpdiv::core::{AlgorithmKind, PipelineParams, UtilityParams};
use serpdiv::index::{Document, IndexBuilder};
use serpdiv::mining::SpecializationModel;
use serpdiv::serve::{EngineConfig, QueryRequest, SearchEngine};
use std::sync::Arc;

fn main() {
    // 1. Build a tiny web corpus: "jaguar" the car, the cat, the OS.
    let mut builder = IndexBuilder::new();
    let docs = [
        (
            "car",
            "jaguar xk sports car engine roadster speed luxury coupe",
        ),
        (
            "car",
            "jaguar car dealership price leasing warranty motor drive",
        ),
        (
            "car",
            "classic jaguar etype restoration engine chrome motor club",
        ),
        (
            "cat",
            "jaguar big cat rainforest predator habitat prey jungle",
        ),
        (
            "cat",
            "jaguar cat conservation amazon wildlife spotted fur jungle",
        ),
        (
            "cat",
            "jaguar panther feline hunting territory south america jungle",
        ),
        (
            "os",
            "jaguar mac os x operating system release apple software update",
        ),
        (
            "os",
            "installing jaguar os x on older apple hardware software guide",
        ),
    ];
    for (i, (kind, body)) in docs.iter().enumerate() {
        builder.add(Document::new(
            i as u32,
            format!("http://example.org/{kind}/{i}"),
            format!("jaguar {kind}"),
            body.to_string(),
        ));
    }
    let index = Arc::new(builder.build());

    // 2. The mined knowledge: "jaguar" is ambiguous with three popular
    //    specializations (normally produced by serpdiv-mining from a query
    //    log — see the `log_mining` example).
    let model = Arc::new(
        SpecializationModel::from_json(
            r#"{"entries":{"jaguar":{"query":"jaguar","specializations":[
                ["jaguar car",0.5],["jaguar cat",0.3],["jaguar os",0.2]]}}}"#,
        )
        .expect("valid model"),
    );

    // 3. Deploy the serving engine: this builds the §4.1 specialization
    //    store eagerly, then serves any number of concurrent requests over
    //    the shared immutable index/model/store.
    let engine = SearchEngine::deploy(
        index.clone(),
        model,
        EngineConfig {
            n_candidates: 8,
            params: PipelineParams {
                k_spec_results: 3,
                utility: UtilityParams { threshold_c: 0.3 },
                ..PipelineParams::default()
            },
            ..EngineConfig::default()
        },
    );

    println!("query: \"jaguar\" — top 3 results\n");
    for algo in [AlgorithmKind::Baseline, AlgorithmKind::OptSelect] {
        let response = engine.search(QueryRequest::new("jaguar", 3, algo));
        println!("{}:", response.algorithm);
        for (rank, result) in response.results.iter().enumerate() {
            println!("  {}. {} — {}", rank + 1, result.title, result.url);
        }
        println!(
            "  ({} µs: retrieve {} + surrogates {} + utility {} + select {})\n",
            response.timings.total_us,
            response.timings.retrieve_us,
            response.timings.surrogate_us,
            response.timings.utility_us,
            response.timings.select_us,
        );
    }

    // 4. A repeated request is served from the sharded result cache.
    let again = engine.search(QueryRequest::new("jaguar", 3, AlgorithmKind::OptSelect));
    println!(
        "repeat request: cache_hit={} in {} µs (cache {:?})",
        again.cache_hit,
        again.timings.total_us,
        engine.cache().expect("enabled").stats(),
    );
    println!("\nThe baseline ranks by DPH relevance alone; OptSelect packs all");
    println!("three interpretations into the first page (§1 of the paper).");
}
