//! # serpdiv — Efficient Diversification of Web Search Results
//!
//! Facade crate re-exporting the whole `serpdiv` workspace: a from-scratch
//! Rust reproduction of *Capannini, Nardini, Perego, Silvestri — "Efficient
//! Diversification of Web Search Results", VLDB 2011*.
//!
//! The workspace layers, bottom-up:
//!
//! * [`text`] — tokenizer, Porter stemmer, stopwords, term dictionary;
//! * [`index`] — inverted index, DPH/BM25 ranking, snippets, TF-IDF
//!   vectors, and the [`Retriever`](serpdiv_index::Retriever) layer with
//!   sharded scatter-gather retrieval
//!   ([`ShardedIndex`](serpdiv_index::ShardedIndex));
//! * [`corpus`] — synthetic topical corpus + TREC-like topics/qrels
//!   (the ClueWeb-B stand-in);
//! * [`querylog`] — query-log records and AOL/MSN-like synthetic generators;
//! * [`mining`] — query-flow graph, search-shortcuts recommender, and
//!   Algorithm 1 (`AmbiguousQueryDetect`);
//! * [`core`] — the diversification framework: results' utility (Def. 2)
//!   with its compiled inverted-index fast path, **OptSelect**
//!   (Algorithm 2), IASelect, xQuAD, and MMR;
//! * [`eval`] — α-NDCG, IA-P, NDCG and the Wilcoxon signed-rank test;
//! * [`serve`] — the concurrent serving engine: a stage pipeline (Detect →
//!   Retrieve → Surrogate → Utility → Select) over shared immutable
//!   index/model/store, sharded LRU result and candidate-surrogate caches,
//!   worker pool, per-stage latency accounting and deadline degradation;
//! * [`fleet`] — multi-process scatter-gather: shard-worker processes
//!   behind a framed local-socket protocol, with a
//!   [`FleetRouter`](serpdiv_fleet::FleetRouter) that plugs into the
//!   serving engine as a [`Retriever`](serpdiv_index::Retriever), hedges
//!   slow shards, trips per-shard circuit breakers, and degrades
//!   gracefully when workers die;
//! * [`chaos`] — deterministic fault injection: named failpoints across
//!   pool/executor/stage/router/worker sites, inert unless a seeded
//!   [`FaultPlan`](serpdiv_chaos::FaultPlan) is armed (see
//!   `tests/chaos_soak.rs` for the harness that uses it).
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough and
//! `crates/bench` for the binaries regenerating every table and figure of
//! the paper plus the `serve_bench` serving benchmark.

pub use serpdiv_chaos as chaos;
pub use serpdiv_core as core;
pub use serpdiv_corpus as corpus;
pub use serpdiv_eval as eval;
pub use serpdiv_fleet as fleet;
pub use serpdiv_index as index;
pub use serpdiv_mining as mining;
pub use serpdiv_querylog as querylog;
pub use serpdiv_serve as serve;
pub use serpdiv_text as text;

/// Commonly used items, importable with `use serpdiv::prelude::*`.
///
/// Note the two engines: [`serpdiv_index::SearchEngine`] is the low-level
/// DPH retriever, while the serving engine lives at
/// [`serve::SearchEngine`](serpdiv_serve::SearchEngine) (its request types
/// are exported here).
pub mod prelude {
    pub use serpdiv_core::{
        AlgorithmKind, CompiledSpecStore, Diversifier, IaSelect, Mmr, OptSelect, UtilityMatrix,
        UtilityParams, XQuad,
    };
    pub use serpdiv_corpus::{Testbed, TestbedConfig};
    pub use serpdiv_eval::{alpha_ndcg_at, ia_precision_at, Qrels};
    pub use serpdiv_fleet::{FleetConfig, FleetRouter};
    pub use serpdiv_index::{
        Document, DocumentStore, IndexBuilder, Retriever, SearchEngine, ShardedIndex,
    };
    pub use serpdiv_mining::{AmbiguityDetector, SpecializationModel};
    pub use serpdiv_querylog::{LogConfig, QueryLog, QueryLogGenerator};
    pub use serpdiv_serve::{EngineConfig, QueryRequest, SearchResponse, WorkerPool};
    pub use serpdiv_text::Analyzer;
}
