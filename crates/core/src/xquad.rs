//! xQuAD — Santos et al.'s explicit query aspect diversification.
//!
//! §3.1.2: xQuAD greedily grows the solution by repeatedly picking the
//! document `d* ∈ R \ S` maximizing
//!
//! ```text
//! (1 − λ)·P(d|q) + λ·P(d, S̄|q)                                (Eq. 5)
//! P(d, S̄|q) = Σ_{q′∈Sq} P(q′|q)·P(d|q′)·Π_{dⱼ∈S}(1 − P(dⱼ|q′))  (Eq. 6)
//! ```
//!
//! In the paper's query-log adaptation `P(d|q′)` is measured by the
//! normalized utility `Ũ(d|R_q′)`. Like IASelect, the per-specialization
//! coverage product is maintained incrementally — `O(n·k·|Sq|)` (Table 1).
//! Unlike IASelect, xQuAD keeps the baseline relevance `P(d|q)` in the
//! selection criterion, mixed by λ.

use crate::candidates::DiversifyInput;
use crate::lazy::lazy_greedy;
use crate::Diversifier;

/// The xQuAD greedy algorithm.
#[derive(Debug, Clone, Copy)]
pub struct XQuad {
    /// Relevance/diversity mixing parameter (the paper uses λ = 0.15).
    pub lambda: f64,
}

impl Default for XQuad {
    fn default() -> Self {
        XQuad { lambda: 0.15 }
    }
}

impl XQuad {
    /// xQuAD with the paper's λ = 0.15.
    pub fn new() -> Self {
        Self::default()
    }

    /// xQuAD with a custom λ ∈ [0, 1].
    pub fn with_lambda(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "λ must lie in [0,1]");
        XQuad { lambda }
    }

    /// The pre-optimization full-rescan greedy, kept verbatim as the
    /// equivalence oracle for the lazy [`select`](Diversifier::select)
    /// (`tests/select_equivalence.rs` asserts identical index sequences).
    pub fn select_eager(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        let n = input.num_candidates();
        let m = input.num_specializations();
        let k = k.min(n);
        let mut selected = Vec::with_capacity(k);
        let mut in_s = vec![false; n];
        // Π_{dⱼ∈S}(1 − Ũ(dⱼ|R_q′)) per specialization.
        let mut uncovered = vec![1.0f64; m];

        for _ in 0..k {
            let mut best: Option<(f64, usize)> = None;
            for (i, &taken) in in_s.iter().enumerate() {
                if taken {
                    continue;
                }
                let row = input.utilities.row(i);
                let diversity: f64 = (0..m)
                    .map(|j| input.spec_probs[j] * row[j] * uncovered[j])
                    .sum();
                let score = (1.0 - self.lambda) * input.relevance[i] + self.lambda * diversity;
                let better = match best {
                    None => true,
                    Some((bs, bi)) => score > bs || (score == bs && i < bi),
                };
                if better {
                    best = Some((score, i));
                }
            }
            let Some((_, idx)) = best else { break };
            in_s[idx] = true;
            selected.push(idx);
            let row = input.utilities.row(idx);
            for j in 0..m {
                uncovered[j] *= 1.0 - row[j];
            }
        }
        selected
    }
}

impl Diversifier for XQuad {
    fn name(&self) -> &'static str {
        "xQuAD"
    }

    /// Exact lazy-greedy xQuAD (identical picks to
    /// [`select_eager`](XQuad::select_eager), `O(n log n + k·m)`-ish on
    /// typical inputs instead of `O(n·k·m)`).
    ///
    /// Staleness invariant: `uncovered[j]` only shrinks (each factor
    /// `1 − Ũ ∈ [0,1]`), every diversity summand
    /// `P(q′|q)·Ũ·uncovered` is non-negative, and f64 `+`/`×` are
    /// monotone — so a score computed in an earlier round upper-bounds
    /// the current one, which is exactly what [`lazy_greedy`] needs.
    fn select(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        let n = input.num_candidates();
        let m = input.num_specializations();
        // Both closures touch the uncovered-mass state; a RefCell gives
        // them disjoint dynamic borrows (the driver never overlaps them).
        let uncovered_cell = std::cell::RefCell::new(vec![1.0f64; m]);
        lazy_greedy(
            n,
            k,
            |i, _selected| {
                let uncovered = uncovered_cell.borrow();
                let row = input.utilities.row(i);
                let diversity: f64 = (0..m)
                    .map(|j| input.spec_probs[j] * row[j] * uncovered[j])
                    .sum();
                (
                    (1.0 - self.lambda) * input.relevance[i] + self.lambda * diversity,
                    0.0,
                )
            },
            |idx| {
                let mut uncovered = uncovered_cell.borrow_mut();
                let row = input.utilities.row(idx);
                for j in 0..m {
                    uncovered[j] *= 1.0 - row[j];
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityMatrix;

    fn input() -> DiversifyInput {
        #[rustfmt::skip]
        let u = vec![
            0.9, 0.0,
            0.8, 0.0,
            0.0, 0.7,
            0.0, 0.0,
        ];
        DiversifyInput::new(
            vec![0.6, 0.4],
            vec![1.0, 0.95, 0.5, 0.9],
            UtilityMatrix::from_values(4, 2, u),
        )
    }

    #[test]
    fn high_lambda_diversifies() {
        let inp = input();
        let s = XQuad::with_lambda(1.0).select(&inp, 2);
        // λ=1: first pick covers spec0 (0.6·0.9 beats 0.4·0.7); second
        // pick must switch to spec1 because spec0's mass collapsed.
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 2);
    }

    #[test]
    fn zero_lambda_is_pure_relevance() {
        let inp = input();
        let s = XQuad::with_lambda(0.0).select(&inp, 4);
        assert_eq!(s, vec![0, 1, 3, 2]);
    }

    #[test]
    fn default_lambda_balances() {
        let inp = input();
        let s = XQuad::new().select(&inp, 3);
        // With λ=0.15, relevance dominates but diversity still reorders
        // doc2 (covers an untouched specialization) relative to pure
        // relevance at some prefix. At minimum the output is valid.
        assert_eq!(s.len(), 3);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn redundant_documents_are_demoted() {
        // Two near-identical docs for spec0 and one for spec1: with a
        // diversity-leaning λ the spec1 doc outranks the duplicate.
        let u = UtilityMatrix::from_values(3, 2, vec![0.9, 0.0, 0.9, 0.0, 0.0, 0.8]);
        let inp = DiversifyInput::new(vec![0.5, 0.5], vec![1.0, 1.0, 0.6], u);
        let s = XQuad::with_lambda(0.9).select(&inp, 2);
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 2, "the duplicate doc1 must lose to doc2");
    }

    #[test]
    fn matches_paper_cost_model_shape() {
        // Smoke: n=200, m=5, k=20 runs and returns k distinct docs.
        let n = 200;
        let m = 5;
        let values: Vec<f64> = (0..n * m)
            .map(|x| ((x * 37) % 100) as f64 / 100.0)
            .collect();
        let probs = vec![0.2; 5];
        let rel: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 96.0).collect();
        let inp = DiversifyInput::new(probs, rel, UtilityMatrix::from_values(n, m, values));
        let s = XQuad::new().select(&inp, 20);
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn empty_input() {
        let inp = DiversifyInput::new(vec![], vec![], UtilityMatrix::from_values(0, 0, vec![]));
        assert!(XQuad::new().select(&inp, 5).is_empty());
    }
}
