//! Diversification framework — the paper's primary contribution.
//!
//! Implements the three algorithms compared in *Capannini et al., VLDB
//! 2011*, plus the classic MMR baseline, behind one [`Diversifier`] trait:
//!
//! * [`OptSelect`] — the paper's algorithm (Algorithm 2) solving the
//!   **MaxUtility Diversify(k)** problem in `O(n·|Sq|·log k)`,
//! * [`IaSelect`] — the greedy `(1−1/e)`-approximation of Agrawal et al.'s
//!   **QL Diversify(k)** (Eq. 4), `O(n·k·|Sq|)`,
//! * [`XQuad`] — Santos et al.'s greedy **xQuAD Diversify(k)** (Eq. 5–6),
//!   `O(n·k·|Sq|)`,
//! * [`Mmr`] — Carbonell & Goldstein's Maximal Marginal Relevance (the
//!   pioneering diversifier the related-work section starts from).
//!
//! Shared substrate:
//!
//! * [`utility`] — the paper's **results' utility** (Definition 2) with
//!   memoized harmonic-number normalization and the threshold `c` of §5,
//! * [`specindex`] — the compiled specialization store: surrogate lists
//!   folded into per-specialization weight rows and inverted into a
//!   `TermId → [(spec, weight)]` index, so a request scores each candidate
//!   against all its specializations with one sparse accumulation,
//! * [`candidates`] — the [`DiversifyInput`] bundle (`P(q′|q)`, `P(d|q)`,
//!   the `Ũ(d|R_q′)` matrix, optional surrogate vectors),
//! * [`heap`] — the bounded top-`m` heaps of Algorithm 2,
//! * [`framework`] — the end-to-end pipeline: specialization model →
//!   retrieval → snippets → utilities → selection, plus the §4.1
//!   precomputed store and its memory accounting.

pub mod baseline;
pub mod candidates;
pub mod framework;
pub mod heap;
pub mod iaselect;
mod lazy;
pub mod mmr;
pub mod optselect;
pub mod specindex;
pub mod utility;
pub mod xquad;

pub use baseline::BaselineRanking;
pub use candidates::DiversifyInput;
pub use framework::{
    assemble_input, assemble_input_from_surrogates, assemble_input_naive,
    assemble_input_with_scorer, candidate_surrogate, candidate_surrogate_naive,
    candidate_surrogates, candidate_surrogates_naive, run_algorithm, AlgorithmKind,
    DiversificationPipeline, DiversifiedRanking, PipelineParams, SpecializationStore,
};
pub use heap::BoundedHeap;
pub use iaselect::IaSelect;
pub use mmr::Mmr;
pub use optselect::OptSelect;
pub use specindex::{CompiledSpecStore, UtilityScorer};
pub use utility::{harmonic, UtilityMatrix, UtilityParams};
pub use xquad::XQuad;

/// A diversification algorithm: given the per-candidate relevance and
/// per-specialization utilities, choose and order `k` of the `n`
/// candidates.
///
/// All five [`AlgorithmKind`]s (including the [`BaselineRanking`] no-op)
/// implement this trait, and every dispatch site — [`run_algorithm`],
/// [`DiversificationPipeline::diversify_batch`], the serving select stage
/// — goes through trait objects built by [`AlgorithmKind::diversifier`].
///
/// # Example
///
/// ```
/// use serpdiv_core::{AlgorithmKind, Diversifier, DiversifyInput, PipelineParams, UtilityMatrix};
///
/// // Two candidates, two specializations: candidate 0 covers only spec 0,
/// // candidate 1 only spec 1 — a diversified top-2 must keep both.
/// let input = DiversifyInput::new(
///     vec![0.5, 0.5],
///     vec![1.0, 0.9],
///     UtilityMatrix::from_values(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
/// );
/// let diversifier: Box<dyn Diversifier + Send + Sync> =
///     AlgorithmKind::OptSelect.diversifier(&PipelineParams::default());
/// let mut picks = diversifier.select(&input, 2);
/// picks.sort_unstable();
/// assert_eq!(picks, vec![0, 1]);
/// ```
pub trait Diversifier {
    /// Human-readable algorithm name (used by the bench tables).
    fn name(&self) -> &'static str;

    /// Select up to `k` candidate indices (into `input`'s candidate axis),
    /// in final ranking order. Must return `min(k, n)` distinct indices.
    fn select(&self, input: &DiversifyInput, k: usize) -> Vec<usize>;
}
