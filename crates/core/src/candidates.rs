//! The diversification input bundle.
//!
//! Every algorithm of the framework consumes the same precomputed
//! quantities (this mirrors the paper's efficiency evaluation, whose cost
//! model counts selection work, with utilities as inputs):
//!
//! * `spec_probs[j]` — `P(q′_j|q)`, the specialization distribution of
//!   Definition 1 (sums to 1),
//! * `relevance[i]` — `P(dᵢ|q)`, the normalized baseline-retrieval score,
//! * `utilities[i][j]` — `Ũ(dᵢ|R_{q′_j})` (Definition 2, thresholded),
//! * `vectors` — optional snippet surrogates, needed only by [`Mmr`]
//!   (pairwise document similarity is not part of the paper's three
//!   algorithms).
//!
//! [`Mmr`]: crate::mmr::Mmr

use crate::utility::UtilityMatrix;
use serpdiv_index::SparseVector;
use std::sync::Arc;

/// Input to a [`Diversifier`](crate::Diversifier).
#[derive(Debug, Clone)]
pub struct DiversifyInput {
    /// `P(q′|q)` per specialization; sums to 1 (validated).
    pub spec_probs: Vec<f64>,
    /// `P(d|q)` per candidate, in `[0, 1]`, candidate order = the baseline
    /// ranking `Rq` (index 0 = rank 1).
    pub relevance: Vec<f64>,
    /// `Ũ(d|R_q′)` matrix, `n × m`.
    pub utilities: UtilityMatrix,
    /// Snippet surrogate vectors (candidate order), for similarity-based
    /// baselines; `None` when only the paper's algorithms run. `Arc`'d so
    /// serving layers can share memoized surrogates without copying.
    pub vectors: Option<Vec<Arc<SparseVector>>>,
}

impl DiversifyInput {
    /// Bundle and validate the inputs.
    ///
    /// # Panics
    /// Panics when dimensions disagree, probabilities don't sum to ≈ 1,
    /// or relevance values leave `[0, 1]`.
    pub fn new(spec_probs: Vec<f64>, relevance: Vec<f64>, utilities: UtilityMatrix) -> Self {
        assert_eq!(
            utilities.num_candidates(),
            relevance.len(),
            "one relevance value per candidate"
        );
        assert_eq!(
            utilities.num_specializations(),
            spec_probs.len(),
            "one probability per specialization"
        );
        if !spec_probs.is_empty() {
            let total: f64 = spec_probs.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-6,
                "specialization probabilities must sum to 1, got {total}"
            );
            assert!(spec_probs.iter().all(|&p| p >= 0.0));
        }
        assert!(
            relevance.iter().all(|r| (0.0..=1.0).contains(r)),
            "relevance must be normalized to [0,1]"
        );
        DiversifyInput {
            spec_probs,
            relevance,
            utilities,
            vectors: None,
        }
    }

    /// Attach surrogate vectors (enables MMR).
    ///
    /// # Panics
    /// Panics when the vector count differs from the candidate count.
    pub fn with_vectors(mut self, vectors: Vec<Arc<SparseVector>>) -> Self {
        assert_eq!(vectors.len(), self.num_candidates());
        self.vectors = Some(vectors);
        self
    }

    /// Number of candidates `n = |Rq|`.
    pub fn num_candidates(&self) -> usize {
        self.relevance.len()
    }

    /// Number of specializations `|Sq|`.
    pub fn num_specializations(&self) -> usize {
        self.spec_probs.len()
    }

    /// The paper's Eq. 9 — the overall utility of candidate `i`:
    ///
    /// ```text
    /// Ũ(d|q) = Σ_{q′∈Sq} (1−λ)·P(d|q) + λ·P(q′|q)·Ũ(d|R_q′)
    ///        = (1−λ)·|Sq|·P(d|q) + λ·Σ_j P(q′_j|q)·Ũ(d|R_q′_j)
    /// ```
    pub fn overall_utility(&self, i: usize, lambda: f64) -> f64 {
        let m = self.num_specializations();
        let rel = (1.0 - lambda) * m as f64 * self.relevance[i];
        let util: f64 = self
            .utilities
            .row(i)
            .iter()
            .zip(&self.spec_probs)
            .map(|(&u, &p)| p * u)
            .sum();
        rel + lambda * util
    }

    /// Normalize raw retrieval scores into `[0, 1]` relevance (max-norm;
    /// an empty or all-equal list maps to all-ones).
    pub fn normalize_scores(scores: &[f64]) -> Vec<f64> {
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        if scores.is_empty() {
            return Vec::new();
        }
        if !(max.is_finite() && min.is_finite()) || (max - min) < 1e-12 {
            return vec![1.0; scores.len()];
        }
        scores.iter().map(|&s| (s - min) / (max - min)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> DiversifyInput {
        // 3 candidates × 2 specializations.
        let u = UtilityMatrix::from_values(3, 2, vec![0.8, 0.0, 0.0, 0.6, 0.2, 0.2]);
        DiversifyInput::new(vec![0.7, 0.3], vec![1.0, 0.8, 0.5], u)
    }

    #[test]
    fn dimensions() {
        let inp = input();
        assert_eq!(inp.num_candidates(), 3);
        assert_eq!(inp.num_specializations(), 2);
    }

    #[test]
    fn overall_utility_matches_equation_nine() {
        let inp = input();
        let lambda = 0.15;
        // Candidate 0: (1-λ)·2·1.0 + λ·(0.7·0.8 + 0.3·0.0)
        let expected = 0.85 * 2.0 * 1.0 + 0.15 * (0.7 * 0.8);
        assert!((inp.overall_utility(0, lambda) - expected).abs() < 1e-12);
        // λ = 1: pure diversification utility.
        assert!((inp.overall_utility(2, 1.0) - (0.7 * 0.2 + 0.3 * 0.2)).abs() < 1e-12);
        // λ = 0: pure relevance (scaled by |Sq|).
        assert!((inp.overall_utility(1, 0.0) - 2.0 * 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_panic() {
        let u = UtilityMatrix::from_values(1, 2, vec![0.0, 0.0]);
        let _ = DiversifyInput::new(vec![0.9, 0.9], vec![1.0], u);
    }

    #[test]
    #[should_panic(expected = "per candidate")]
    fn mismatched_relevance_panics() {
        let u = UtilityMatrix::from_values(2, 1, vec![0.0, 0.0]);
        let _ = DiversifyInput::new(vec![1.0], vec![1.0], u);
    }

    #[test]
    fn normalize_scores_maps_to_unit_interval() {
        let scores = vec![2.0, 6.0, 4.0];
        let norm = DiversifyInput::normalize_scores(&scores);
        assert_eq!(norm, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn normalize_constant_scores() {
        assert_eq!(
            DiversifyInput::normalize_scores(&[3.0, 3.0]),
            vec![1.0, 1.0]
        );
        assert!(DiversifyInput::normalize_scores(&[]).is_empty());
    }

    #[test]
    fn zero_specializations_is_allowed() {
        // Non-ambiguous queries flow through with m = 0 (pure baseline).
        let u = UtilityMatrix::from_values(2, 0, vec![]);
        let inp = DiversifyInput::new(vec![], vec![1.0, 0.5], u);
        assert_eq!(inp.overall_utility(0, 0.5), 0.0);
    }
}
