//! Results' utility — Definition 2 of the paper.
//!
//! The utility of a result `d ∈ Rq` for a specialization `q′` is
//!
//! ```text
//! U(d|R_q′) = Σ_{d′ ∈ R_q′} (1 − δ(d, d′)) / rank(d′, R_q′)        (Eq. 1)
//! δ(d₁,d₂)  = 1 − cosine(d₁, d₂)                                   (Eq. 2)
//! ```
//!
//! "a result d ∈ Rq is more useful for specialization q′ if it is very
//! similar to a highly ranked item contained in the results list R_q′."
//!
//! The normalized utility divides by the harmonic number `H_{|R_q′|}` (the
//! value U would take if `d` were at distance 0 from every item), bringing
//! `Ũ` into `[0, 1]`. §5 additionally forces the value to 0 when it falls
//! below a threshold `c` — Table 3 sweeps `c` over nine values.

use serde::{Deserialize, Serialize};
use serpdiv_index::{cosine64, SparseVector};
use std::sync::OnceLock;

/// Size of the memoized prefix of harmonic numbers. `|R_q′|` is 20 in the
/// paper and rarely above a few hundred in any configuration; 4096 covers
/// every realistic list length with a 32 KiB table.
const HARMONIC_TABLE: usize = 4096;

fn harmonic_table() -> &'static [f64; HARMONIC_TABLE + 1] {
    static TABLE: OnceLock<Box<[f64; HARMONIC_TABLE + 1]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([0.0f64; HARMONIC_TABLE + 1]);
        for i in 1..=HARMONIC_TABLE {
            // Same ascending recurrence as the direct sum, so memoized
            // values are bitwise-identical to the unmemoized ones.
            t[i] = t[i - 1] + 1.0 / i as f64;
        }
        t
    })
}

/// `H_n = Σ_{i=1..n} 1/i`; `H_0 = 0`.
///
/// Memoized: the first [`HARMONIC_TABLE`] values come from a
/// once-initialized table (the utility stage asks for `H_{|R_q′|}` for
/// every candidate × specialization cell); larger arguments extend the
/// table's last entry by the remaining terms, preserving the ascending
/// summation order of the direct definition.
pub fn harmonic(n: usize) -> f64 {
    let table = harmonic_table();
    if n <= HARMONIC_TABLE {
        table[n]
    } else {
        (HARMONIC_TABLE + 1..=n).fold(table[HARMONIC_TABLE], |h, i| h + 1.0 / i as f64)
    }
}

/// Parameters of the utility computation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UtilityParams {
    /// The §5 threshold `c`: normalized utilities below `c` are forced
    /// to 0. `c = 0` keeps every positive utility.
    pub threshold_c: f64,
}

impl Default for UtilityParams {
    fn default() -> Self {
        // §5: OptSelect performs best for c ∈ {0, 0.05}; 0 is neutral.
        UtilityParams { threshold_c: 0.0 }
    }
}

/// Raw utility `U(d|R_q′)` of a candidate surrogate against the ranked
/// result list of one specialization (Eq. 1).
///
/// Cosines are evaluated in double precision ([`cosine64`]) so this naive
/// per-pair evaluation is the *reference oracle* for the compiled fast
/// path ([`crate::specindex`]), which computes the algebraically identical
/// sum in a different association order.
pub fn utility(candidate: &SparseVector, spec_results: &[SparseVector]) -> f64 {
    spec_results
        .iter()
        .enumerate()
        .map(|(i, d2)| cosine64(candidate, d2) / (i + 1) as f64)
        .sum()
}

/// Normalized utility `Ũ(d|R_q′) = U(d|R_q′)/H_{|R_q′|}`, thresholded by
/// `c` (returns 0 when below `c` or when the list is empty).
pub fn normalized_utility(
    candidate: &SparseVector,
    spec_results: &[SparseVector],
    params: UtilityParams,
) -> f64 {
    if spec_results.is_empty() {
        return 0.0;
    }
    let u = utility(candidate, spec_results) / harmonic(spec_results.len());
    if u < params.threshold_c {
        0.0
    } else {
        u
    }
}

/// Dense `n × m` matrix of `Ũ(dᵢ | R_{q′_j})` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityMatrix {
    n: usize,
    m: usize,
    values: Vec<f64>,
    /// `coverage[j] = |{i : values[i][j] > 0}|` — precomputed at
    /// construction because selection algorithms (and the property suite)
    /// probe it per specialization per round.
    coverage: Vec<usize>,
}

fn count_coverage(n: usize, m: usize, values: &[f64]) -> Vec<usize> {
    let mut coverage = vec![0usize; m];
    for row in values.chunks_exact(m.max(1)).take(n) {
        for (c, &v) in coverage.iter_mut().zip(row) {
            if v > 0.0 {
                *c += 1;
            }
        }
    }
    coverage
}

impl UtilityMatrix {
    /// Compute the matrix from candidate surrogates and each
    /// specialization's ranked surrogate list. `candidates` may hold
    /// owned, borrowed or `Arc`'d vectors.
    pub fn compute<V: std::borrow::Borrow<SparseVector>>(
        candidates: &[V],
        spec_results: &[Vec<SparseVector>],
        params: UtilityParams,
    ) -> Self {
        let n = candidates.len();
        let m = spec_results.len();
        let mut values = Vec::with_capacity(n * m);
        for cand in candidates {
            for spec in spec_results {
                values.push(normalized_utility(cand.borrow(), spec, params));
            }
        }
        let coverage = count_coverage(n, m, &values);
        UtilityMatrix {
            n,
            m,
            values,
            coverage,
        }
    }

    /// Build directly from precomputed values (row-major `n × m`).
    ///
    /// # Panics
    /// Panics when `values.len() != n·m`, or any value is outside `[0, 1]`.
    pub fn from_values(n: usize, m: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n * m, "dimension mismatch");
        assert!(
            values.iter().all(|v| (0.0..=1.0).contains(v)),
            "normalized utilities must lie in [0,1]"
        );
        let coverage = count_coverage(n, m, &values);
        UtilityMatrix {
            n,
            m,
            values,
            coverage,
        }
    }

    /// Number of candidates (rows).
    pub fn num_candidates(&self) -> usize {
        self.n
    }

    /// Number of specializations (columns).
    pub fn num_specializations(&self) -> usize {
        self.m
    }

    /// `Ũ(dᵢ | R_{q′_j})`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.m);
        self.values[i * self.m + j]
    }

    /// The row of candidate `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.m..(i + 1) * self.m]
    }

    /// Number of candidates with positive utility for specialization `j` —
    /// `|Rq ⋈ q′|` in the MaxUtility Diversify(k) constraint. `O(1)`: the
    /// counts are computed once at construction.
    pub fn coverage(&self, j: usize) -> usize {
        self.coverage[j]
    }

    /// Apply (or tighten) a threshold after construction.
    pub fn with_threshold(mut self, c: f64) -> Self {
        for v in &mut self.values {
            if *v < c {
                *v = 0.0;
            }
        }
        self.coverage = count_coverage(self.n, self.m, &self.values);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_text::TermId;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn harmonic_numbers() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_memoization_matches_direct_sum() {
        // Table region and the lazy extension past it must both agree with
        // the ascending direct sum, bitwise.
        for n in [
            1usize,
            20,
            HARMONIC_TABLE,
            HARMONIC_TABLE + 1,
            HARMONIC_TABLE + 37,
        ] {
            let direct = (1..=n).fold(0.0f64, |h, i| h + 1.0 / i as f64);
            assert_eq!(harmonic(n), direct, "n={n}");
        }
    }

    #[test]
    fn identical_top_ranked_doc_gives_max_contribution() {
        let d = v(&[(1, 1.0)]);
        let spec = vec![d.clone(), v(&[(2, 1.0)])];
        // cosine(d, spec[0]) = 1 at rank 1; cosine with spec[1] = 0.
        assert!((utility(&d, &spec) - 1.0).abs() < 1e-9);
        // Normalized by H_2 = 1.5.
        let u = normalized_utility(&d, &spec, UtilityParams::default());
        assert!((u - 1.0 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn rank_discount_matters() {
        let d = v(&[(1, 1.0)]);
        let other = v(&[(9, 1.0)]);
        let high = vec![d.clone(), other.clone()]; // match at rank 1
        let low = vec![other, d.clone()]; // match at rank 2
        assert!(utility(&d, &high) > utility(&d, &low));
    }

    #[test]
    fn perfect_match_everywhere_normalizes_to_one() {
        let d = v(&[(1, 2.0)]);
        let spec = vec![d.clone(), d.clone(), d.clone()];
        let u = normalized_utility(&d, &spec, UtilityParams::default());
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_zeroes_small_values() {
        let d = v(&[(1, 1.0), (2, 1.0)]);
        let spec = vec![v(&[(2, 1.0), (3, 1.0)])]; // cosine = 0.5
        let free = normalized_utility(&d, &spec, UtilityParams { threshold_c: 0.0 });
        assert!(free > 0.0);
        let strict = normalized_utility(&d, &spec, UtilityParams { threshold_c: 0.9 });
        assert_eq!(strict, 0.0);
    }

    #[test]
    fn empty_spec_list_has_zero_utility() {
        let d = v(&[(1, 1.0)]);
        assert_eq!(normalized_utility(&d, &[], UtilityParams::default()), 0.0);
    }

    #[test]
    fn matrix_layout_and_coverage() {
        let c0 = v(&[(1, 1.0)]);
        let c1 = v(&[(2, 1.0)]);
        let spec0 = vec![v(&[(1, 1.0)])]; // matches c0 only
        let spec1 = vec![v(&[(2, 1.0)])]; // matches c1 only
        let m = UtilityMatrix::compute(&[c0, c1], &[spec0, spec1], UtilityParams::default());
        assert_eq!(m.num_candidates(), 2);
        assert_eq!(m.num_specializations(), 2);
        assert!(m.get(0, 0) > 0.9 && m.get(0, 1) == 0.0);
        assert!(m.get(1, 1) > 0.9 && m.get(1, 0) == 0.0);
        assert_eq!(m.coverage(0), 1);
        assert_eq!(m.coverage(1), 1);
        assert_eq!(m.row(0), &[m.get(0, 0), m.get(0, 1)]);
    }

    #[test]
    fn with_threshold_tightens() {
        let m = UtilityMatrix::from_values(1, 3, vec![0.1, 0.5, 0.9]).with_threshold(0.4);
        assert_eq!(m.row(0), &[0.0, 0.5, 0.9]);
        // Precomputed coverage counts must track the thresholding.
        assert_eq!((m.coverage(0), m.coverage(1), m.coverage(2)), (0, 1, 1));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn bad_dimensions_panic() {
        let _ = UtilityMatrix::from_values(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn out_of_range_values_panic() {
        let _ = UtilityMatrix::from_values(1, 1, vec![1.5]);
    }
}
