//! The baseline "diversifier": the DPH ranking served unchanged.
//!
//! Folding the no-op into the [`Diversifier`] trait lets every dispatch
//! site — [`run_algorithm`](crate::framework::run_algorithm), batch
//! drivers, the serving select stage — treat all five
//! [`AlgorithmKind`](crate::framework::AlgorithmKind)s uniformly as trait
//! objects instead of special-casing the passthrough.

use crate::candidates::DiversifyInput;
use crate::Diversifier;

/// Serves the candidate order as-is (the input's candidate axis *is* the
/// baseline ranking `Rq`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineRanking;

impl Diversifier for BaselineRanking {
    fn name(&self) -> &'static str {
        "DPH"
    }

    fn select(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        (0..input.num_candidates().min(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityMatrix;

    fn input(n: usize) -> DiversifyInput {
        DiversifyInput::new(
            vec![1.0],
            vec![1.0; n],
            UtilityMatrix::from_values(n, 1, vec![0.0; n]),
        )
    }

    #[test]
    fn first_k_in_order() {
        let b = BaselineRanking;
        assert_eq!(b.select(&input(5), 3), vec![0, 1, 2]);
        assert_eq!(b.select(&input(2), 10), vec![0, 1]);
        assert!(b.select(&input(4), 0).is_empty());
        assert_eq!(b.name(), "DPH");
    }
}
