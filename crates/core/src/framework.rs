//! The end-to-end diversification framework.
//!
//! Wires the whole paper pipeline together (§3, §4.1): given a submitted
//! query,
//!
//! 1. look it up in the mined [`SpecializationModel`] — a miss means "not
//!    ambiguous", and the baseline ranking is served unchanged;
//! 2. retrieve the candidate set `Rq` with the DPH engine;
//! 3. fetch the per-specialization result surrogates `R_q′` from the
//!    [`SpecializationStore`] (precomputed at deployment time, exactly the
//!    data structure whose footprint §4.1 budgets as `N·|S_q̂|·|R_q̂′|·L`);
//! 4. compute the snippet surrogates of the candidates and the utility
//!    matrix `Ũ(d|R_q′)` (Definition 2, threshold `c`);
//! 5. run the chosen [`Diversifier`] and return the re-ranked SERP.

use crate::candidates::DiversifyInput;
use crate::iaselect::IaSelect;
use crate::mmr::Mmr;
use crate::optselect::OptSelect;
use crate::specindex::{CompiledSpecStore, UtilityScorer};
use crate::utility::{UtilityMatrix, UtilityParams};
use crate::xquad::XQuad;
use crate::Diversifier;
use serpdiv_index::{
    DocId, ForwardIndex, InvertedIndex, ScoredDoc, SearchEngine, SnippetGenerator, SparseVector,
};
use serpdiv_mining::{SpecializationEntry, SpecializationModel};
use std::collections::HashMap;
use std::sync::Arc;

/// Which algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// No diversification: the DPH ranking as-is.
    Baseline,
    /// The paper's OptSelect (Algorithm 2).
    OptSelect,
    /// Agrawal et al.'s greedy, adapted (QL Diversify(k)).
    IaSelect,
    /// Santos et al.'s xQuAD.
    XQuad,
    /// Carbonell & Goldstein's MMR.
    Mmr,
}

impl AlgorithmKind {
    /// Instantiate the [`Diversifier`] this kind names, parameterized by
    /// `params` — the single construction point behind every dispatch
    /// site (`run_algorithm`, batch drivers, the serving select stage).
    ///
    /// ```
    /// use serpdiv_core::{AlgorithmKind, PipelineParams};
    ///
    /// let diversifier = AlgorithmKind::OptSelect.diversifier(&PipelineParams::default());
    /// assert_eq!(diversifier.name(), "OptSelect");
    /// ```
    pub fn diversifier(self, params: &PipelineParams) -> Box<dyn Diversifier + Send + Sync> {
        match self {
            AlgorithmKind::Baseline => Box::new(crate::baseline::BaselineRanking),
            AlgorithmKind::OptSelect => Box::new(OptSelect::with_lambda(params.lambda)),
            AlgorithmKind::IaSelect => Box::new(IaSelect::new()),
            AlgorithmKind::XQuad => Box::new(XQuad::with_lambda(params.lambda)),
            AlgorithmKind::Mmr => Box::new(Mmr::with_lambda(params.mmr_lambda)),
        }
    }
}

/// Pipeline parameters (defaults follow §5's experimental setup).
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// `|R_q′|`: results kept per specialization (paper: 20).
    pub k_spec_results: usize,
    /// λ for OptSelect/xQuAD (paper: 0.15).
    pub lambda: f64,
    /// λ for MMR (conventional 0.5).
    pub mmr_lambda: f64,
    /// Utility parameters (threshold `c`).
    pub utility: UtilityParams,
    /// Snippet window in tokens (document surrogates).
    pub snippet_window: usize,
    /// Candidate-set size from which utility-matrix rows are computed in
    /// parallel (scoped threads, one row-chunk each; results are identical
    /// to the sequential path). Typical serving requests (`n ≈ 100`) stay
    /// sequential; batch/offline callers with thousands of candidates
    /// cross this threshold. `usize::MAX` disables parallelism.
    pub utility_parallel_threshold: usize,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            k_spec_results: 20,
            lambda: 0.15,
            mmr_lambda: 0.5,
            utility: UtilityParams::default(),
            snippet_window: 30,
            utility_parallel_threshold: 1024,
        }
    }
}

/// Precomputed per-specialization result surrogates — the deployable §4.1
/// data structure.
#[derive(Debug, Default)]
pub struct SpecializationStore {
    /// specialization text → ranked surrogate vectors (rank 1 first) with
    /// the byte length of the snippet each was built from.
    entries: HashMap<String, Vec<(SparseVector, usize)>>,
}

impl SpecializationStore {
    /// Build the store: one retrieval of `k_spec` results per distinct
    /// specialization in `model`, snippet extraction, vectorization.
    pub fn build(
        model: &SpecializationModel,
        engine: &SearchEngine<'_>,
        k_spec: usize,
        snippet_window: usize,
    ) -> Self {
        let index = engine.index();
        let snippets = SnippetGenerator::with_window(snippet_window);
        let mut entries: HashMap<String, Vec<(SparseVector, usize)>> = HashMap::new();
        for entry in model.iter() {
            for (spec, _) in &entry.specializations {
                if entries.contains_key(spec) {
                    continue;
                }
                let terms = index.analyze_query(spec);
                let hits = engine.search(spec, k_spec);
                let list: Vec<(SparseVector, usize)> = hits
                    .iter()
                    .filter_map(|h| index.store().get(h.doc))
                    .map(|doc| {
                        let snip = snippets.snippet(doc, &terms, index.vocab());
                        let vec = SparseVector::from_text(&snip, index);
                        (vec, snip.len())
                    })
                    .collect();
                entries.insert(spec.clone(), list);
            }
        }
        SpecializationStore { entries }
    }

    /// The ranked surrogates of `spec` (empty slice when unknown).
    pub fn surrogates(&self, spec: &str) -> &[(SparseVector, usize)] {
        self.entries.get(spec).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate `(specialization, ranked surrogates)` pairs (arbitrary
    /// order) — the compilation input of
    /// [`CompiledSpecStore::compile`](crate::specindex::CompiledSpecStore::compile).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(SparseVector, usize)])> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct specializations stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Measured memory footprint in bytes: vectors + snippet text — the
    /// quantity §4.1 bounds by `N · |S_q̂| · |R_q̂′| · L`.
    pub fn byte_size(&self) -> usize {
        self.entries
            .iter()
            .map(|(spec, list)| {
                spec.len()
                    + list
                        .iter()
                        .map(|(v, snippet_len)| v.byte_size() + snippet_len)
                        .sum::<usize>()
            })
            .sum()
    }

    /// Average snippet length `L` in bytes (for comparing against the
    /// back-of-the-envelope bound).
    pub fn avg_snippet_len(&self) -> f64 {
        let (sum, count) = self
            .entries
            .values()
            .flatten()
            .fold((0usize, 0usize), |(s, c), (_, l)| (s + l, c + 1));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// A diversified (or baseline) SERP.
#[derive(Debug, Clone)]
pub struct DiversifiedRanking {
    /// The ranked documents.
    pub docs: Vec<DocId>,
    /// Whether diversification ran (false ⇒ baseline passthrough: the
    /// query was not ambiguous or retrieval was empty).
    pub diversified: bool,
    /// Name of the algorithm that produced the ranking.
    pub algorithm: &'static str,
}

/// The assembled pipeline.
pub struct DiversificationPipeline<'a> {
    engine: &'a SearchEngine<'a>,
    model: &'a SpecializationModel,
    store: SpecializationStore,
    compiled: CompiledSpecStore,
    forward: ForwardIndex,
    params: PipelineParams,
}

impl<'a> DiversificationPipeline<'a> {
    /// Deploy the pipeline: builds the [`SpecializationStore`] eagerly,
    /// compiles it into the inverted utility index, and compiles the
    /// [`ForwardIndex`] for zero-string snippet surrogates (all one-off
    /// offline deployment steps of §4.1).
    pub fn new(
        engine: &'a SearchEngine<'a>,
        model: &'a SpecializationModel,
        params: PipelineParams,
    ) -> Self {
        let store =
            SpecializationStore::build(model, engine, params.k_spec_results, params.snippet_window);
        let compiled = CompiledSpecStore::compile(&store);
        let forward = ForwardIndex::build(engine.index());
        DiversificationPipeline {
            engine,
            model,
            store,
            compiled,
            forward,
            params,
        }
    }

    /// The underlying store (footprint experiments).
    pub fn store(&self) -> &SpecializationStore {
        &self.store
    }

    /// The compiled inverted utility index the request path scores
    /// against.
    pub fn compiled(&self) -> &CompiledSpecStore {
        &self.compiled
    }

    /// The compiled forward index the surrogate stage scans.
    pub fn forward(&self) -> &ForwardIndex {
        &self.forward
    }

    /// The pipeline parameters.
    pub fn params(&self) -> PipelineParams {
        self.params
    }

    /// Retrieve `n` candidates for `query` and assemble the
    /// [`DiversifyInput`] — `None` when the query is not ambiguous (or
    /// nothing was retrieved), in which case the caller serves the
    /// baseline. Exposed so benches can reuse one input across algorithms.
    pub fn build_input(
        &self,
        query: &str,
        n_candidates: usize,
    ) -> Option<(Vec<ScoredDoc>, DiversifyInput)> {
        let entry = self.model.get(query)?;
        let baseline = self.engine.search(query, n_candidates);
        if baseline.is_empty() {
            return None;
        }
        let input = assemble_input(
            self.engine.index(),
            &self.forward,
            entry,
            &self.compiled,
            &self.params,
            query,
            &baseline,
        );
        Some((baseline, input))
    }

    /// Run the full pipeline for `query`: retrieve `n_candidates`, pick
    /// `k` with `algo`.
    pub fn diversify(
        &self,
        query: &str,
        n_candidates: usize,
        k: usize,
        algo: AlgorithmKind,
    ) -> DiversifiedRanking {
        self.diversify_with(
            query,
            n_candidates,
            k,
            algo,
            &*algo.diversifier(&self.params),
        )
    }

    /// [`diversify`](Self::diversify) with a caller-provided
    /// [`Diversifier`] instance, so batch drivers construct the trait
    /// object once and share it across queries (and worker threads).
    /// `diversifier` should be `algo.diversifier(&params)` — `algo` still
    /// decides the fast paths (a `Baseline` request skips ambiguity
    /// detection entirely and retrieves exactly `k`).
    pub fn diversify_with(
        &self,
        query: &str,
        n_candidates: usize,
        k: usize,
        algo: AlgorithmKind,
        diversifier: &(dyn Diversifier + Sync),
    ) -> DiversifiedRanking {
        let passthrough = |algorithm| {
            let docs = self
                .engine
                .search(query, k)
                .into_iter()
                .map(|h| h.doc)
                .collect();
            DiversifiedRanking {
                docs,
                diversified: false,
                algorithm,
            }
        };
        if algo == AlgorithmKind::Baseline {
            return passthrough("DPH");
        }
        let Some((baseline, input)) = self.build_input(query, n_candidates) else {
            return passthrough("DPH (passthrough)");
        };
        let indices = diversifier.select(&input, k);
        DiversifiedRanking {
            docs: indices.into_iter().map(|i| baseline[i].doc).collect(),
            diversified: true,
            algorithm: diversifier.name(),
        }
    }
}

impl DiversificationPipeline<'_> {
    /// Diversify a batch of queries in parallel over `workers` threads
    /// (std scoped threads; work is claimed query-at-a-time from an
    /// atomic counter).
    ///
    /// §6 lists "a search architecture performing the diversification task
    /// in parallel" as future work; per-query parallelism is the natural
    /// first step — the pipeline is immutable after deployment, so workers
    /// share it by reference. Results come back in query order.
    pub fn diversify_batch(
        &self,
        queries: &[String],
        n_candidates: usize,
        k: usize,
        algo: AlgorithmKind,
        workers: usize,
    ) -> Vec<DiversifiedRanking> {
        let workers = workers.max(1).min(queries.len().max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        // One trait object shared by reference across all workers.
        let diversifier = algo.diversifier(&self.params);
        let mut per_worker: Vec<Vec<(usize, DiversifiedRanking)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let diversifier = &*diversifier;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            mine.push((
                                i,
                                self.diversify_with(
                                    &queries[i],
                                    n_candidates,
                                    k,
                                    algo,
                                    diversifier,
                                ),
                            ));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("diversification worker panicked"))
                .collect()
        });
        let mut indexed: Vec<(usize, DiversifiedRanking)> =
            per_worker.drain(..).flatten().collect();
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// Compute the snippet surrogate vector of one candidate document over
/// the compiled [`ForwardIndex`]: best-window selection on the
/// precompiled `TermId` stream and direct TF-IDF emission — no snippet
/// `String`, no re-tokenization, no re-stemming (a document unknown to
/// the forward index yields the zero vector). This is the request-path
/// definition of surrogate construction; both the batch helper below and
/// the serving layer's `(doc, query-terms)` cache go through it. The
/// text path is kept as [`candidate_surrogate_naive`], the equivalence
/// oracle (`tests/surrogate_equivalence.rs` proves the two bit-identical).
pub fn candidate_surrogate(
    forward: &ForwardIndex,
    doc: DocId,
    qterms: &[serpdiv_text::TermId],
    snippets: &SnippetGenerator,
) -> SparseVector {
    snippets.surrogate(forward, doc, qterms)
}

/// The text-path oracle for [`candidate_surrogate`]: fetch the doc,
/// extract the query-biased snippet string, TF-IDF-vectorize it (a
/// missing doc yields the zero vector). No serving code calls it; it
/// anchors the equivalence suite and serves engines deployed without a
/// forward index.
pub fn candidate_surrogate_naive(
    index: &InvertedIndex,
    doc: DocId,
    qterms: &[serpdiv_text::TermId],
    snippets: &SnippetGenerator,
) -> SparseVector {
    index
        .store()
        .get(doc)
        .map(|doc| {
            let snip = snippets.snippet(doc, qterms, index.vocab());
            SparseVector::from_text(&snip, index)
        })
        .unwrap_or_default()
}

/// Compute the snippet surrogate vector of every candidate in `baseline`
/// through the compiled forward index (the per-request `Rq` surrogates of
/// Definition 2). Returned as `Arc`s so serving layers can memoize them
/// per `(doc, query-terms)` and share one vector across requests without
/// copying.
pub fn candidate_surrogates(
    index: &InvertedIndex,
    forward: &ForwardIndex,
    query: &str,
    baseline: &[ScoredDoc],
    snippet_window: usize,
) -> Vec<Arc<SparseVector>> {
    let snippets = SnippetGenerator::with_window(snippet_window);
    let qterms = index.analyze_query(query);
    baseline
        .iter()
        .map(|h| Arc::new(candidate_surrogate(forward, h.doc, &qterms, &snippets)))
        .collect()
}

/// [`candidate_surrogates`] through the text-path oracle
/// ([`candidate_surrogate_naive`]) — for deployments without a compiled
/// forward index, and for the equivalence suite.
pub fn candidate_surrogates_naive(
    index: &InvertedIndex,
    query: &str,
    baseline: &[ScoredDoc],
    snippet_window: usize,
) -> Vec<Arc<SparseVector>> {
    let snippets = SnippetGenerator::with_window(snippet_window);
    let qterms = index.analyze_query(query);
    baseline
        .iter()
        .map(|h| Arc::new(candidate_surrogate_naive(index, h.doc, &qterms, &snippets)))
        .collect()
}

/// Assemble the [`DiversifyInput`] from already-computed candidate
/// surrogates: borrow the compiled inverted index (zero surrogate-list
/// cloning), score every candidate row with one sparse accumulation, and
/// max-normalize the baseline relevance. Rows go parallel past
/// [`PipelineParams::utility_parallel_threshold`].
pub fn assemble_input_from_surrogates(
    entry: &SpecializationEntry,
    compiled: &CompiledSpecStore,
    params: &PipelineParams,
    vectors: Vec<Arc<SparseVector>>,
    baseline: &[ScoredDoc],
) -> DiversifyInput {
    let scorer = compiled.scorer(entry.specializations.iter().map(|(s, _)| s.as_str()));
    assemble_input_with_scorer(entry, &scorer, params, vectors, baseline)
}

/// [`assemble_input_from_surrogates`] with the per-request scorer build
/// hoisted out: serving engines precompile one [`UtilityScorer`] per
/// model entry at deploy time (the entry's active-spec set is immutable),
/// so the request path skips the gather-and-sort entirely. Scoring is the
/// same code over the same scorer contents — bit-identical rows.
pub fn assemble_input_with_scorer(
    entry: &SpecializationEntry,
    scorer: &UtilityScorer,
    params: &PipelineParams,
    vectors: Vec<Arc<SparseVector>>,
    baseline: &[ScoredDoc],
) -> DiversifyInput {
    let spec_probs: Vec<f64> = entry.specializations.iter().map(|&(_, p)| p).collect();
    let utilities = if vectors.len() >= params.utility_parallel_threshold {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        scorer.matrix_parallel(&vectors, params.utility, threads)
    } else {
        scorer.matrix(&vectors, params.utility)
    };
    let scores: Vec<f64> = baseline.iter().map(|h| h.score).collect();
    let relevance = DiversifyInput::normalize_scores(&scores);
    DiversifyInput::new(spec_probs, relevance, utilities).with_vectors(vectors)
}

/// Assemble the [`DiversifyInput`] for one already-retrieved candidate
/// set: compiled snippet surrogates for the candidates (forward-index
/// `TermId` scan, no string work), then utility rows against the compiled
/// specialization index (Definition 2) and max-normalized relevance.
///
/// This is the utility-computation stage shared by the offline
/// [`DiversificationPipeline`] and the online serving engine
/// (`serpdiv-serve`), which memoizes the surrogate step and times both
/// halves separately.
pub fn assemble_input(
    index: &InvertedIndex,
    forward: &ForwardIndex,
    entry: &SpecializationEntry,
    compiled: &CompiledSpecStore,
    params: &PipelineParams,
    query: &str,
    baseline: &[ScoredDoc],
) -> DiversifyInput {
    let vectors = candidate_surrogates(index, forward, query, baseline, params.snippet_window);
    assemble_input_from_surrogates(entry, compiled, params, vectors, baseline)
}

/// The pre-compilation reference path: text-path snippet surrogates,
/// per-specialization surrogate lists cloned out of the raw store and the
/// utility matrix computed by naive pairwise cosines
/// ([`UtilityMatrix::compute`]). Kept as the equivalence oracle for the
/// compiled fast paths (`tests/utility_equivalence.rs`,
/// `tests/surrogate_equivalence.rs`); no serving code calls it.
pub fn assemble_input_naive(
    index: &InvertedIndex,
    entry: &SpecializationEntry,
    store: &SpecializationStore,
    params: &PipelineParams,
    query: &str,
    baseline: &[ScoredDoc],
) -> DiversifyInput {
    let vectors = candidate_surrogates_naive(index, query, baseline, params.snippet_window);
    let spec_probs: Vec<f64> = entry.specializations.iter().map(|&(_, p)| p).collect();
    let spec_lists: Vec<Vec<SparseVector>> = entry
        .specializations
        .iter()
        .map(|(spec, _)| {
            store
                .surrogates(spec)
                .iter()
                .map(|(v, _)| v.clone())
                .collect()
        })
        .collect();
    let utilities = UtilityMatrix::compute(&vectors, &spec_lists, params.utility);
    let scores: Vec<f64> = baseline.iter().map(|h| h.score).collect();
    let relevance = DiversifyInput::normalize_scores(&scores);
    DiversifyInput::new(spec_probs, relevance, utilities).with_vectors(vectors)
}

/// Dispatch an [`AlgorithmKind`] over a prepared input.
pub fn run_algorithm(
    algo: AlgorithmKind,
    input: &DiversifyInput,
    k: usize,
    params: PipelineParams,
) -> (Vec<usize>, &'static str) {
    let diversifier = algo.diversifier(&params);
    (diversifier.select(input, k), diversifier.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_index::{Document, IndexBuilder};
    use serpdiv_mining::SpecializationModel;

    /// A tiny two-interpretation "apple" world.
    fn setup() -> (serpdiv_index::InvertedIndex, SpecializationModel) {
        let mut b = IndexBuilder::new();
        // iphone interpretation
        for i in 0..5u32 {
            b.add(Document::new(
                i,
                format!("http://tech/{i}"),
                "apple iphone",
                "apple iphone smartphone review chip battery display camera",
            ));
        }
        // fruit interpretation
        for i in 5..10u32 {
            b.add(Document::new(
                i,
                format!("http://food/{i}"),
                "apple fruit",
                "apple fruit orchard sweet harvest vitamin juice recipe",
            ));
        }
        // noise
        for i in 10..15u32 {
            b.add(Document::new(
                i,
                format!("http://misc/{i}"),
                "",
                "weather forecast rain cloud wind storm",
            ));
        }
        let index = b.build();
        let model = SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap();
        (index, model)
    }

    #[test]
    fn store_builds_surrogates_for_every_specialization() {
        let (index, model) = setup();
        let engine = SearchEngine::new(&index);
        let store = SpecializationStore::build(&model, &engine, 5, 20);
        assert_eq!(store.len(), 2);
        assert!(!store.surrogates("apple iphone").is_empty());
        assert!(store.surrogates("unknown spec").is_empty());
        assert!(store.byte_size() > 0);
        assert!(store.avg_snippet_len() > 0.0);
    }

    #[test]
    fn ambiguous_query_is_diversified() {
        let (index, model) = setup();
        let engine = SearchEngine::new(&index);
        // A positive threshold c zeroes the weak cross-interpretation
        // similarities (both clusters share the literal "apple"), making
        // the coverage constraint bite — exactly the §5 mechanism.
        let params = PipelineParams {
            utility: crate::utility::UtilityParams { threshold_c: 0.4 },
            ..PipelineParams::default()
        };
        let pipeline = DiversificationPipeline::new(&engine, &model, params);
        let out = pipeline.diversify("apple", 10, 4, AlgorithmKind::OptSelect);
        assert!(out.diversified);
        assert_eq!(out.algorithm, "OptSelect");
        assert_eq!(out.docs.len(), 4);
        // Both interpretations must be present in the top-4.
        let tech = out.docs.iter().filter(|d| d.0 < 5).count();
        let food = out.docs.iter().filter(|d| (5..10).contains(&d.0)).count();
        assert!(tech >= 1 && food >= 1, "tech={tech} food={food}");
    }

    #[test]
    fn non_ambiguous_query_passes_through() {
        let (index, model) = setup();
        let engine = SearchEngine::new(&index);
        let pipeline = DiversificationPipeline::new(&engine, &model, PipelineParams::default());
        let out = pipeline.diversify("weather forecast", 10, 3, AlgorithmKind::OptSelect);
        assert!(!out.diversified);
        assert!(!out.docs.is_empty());
    }

    #[test]
    fn all_algorithms_produce_valid_rankings() {
        let (index, model) = setup();
        let engine = SearchEngine::new(&index);
        let pipeline = DiversificationPipeline::new(&engine, &model, PipelineParams::default());
        for algo in [
            AlgorithmKind::Baseline,
            AlgorithmKind::OptSelect,
            AlgorithmKind::IaSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::Mmr,
        ] {
            let out = pipeline.diversify("apple", 10, 5, algo);
            assert_eq!(out.docs.len(), 5, "{:?}", algo);
            let mut d: Vec<u32> = out.docs.iter().map(|d| d.0).collect();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 5, "{:?} produced duplicates", algo);
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let (index, model) = setup();
        let engine = SearchEngine::new(&index);
        let pipeline = DiversificationPipeline::new(&engine, &model, PipelineParams::default());
        let queries: Vec<String> = vec![
            "apple".into(),
            "weather forecast".into(),
            "apple".into(),
            "sailing".into(),
        ];
        let batch = pipeline.diversify_batch(&queries, 10, 4, AlgorithmKind::OptSelect, 3);
        assert_eq!(batch.len(), queries.len());
        for (q, out) in queries.iter().zip(&batch) {
            let seq = pipeline.diversify(q, 10, 4, AlgorithmKind::OptSelect);
            assert_eq!(out.docs, seq.docs, "query {q}");
            assert_eq!(out.diversified, seq.diversified);
        }
        // Degenerate worker counts.
        let one = pipeline.diversify_batch(&queries, 10, 4, AlgorithmKind::OptSelect, 1);
        assert_eq!(one.len(), 4);
        let none = pipeline.diversify_batch(&[], 10, 4, AlgorithmKind::OptSelect, 8);
        assert!(none.is_empty());
    }

    #[test]
    fn build_input_shapes() {
        let (index, model) = setup();
        let engine = SearchEngine::new(&index);
        let pipeline = DiversificationPipeline::new(&engine, &model, PipelineParams::default());
        let (baseline, input) = pipeline.build_input("apple", 10).unwrap();
        assert_eq!(baseline.len(), input.num_candidates());
        assert_eq!(input.num_specializations(), 2);
        assert!(pipeline.build_input("weather forecast", 10).is_none());
        // Candidates from the iphone cluster must have higher utility for
        // the iphone specialization than for the fruit one.
        let i_tech = baseline.iter().position(|h| h.doc.0 < 5).unwrap();
        assert!(input.utilities.get(i_tech, 0) > input.utilities.get(i_tech, 1));
    }
}
