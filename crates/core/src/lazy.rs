//! Stale-bound priority queue for **exact** lazy-greedy selection.
//!
//! xQuAD, IASelect and MMR are greedy maximizers of objectives whose
//! per-candidate score can only *decrease* as the solution grows (for
//! xQuAD/IASelect the per-specialization uncovered mass `Π(1−Ũ)` shrinks
//! monotonically and every summand is non-negative; for MMR `max_sim`
//! grows, entering the score with a negative sign). A score computed in an
//! earlier round is therefore an *upper bound* on the current one — in
//! IEEE f64, not just in exact arithmetic: every bound argument reduces to
//! the monotonicity of floating-point `+`, `×` and `/` by a positive
//! value, which rounding preserves.
//!
//! The classic lazy-greedy trick (Minoux 1978) exploits this: keep
//! candidates in a max-heap under their possibly-stale scores and, each
//! round, re-evaluate only popped entries until the top is *fresh* (its
//! score was computed this round). A fresh top dominates every other
//! entry's upper bound, hence every other fresh score — so the pick is
//! **identical** to the eager full rescan, element for element, while
//! typical rounds re-evaluate a handful of candidates instead of all `n`.
//! `tests/select_equivalence.rs` pins the lazy paths against the verbatim
//! eager oracles (`select_eager`) on tie-heavy and randomized inputs.
//!
//! Tie-breaking is the delicate part. The eager loops compare scores with
//! `>`/`==` (so `-0.0` and `+0.0` are *equal*) and break ties by a
//! secondary key and then by the smaller index. The heap must reproduce
//! this exactly, so [`LazyEntry::new`] normalizes `-0.0` to `+0.0`
//! (`+ 0.0` does exactly that and nothing else; NaN cannot occur — every
//! input is validated into `[0,1]` by `DiversifyInput::new`), after which
//! `f64::total_cmp` coincides with the eager `>`/`==` semantics, and the
//! [`Ord`] impl orders equal-keyed entries by ascending index. When a
//! stale entry with a winning index refreshes to an equal score it
//! re-enters the heap *above* any equal-scored larger index, exactly as
//! the eager left-to-right scan would have picked it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One heap entry: a candidate under its (possibly stale) score.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LazyEntry {
    /// Primary key (stale ⇒ upper bound of the fresh value).
    score: f64,
    /// Secondary tie key (IASelect: relevance; others: constant `0.0`).
    tie: f64,
    /// Candidate index — final tie key, ascending.
    pub(crate) idx: usize,
    /// Round the score was computed in; fresh ⇔ `round == selected.len()`.
    pub(crate) round: usize,
}

impl LazyEntry {
    /// Build an entry, normalizing `-0.0` keys to `+0.0` so `total_cmp`
    /// ordering matches the eager oracles' `>`/`==` comparisons.
    pub(crate) fn new(score: f64, tie: f64, idx: usize, round: usize) -> Self {
        LazyEntry {
            score: score + 0.0,
            tie: tie + 0.0,
            idx,
            round,
        }
    }
}

impl PartialEq for LazyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for LazyEntry {}

impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LazyEntry {
    /// Max-heap priority: higher score, then higher tie key, then *lower*
    /// index.
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.tie.total_cmp(&other.tie))
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Drive one exact lazy-greedy selection of up to `k` items over `n`
/// candidates.
///
/// `fresh(i, selected)` must return the candidate's exact `(score, tie)`
/// for the current solution prefix (called for round-0 initialization and
/// for every refresh); `on_select(i)` applies the solution-state update
/// after index `i` is committed. Scores from earlier rounds must
/// upper-bound current ones — the caller's invariant, documented per
/// algorithm.
pub(crate) fn lazy_greedy(
    n: usize,
    k: usize,
    mut fresh: impl FnMut(usize, &[usize]) -> (f64, f64),
    mut on_select: impl FnMut(usize),
) -> Vec<usize> {
    let k = k.min(n);
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut heap: BinaryHeap<LazyEntry> = (0..n)
        .map(|i| {
            let (score, tie) = fresh(i, &selected);
            LazyEntry::new(score, tie, i, 0)
        })
        .collect();
    while selected.len() < k {
        let Some(top) = heap.pop() else { break };
        let round = selected.len();
        if top.round == round {
            selected.push(top.idx);
            on_select(top.idx);
        } else {
            let (score, tie) = fresh(top.idx, &selected);
            heap.push(LazyEntry::new(score, tie, top.idx, round));
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_score_then_tie_then_low_index() {
        let mut heap = BinaryHeap::new();
        heap.push(LazyEntry::new(1.0, 0.0, 7, 0));
        heap.push(LazyEntry::new(1.0, 0.0, 2, 0));
        heap.push(LazyEntry::new(1.0, 0.5, 9, 0));
        heap.push(LazyEntry::new(2.0, 0.0, 8, 0));
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|e| e.idx)).collect();
        assert_eq!(order, vec![8, 9, 2, 7]);
    }

    #[test]
    fn negative_zero_ties_break_by_index_like_the_eager_scan() {
        let mut heap = BinaryHeap::new();
        heap.push(LazyEntry::new(0.0, 0.0, 3, 0));
        heap.push(LazyEntry::new(-0.0, 0.0, 1, 0));
        // Eager `==` treats -0.0 and +0.0 as a tie ⇒ index 1 wins.
        assert_eq!(heap.pop().unwrap().idx, 1);
    }

    #[test]
    fn lazy_greedy_with_constant_scores_is_index_order() {
        let picked = lazy_greedy(5, 3, |_, _| (1.0, 0.0), |_| {});
        assert_eq!(picked, vec![0, 1, 2]);
    }

    #[test]
    fn lazy_greedy_refreshes_stale_entries() {
        // Scores halve every round: candidate i starts at i+1. Exact
        // greedy picks 4, 3, 2 — the lazy loop must reach the same picks
        // through refreshes.
        let picked = lazy_greedy(
            5,
            3,
            |i, sel: &[usize]| (((i + 1) as f64) / (1u64 << sel.len()) as f64, 0.0),
            |_| {},
        );
        assert_eq!(picked, vec![4, 3, 2]);
    }

    #[test]
    fn lazy_greedy_handles_empty_and_oversized_k() {
        assert!(lazy_greedy(0, 3, |_, _| (0.0, 0.0), |_| {}).is_empty());
        assert_eq!(lazy_greedy(2, 99, |_, _| (1.0, 0.0), |_| {}).len(), 2);
    }
}
