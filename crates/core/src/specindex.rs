//! Compiled specialization store — the inverted utility index.
//!
//! The naive utility stage (Definition 2, Eq. 1) evaluates, per request,
//! one cosine for every (candidate, specialization-result) pair:
//! `O(n · m · |R_q′|)` sorted merges over sparse surrogates. This module
//! compiles the §4.1 specialization store *once, offline* so the whole
//! per-candidate row falls out of a single sparse accumulation:
//!
//! ```text
//! Ũ(d|R_q′) = (1/H_{|R′|}) Σ_r cos(d, d′_r)/r
//!           = (1/‖d‖) Σ_{t ∈ d} d_t · w_q′(t)
//! where  w_q′(t) = Σ_r d′_{r,t} / (‖d′_r‖ · r · H_{|R′|})
//! ```
//!
//! i.e. unit-normalize every surrogate, fold the `1/rank` discount and the
//! harmonic normalizer directly into the term weights, and sum the ranked
//! list into one *folded vector* per specialization. Stacking the folded
//! vectors term-major yields a classic inverted index
//! `TermId → [(spec, weight)]` — the same term-at-a-time accumulator
//! discipline the DPH retrieval stage already uses — so scoring one
//! candidate against every specialization costs
//! `O(Σ_{t ∈ d} |postings(t)|)` instead of `n·m` merge-joins.
//!
//! Request-time scoring goes through a [`UtilityScorer`]: a borrowed view
//! that gathers the postings of the query's *active* specializations
//! (usually a handful out of the whole store) into one small sorted
//! accumulator index. Building it is `O(Σ nnz(folded))` and is amortized
//! over the `n ≈ 100` candidates of the request; no surrogate list is
//! cloned anywhere on the hot path.
//!
//! All folded weights are `f64`, so the compiled path reproduces the naive
//! double-precision oracle ([`UtilityMatrix::compute`]) up to mere
//! re-association of the same sum (≈1e-12), which the equivalence suite
//! (`tests/utility_equivalence.rs`) asserts at 1e-9.

use crate::framework::SpecializationStore;
use crate::utility::{harmonic, UtilityMatrix, UtilityParams};
use serpdiv_index::SparseVector;
use serpdiv_text::TermId;
use std::borrow::Borrow;
use std::collections::HashMap;

/// Magic number of the serialized compiled-store image
/// (see [`CompiledSpecStore::to_bytes`]).
const SPEC_MAGIC: u32 = 0x5E9D_1F0C;
/// Version of the serialized image; bumped on any layout change.
const SPEC_VERSION: u32 = 1;

/// The offline-compiled, immutable specialization index.
///
/// Holds, for every specialization in the deployed store:
/// * its *folded vector* — the ranked surrogate list collapsed into one
///   sparse `(TermId, f64)` row with rank discount, surrogate norms and
///   the `1/H_{|R′|}` normalizer pre-applied;
/// * a global term-major inverted map `TermId → [(spec, weight)]` over all
///   folded vectors, for scoring a candidate against the whole store.
#[derive(Debug, Default)]
pub struct CompiledSpecStore {
    /// specialization text → dense id (assignment order: sorted by name,
    /// so ids are reproducible across processes).
    ids: HashMap<String, u32>,
    names: Vec<String>,
    /// `|R_q′|` per specialization (diagnostics; empty lists stay 0-utility).
    list_lens: Vec<usize>,
    /// Folded vector per specialization, entries sorted by term id.
    folded: Vec<Vec<(TermId, f64)>>,
    /// Global inverted map: sorted distinct terms …
    terms: Vec<TermId>,
    /// … with `term_ranges[k]` delimiting `postings[start..end]` for
    /// `terms[k]`; postings are `(spec_id, weight)` sorted by spec id.
    term_ranges: Vec<(u32, u32)>,
    postings: Vec<(u32, f64)>,
    /// `max(0, max weight in postings(terms[k]))` — the per-posting-list
    /// score upper bounds behind the MaxScore-style whole-row prune (see
    /// [`UtilityScorer::score_into`]).
    term_ub: Vec<f64>,
    /// Dense `TermId → index into terms` map (`u32::MAX` = absent), built
    /// when the term-id space is small enough; `None` falls back to
    /// binary search.
    term_index: Option<Vec<u32>>,
}

/// Largest term id for which the dense O(1) term lookup table is built;
/// beyond it (possible only for adversarial serialized stores — real
/// vocabularies are contiguous) lookups fall back to binary search rather
/// than allocating gigabytes.
const DIRECT_INDEX_MAX_TERM: u32 = 1 << 21;

/// Derive the pruning upper bounds and the dense term-lookup table from a
/// term-major postings layout. Shared by the global store and the
/// per-request scorer so the two can never disagree.
fn index_terms(
    terms: &[TermId],
    term_ranges: &[(u32, u32)],
    postings: &[(u32, f64)],
) -> (Vec<f64>, Option<Vec<u32>>) {
    let term_ub: Vec<f64> = term_ranges
        .iter()
        .map(|&(start, end)| {
            postings[start as usize..end as usize]
                .iter()
                // Clamping at 0 keeps the bound a *dominating* bound even
                // for columns a term does not touch (their contribution is
                // exactly 0 ≤ w·ub).
                .fold(0.0f64, |ub, &(_, w)| ub.max(w))
        })
        .collect();
    let term_index = match terms.last() {
        Some(&max_term) if max_term.0 <= DIRECT_INDEX_MAX_TERM => {
            let mut index = vec![u32::MAX; max_term.0 as usize + 1];
            for (k, t) in terms.iter().enumerate() {
                index[t.0 as usize] = k as u32;
            }
            Some(index)
        }
        _ => None,
    };
    (term_ub, term_index)
}

impl CompiledSpecStore {
    /// Compile the raw §4.1 [`SpecializationStore`] (this is the one-off
    /// deployment step; nothing here runs per request).
    pub fn compile(store: &SpecializationStore) -> Self {
        Self::build(
            store
                .iter()
                .map(|(name, list)| (name, list.iter().map(|(v, _)| v))),
        )
    }

    /// Build from `(name, ranked surrogates)` pairs (rank 1 first).
    /// Duplicate names keep the first list.
    pub fn build<'a, S, L>(specs: S) -> Self
    where
        S: IntoIterator<Item = (&'a str, L)>,
        L: IntoIterator<Item = &'a SparseVector>,
    {
        // Collect and sort by name so spec ids are deterministic no matter
        // the iteration order of the backing map.
        let mut collected: Vec<(&str, Vec<&SparseVector>)> = specs
            .into_iter()
            .map(|(name, list)| (name, list.into_iter().collect()))
            .collect();
        collected.sort_by(|a, b| a.0.cmp(b.0));
        collected.dedup_by(|a, b| a.0 == b.0);

        let mut ids = HashMap::with_capacity(collected.len());
        let mut names = Vec::with_capacity(collected.len());
        let mut list_lens = Vec::with_capacity(collected.len());
        let mut folded = Vec::with_capacity(collected.len());
        for (name, ranked) in collected {
            let id = names.len() as u32;
            ids.insert(name.to_string(), id);
            names.push(name.to_string());
            list_lens.push(ranked.len());
            folded.push(fold_ranked_list(&ranked));
        }

        // Transpose spec-major folded vectors into the term-major map.
        let triples: Vec<(TermId, u32, f64)> = folded
            .iter()
            .enumerate()
            .flat_map(|(s, entries)| entries.iter().map(move |&(t, w)| (t, s as u32, w)))
            .collect();
        let (terms, term_ranges, postings) = invert(triples);
        let (term_ub, term_index) = index_terms(&terms, &term_ranges, &postings);

        CompiledSpecStore {
            ids,
            names,
            list_lens,
            folded,
            terms,
            term_ranges,
            postings,
            term_ub,
            term_index,
        }
    }

    /// Number of compiled specializations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing was compiled.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Dense id of a specialization (`None` when unknown).
    pub fn spec_id(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Name of specialization `id`.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// `|R_q′|` the specialization was folded from.
    pub fn list_len(&self, id: u32) -> usize {
        self.list_lens[id as usize]
    }

    /// Distinct terms in the global inverted map.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total postings across all terms.
    pub fn num_postings(&self) -> usize {
        self.postings.len()
    }

    /// Approximate compiled footprint in bytes (folded vectors + inverted
    /// map + name table) — compare against the raw store's
    /// [`SpecializationStore::byte_size`].
    pub fn byte_size(&self) -> usize {
        let folded: usize = self
            .folded
            .iter()
            .map(|f| f.len() * std::mem::size_of::<(TermId, f64)>())
            .sum();
        let names: usize = self.names.iter().map(|n| n.len() + 16).sum();
        folded
            + names
            + self.terms.len() * std::mem::size_of::<TermId>()
            + self.term_ranges.len() * std::mem::size_of::<(u32, u32)>()
            + self.postings.len() * std::mem::size_of::<(u32, f64)>()
            + self.term_ub.len() * std::mem::size_of::<f64>()
            + self
                .term_index
                .as_ref()
                .map_or(0, |ix| ix.len() * std::mem::size_of::<u32>())
    }

    /// Build the request-time scoring view over the given specializations,
    /// in column order. Unknown names yield all-zero columns (exactly the
    /// naive path's behavior for specs missing from the store).
    pub fn scorer<'a>(&self, specs: impl IntoIterator<Item = &'a str>) -> UtilityScorer {
        let cols: Vec<Option<u32>> = specs.into_iter().map(|s| self.spec_id(s)).collect();
        let mut triples: Vec<(TermId, u32, f64)> = Vec::new();
        for (col, id) in cols.iter().enumerate() {
            if let Some(id) = id {
                for &(t, w) in &self.folded[*id as usize] {
                    triples.push((t, col as u32, w));
                }
            }
        }
        let (terms, term_ranges, postings) = invert(triples);
        let (term_ub, term_index) = index_terms(&terms, &term_ranges, &postings);
        UtilityScorer {
            m: cols.len(),
            terms,
            term_ranges,
            postings,
            term_ub,
            term_index,
        }
    }

    /// Serialize the compiled store to a standalone binary image.
    ///
    /// The image persists the canonical state only — sorted names, list
    /// lengths, and the folded vectors with their exact `f64` weight bits
    /// — and [`from_bytes`](Self::from_bytes) rebuilds the derived
    /// structures (name→id map, global inverted map), so a round-tripped
    /// store scores bit-identically to the original and the two
    /// representations can never disagree.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SPEC_MAGIC.to_le_bytes());
        out.extend_from_slice(&SPEC_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for (i, name) in self.names.iter().enumerate() {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(self.list_lens[i] as u32).to_le_bytes());
            let folded = &self.folded[i];
            out.extend_from_slice(&(folded.len() as u32).to_le_bytes());
            for &(t, w) in folded {
                out.extend_from_slice(&t.0.to_le_bytes());
                out.extend_from_slice(&w.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Decode a store serialized by [`to_bytes`](Self::to_bytes),
    /// validating structure before trusting any of it: magic, version,
    /// every length against the bytes present, UTF-8 names in strictly
    /// sorted order, strictly increasing term ids per folded vector,
    /// finite weights, and no trailing bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, serpdiv_index::DecodeError> {
        use serpdiv_index::DecodeError;

        struct Cursor<'a> {
            data: &'a [u8],
            pos: usize,
        }
        impl Cursor<'_> {
            fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
                let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
                if end > self.data.len() {
                    return Err(DecodeError::Truncated);
                }
                let slice = &self.data[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            fn u32(&mut self) -> Result<u32, DecodeError> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64, DecodeError> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
        }

        let mut cur = Cursor { data, pos: 0 };
        if cur.u32()? != SPEC_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = cur.u32()?;
        if version != SPEC_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let num_specs = cur.u32()? as usize;
        let mut ids = HashMap::with_capacity(num_specs);
        let mut names: Vec<String> = Vec::with_capacity(num_specs);
        let mut list_lens = Vec::with_capacity(num_specs);
        let mut folded = Vec::with_capacity(num_specs);
        for id in 0..num_specs {
            let name_len = cur.u32()? as usize;
            let name = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| DecodeError::BadUtf8)?
                .to_string();
            if let Some(prev) = names.last() {
                if *prev >= name {
                    return Err(DecodeError::Corrupt(
                        "specialization names not strictly sorted",
                    ));
                }
            }
            list_lens.push(cur.u32()? as usize);
            let folded_len = cur.u32()? as usize;
            let mut entries: Vec<(TermId, f64)> = Vec::with_capacity(folded_len.min(1 << 16));
            let mut prev_term: Option<u32> = None;
            for _ in 0..folded_len {
                let t = cur.u32()?;
                let w = f64::from_bits(cur.u64()?);
                if prev_term.is_some_and(|p| p >= t) {
                    return Err(DecodeError::Corrupt("folded terms not strictly increasing"));
                }
                prev_term = Some(t);
                if !w.is_finite() {
                    return Err(DecodeError::Corrupt("non-finite folded weight"));
                }
                entries.push((TermId(t), w));
            }
            ids.insert(name.clone(), id as u32);
            names.push(name);
            folded.push(entries);
        }
        if cur.pos != data.len() {
            return Err(DecodeError::Corrupt("trailing bytes after store"));
        }

        // Rebuild the global inverted map from the folded vectors — same
        // code path as compile-time, so the structures cannot diverge.
        let triples: Vec<(TermId, u32, f64)> = folded
            .iter()
            .enumerate()
            .flat_map(|(s, entries)| entries.iter().map(move |&(t, w)| (t, s as u32, w)))
            .collect();
        let (terms, term_ranges, postings) = invert(triples);
        let (term_ub, term_index) = index_terms(&terms, &term_ranges, &postings);
        Ok(CompiledSpecStore {
            ids,
            names,
            list_lens,
            folded,
            terms,
            term_ranges,
            postings,
            term_ub,
            term_index,
        })
    }

    /// Score one candidate against **every** specialization in the store
    /// via the global inverted map — one sparse accumulation, complexity
    /// `O(Σ_{t ∈ cand} |postings(t)|)`. Returns the normalized, thresholded
    /// utility per spec id.
    ///
    /// Carries the same two exact fast paths as
    /// [`UtilityScorer::score_into`]: dense term lookups and, when
    /// `threshold_c > 0`, the dominating-bound whole-row prune. Bit-for-bit
    /// identical to [`score_all_unpruned`](Self::score_all_unpruned).
    pub fn score_all(&self, candidate: &SparseVector, params: UtilityParams) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.len()];
        let norm = f64::from(candidate.norm());
        if norm > 0.0 {
            if params.threshold_c > 0.0
                && row_prunable(
                    &self.terms,
                    &self.term_index,
                    &self.term_ub,
                    candidate,
                    norm,
                    params,
                )
            {
                return acc; // norm > 0 ⇒ finalize(0.0) == 0.0 already
            }
            for &(t, w) in candidate.entries() {
                if let Some(k) = term_slot(&self.terms, &self.term_index, t) {
                    let (start, end) = self.term_ranges[k];
                    for &(s, fw) in &self.postings[start as usize..end as usize] {
                        acc[s as usize] += f64::from(w) * fw;
                    }
                }
            }
        }
        for u in &mut acc {
            *u = finalize(*u, norm, params);
        }
        acc
    }

    /// The pre-optimization [`score_all`](Self::score_all), kept verbatim
    /// as its equivalence oracle.
    pub fn score_all_unpruned(&self, candidate: &SparseVector, params: UtilityParams) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.len()];
        let norm = f64::from(candidate.norm());
        if norm > 0.0 {
            for &(t, w) in candidate.entries() {
                if let Ok(k) = self.terms.binary_search(&t) {
                    let (start, end) = self.term_ranges[k];
                    for &(s, fw) in &self.postings[start as usize..end as usize] {
                        acc[s as usize] += f64::from(w) * fw;
                    }
                }
            }
        }
        for u in &mut acc {
            *u = finalize(*u, norm, params);
        }
        acc
    }
}

/// Group `(term, column, weight)` triples into the term-major postings
/// layout shared by the global map and the per-request scorer: sorted
/// distinct `terms`, parallel `term_ranges` delimiting each term's slice
/// of `postings`, postings sorted by column within a term.
#[allow(clippy::type_complexity)]
fn invert(mut triples: Vec<(TermId, u32, f64)>) -> (Vec<TermId>, Vec<(u32, u32)>, Vec<(u32, f64)>) {
    triples.sort_unstable_by_key(|a| (a.0, a.1));
    let mut terms = Vec::new();
    let mut term_ranges: Vec<(u32, u32)> = Vec::new();
    let mut postings = Vec::with_capacity(triples.len());
    for (t, c, w) in triples {
        if terms.last() != Some(&t) {
            terms.push(t);
            term_ranges.push((postings.len() as u32, postings.len() as u32));
        }
        postings.push((c, w));
        term_ranges.last_mut().unwrap().1 = postings.len() as u32;
    }
    (terms, term_ranges, postings)
}

/// Fold one ranked surrogate list into a single sparse row:
/// `w(t) = Σ_r d′_{r,t} / (‖d′_r‖ · r · H_{|R′|})`, entries sorted by term.
/// Per term, rank contributions are accumulated in ascending-rank order so
/// the folding is deterministic.
fn fold_ranked_list(ranked: &[&SparseVector]) -> Vec<(TermId, f64)> {
    let h = harmonic(ranked.len());
    if h == 0.0 {
        return Vec::new();
    }
    let mut acc: HashMap<TermId, f64> = HashMap::new();
    for (r, v) in ranked.iter().enumerate() {
        let norm = f64::from(v.norm());
        if norm == 0.0 {
            continue; // zero surrogates have cosine 0 with everything
        }
        let scale = 1.0 / (norm * (r + 1) as f64 * h);
        for &(t, w) in v.entries() {
            *acc.entry(t).or_insert(0.0) += f64::from(w) * scale;
        }
    }
    let mut entries: Vec<(TermId, f64)> = acc.into_iter().collect();
    entries.sort_unstable_by_key(|&(t, _)| t);
    entries
}

#[inline]
fn finalize(acc: f64, norm: f64, params: UtilityParams) -> f64 {
    if norm == 0.0 {
        return 0.0;
    }
    // The naive oracle clamps each cosine into [0,1]; folded accumulation
    // can only drift past 1 by float noise, so clamping the final value
    // preserves the [0,1] contract of UtilityMatrix.
    let u = (acc / norm).clamp(0.0, 1.0);
    if u < params.threshold_c {
        0.0
    } else {
        u
    }
}

/// Request-time scoring view: the active specializations' folded postings
/// gathered into one small sorted accumulator index (columns = the order
/// the specs were passed to [`CompiledSpecStore::scorer`]).
#[derive(Debug)]
pub struct UtilityScorer {
    m: usize,
    terms: Vec<TermId>,
    term_ranges: Vec<(u32, u32)>,
    postings: Vec<(u32, f64)>,
    /// Per-term dominating weight bounds (see [`index_terms`]).
    term_ub: Vec<f64>,
    /// Dense term lookup (see [`index_terms`]); `None` ⇒ binary search.
    term_index: Option<Vec<u32>>,
}

/// O(1)/O(log T) lookup of a term's slot in a term-major layout.
#[inline]
fn term_slot(terms: &[TermId], term_index: &Option<Vec<u32>>, t: TermId) -> Option<usize> {
    match term_index {
        Some(index) => match index.get(t.0 as usize) {
            Some(&slot) if slot != u32::MAX => Some(slot as usize),
            _ => None,
        },
        None => terms.binary_search(&t).ok(),
    }
}

/// The MaxScore-style whole-row prune test: `true` when *every* cell of
/// this candidate's utility row provably finalizes to exactly `0.0`, so
/// the postings walk can be skipped without changing a single bit.
///
/// Exactness: `acc[c]` is an IEEE fl-sum, in candidate-entry order, of
/// contributions `w_t · fw ≤ w_t · ub_t` (needs `w_t ≥ 0`; columns a term
/// skips contribute `0 ≤ w_t · ub_t` since `ub_t ≥ 0`). f64 addition and
/// division by a positive norm are monotone, so
/// `clamp(acc[c]/norm) ≤ clamp(bound/norm) < threshold_c` ⇒ the
/// unpruned `finalize` returns the literal `0.0` for every cell — the
/// very value the pre-zeroed row already holds.
#[inline]
fn row_prunable(
    terms: &[TermId],
    term_index: &Option<Vec<u32>>,
    term_ub: &[f64],
    candidate: &SparseVector,
    norm: f64,
    params: UtilityParams,
) -> bool {
    let mut bound = 0.0f64;
    for &(t, w) in candidate.entries() {
        if w < 0.0 {
            return false; // the domination argument needs w ≥ 0
        }
        if let Some(k) = term_slot(terms, term_index, t) {
            bound += f64::from(w) * term_ub[k];
        }
    }
    (bound / norm).clamp(0.0, 1.0) < params.threshold_c
}

impl UtilityScorer {
    /// Number of columns (active specializations).
    pub fn num_specializations(&self) -> usize {
        self.m
    }

    /// Score one candidate into `out` (`out.len() == m`): zero, accumulate
    /// term-at-a-time, normalize by the candidate norm, clamp, threshold.
    ///
    /// Two exact fast paths over the naive
    /// [`score_into_unpruned`](Self::score_into_unpruned) oracle:
    /// term lookups go through the dense table instead of a binary search,
    /// and when `threshold_c > 0` a candidate whose dominating score bound
    /// ([`index_terms`]) already falls below the threshold skips the
    /// postings walk entirely ([`row_prunable`]). Both produce bit-for-bit
    /// the oracle's row (`tests/utility_equivalence.rs` pins this).
    pub fn score_into(&self, candidate: &SparseVector, out: &mut [f64], params: UtilityParams) {
        debug_assert_eq!(out.len(), self.m);
        out.fill(0.0);
        let norm = f64::from(candidate.norm());
        if norm == 0.0 || self.m == 0 {
            return;
        }
        if params.threshold_c > 0.0
            && row_prunable(
                &self.terms,
                &self.term_index,
                &self.term_ub,
                candidate,
                norm,
                params,
            )
        {
            return;
        }
        for &(t, w) in candidate.entries() {
            if let Some(k) = term_slot(&self.terms, &self.term_index, t) {
                let (start, end) = self.term_ranges[k];
                for &(c, fw) in &self.postings[start as usize..end as usize] {
                    out[c as usize] += f64::from(w) * fw;
                }
            }
        }
        for u in out {
            *u = finalize(*u, norm, params);
        }
    }

    /// The pre-optimization scoring path, kept verbatim as the equivalence
    /// oracle for [`score_into`](Self::score_into): binary-search term
    /// lookups, no pruning.
    pub fn score_into_unpruned(
        &self,
        candidate: &SparseVector,
        out: &mut [f64],
        params: UtilityParams,
    ) {
        debug_assert_eq!(out.len(), self.m);
        out.fill(0.0);
        let norm = f64::from(candidate.norm());
        if norm == 0.0 || self.m == 0 {
            return;
        }
        for &(t, w) in candidate.entries() {
            if let Ok(k) = self.terms.binary_search(&t) {
                let (start, end) = self.term_ranges[k];
                for &(c, fw) in &self.postings[start as usize..end as usize] {
                    out[c as usize] += f64::from(w) * fw;
                }
            }
        }
        for u in out {
            *u = finalize(*u, norm, params);
        }
    }

    /// The full `n × m` [`UtilityMatrix`] over `candidates`, one sparse
    /// accumulation per row. `candidates` may hold owned, borrowed or
    /// `Arc`'d vectors.
    pub fn matrix<V: Borrow<SparseVector>>(
        &self,
        candidates: &[V],
        params: UtilityParams,
    ) -> UtilityMatrix {
        let n = candidates.len();
        let mut values = vec![0.0f64; n * self.m];
        for (cand, row) in candidates
            .iter()
            .zip(values.chunks_exact_mut(self.m.max(1)))
        {
            self.score_into(cand.borrow(), row, params);
        }
        UtilityMatrix::from_values(n, self.m, values)
    }

    /// [`matrix`](Self::matrix) with rows computed in parallel over
    /// `threads` scoped threads (row-disjoint chunks, so the result is
    /// identical to the sequential one). Falls back to sequential when the
    /// candidate set is small or `threads ≤ 1`.
    pub fn matrix_parallel<V: Borrow<SparseVector> + Sync>(
        &self,
        candidates: &[V],
        params: UtilityParams,
        threads: usize,
    ) -> UtilityMatrix {
        let n = candidates.len();
        let threads = threads.min(n.max(1));
        if threads <= 1 || n < 2 || self.m == 0 {
            return self.matrix(candidates, params);
        }
        let mut values = vec![0.0f64; n * self.m];
        let rows_per = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in values.chunks_mut(rows_per * self.m).enumerate() {
                let cands = &candidates[chunk_idx * rows_per..];
                scope.spawn(move || {
                    for (cand, row) in cands.iter().zip(chunk.chunks_exact_mut(self.m)) {
                        self.score_into(cand.borrow(), row, params);
                    }
                });
            }
        });
        UtilityMatrix::from_values(n, self.m, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::normalized_utility;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn store() -> (Vec<(String, Vec<SparseVector>)>, CompiledSpecStore) {
        let lists = vec![
            (
                "iphone".to_string(),
                vec![v(&[(1, 2.0), (2, 1.0)]), v(&[(1, 1.0), (3, 4.0)])],
            ),
            (
                "fruit".to_string(),
                vec![v(&[(4, 1.0)]), v(&[(4, 2.0), (5, 1.0)]), v(&[(5, 3.0)])],
            ),
            ("empty".to_string(), Vec::new()),
        ];
        let compiled = CompiledSpecStore::build(
            lists
                .iter()
                .map(|(name, list)| (name.as_str(), list.iter())),
        );
        (lists, compiled)
    }

    #[test]
    fn compiles_ids_and_shapes() {
        let (_, c) = store();
        assert_eq!(c.len(), 3);
        // Ids are assigned in sorted-name order.
        assert_eq!(c.spec_id("empty"), Some(0));
        assert_eq!(c.spec_id("fruit"), Some(1));
        assert_eq!(c.spec_id("iphone"), Some(2));
        assert_eq!(c.spec_id("unknown"), None);
        assert_eq!(c.name(1), "fruit");
        assert_eq!(c.list_len(1), 3);
        assert_eq!(c.list_len(0), 0);
        assert!(c.num_terms() >= 5);
        assert!(c.num_postings() >= c.num_terms());
        assert!(c.byte_size() > 0);
    }

    #[test]
    fn scorer_matches_naive_oracle() {
        let (lists, c) = store();
        let params = UtilityParams::default();
        let cands = [
            v(&[(1, 1.0), (4, 2.0)]),
            v(&[(2, 3.0), (3, 1.0), (5, 0.5)]),
            v(&[(9, 1.0)]),          // matches nothing
            SparseVector::default(), // zero candidate
        ];
        let scorer = c.scorer(["iphone", "fruit", "empty", "unknown"]);
        assert_eq!(scorer.num_specializations(), 4);
        let fast = scorer.matrix(&cands, params);
        for (i, cand) in cands.iter().enumerate() {
            for (j, name) in ["iphone", "fruit", "empty", "unknown"].iter().enumerate() {
                let list = lists
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, l)| l.as_slice())
                    .unwrap_or(&[]);
                let naive = normalized_utility(cand, list, params);
                assert!(
                    (fast.get(i, j) - naive).abs() < 1e-12,
                    "cell ({i},{j}): fast {} vs naive {naive}",
                    fast.get(i, j)
                );
            }
        }
    }

    #[test]
    fn score_all_agrees_with_per_request_scorer() {
        let (_, c) = store();
        let params = UtilityParams { threshold_c: 0.1 };
        let cand = v(&[(1, 1.0), (4, 1.0), (5, 2.0)]);
        let all = c.score_all(&cand, params);
        let scorer = c.scorer(["empty", "fruit", "iphone"]);
        let mut row = vec![0.0; 3];
        scorer.score_into(&cand, &mut row, params);
        assert_eq!(all, row, "spec-id order == sorted-name order here");
    }

    #[test]
    fn threshold_is_applied() {
        let (_, c) = store();
        let cand = v(&[(1, 1.0), (4, 1.0)]);
        let loose = c.score_all(&cand, UtilityParams { threshold_c: 0.0 });
        let strict = c.score_all(&cand, UtilityParams { threshold_c: 0.99 });
        assert!(loose.iter().any(|&u| u > 0.0));
        assert!(strict.iter().all(|&u| u == 0.0 || u >= 0.99));
    }

    #[test]
    fn parallel_matrix_is_identical_to_sequential() {
        let (_, c) = store();
        let params = UtilityParams::default();
        let cands: Vec<SparseVector> = (0..97)
            .map(|i| {
                v(&[
                    (1 + (i % 5) as u32, 1.0 + i as f32 * 0.01),
                    (4, 0.5),
                    (7 + (i % 3) as u32, 2.0),
                ])
            })
            .collect();
        let scorer = c.scorer(["iphone", "fruit"]);
        let seq = scorer.matrix(&cands, params);
        for threads in [2, 3, 8, 200] {
            let par = scorer.matrix_parallel(&cands, params, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_spec_names_keep_first_list() {
        let a = [v(&[(1, 1.0)])];
        let b = [v(&[(2, 1.0)])];
        let c = CompiledSpecStore::build(vec![("x", a.iter()), ("x", b.iter())]);
        assert_eq!(c.len(), 1);
        let u = c.score_all(&v(&[(1, 1.0)]), UtilityParams::default());
        assert!(u[0] > 0.9, "first list (term 1) won: {u:?}");
    }

    #[test]
    fn binary_round_trip_scores_bit_identically() {
        let (_, c) = store();
        let bytes = c.to_bytes();
        let back = CompiledSpecStore::from_bytes(&bytes).expect("valid image");
        assert_eq!(back.len(), c.len());
        for id in 0..c.len() as u32 {
            assert_eq!(back.name(id), c.name(id));
            assert_eq!(back.list_len(id), c.list_len(id));
            assert_eq!(back.spec_id(c.name(id)), Some(id));
        }
        assert_eq!(back.num_terms(), c.num_terms());
        assert_eq!(back.num_postings(), c.num_postings());
        let params = UtilityParams { threshold_c: 0.0 };
        for cand in [
            v(&[(1, 1.0), (4, 2.0)]),
            v(&[(2, 3.0), (3, 1.0), (5, 0.5)]),
            v(&[(9, 1.0)]),
        ] {
            let a = c.score_all(&cand, params);
            let b = back.score_all(&cand, params);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "utilities must be exact");
            }
        }
        // An empty store round-trips too.
        let empty = CompiledSpecStore::build(Vec::<(&str, std::iter::Empty<&SparseVector>)>::new());
        let back = CompiledSpecStore::from_bytes(&empty.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_or_truncated_images_are_rejected() {
        use serpdiv_index::DecodeError;
        let (_, c) = store();
        let bytes = c.to_bytes();

        // Every truncation fails (never panics, never half-loads).
        for cut in 0..bytes.len() {
            assert!(
                CompiledSpecStore::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            CompiledSpecStore::from_bytes(&bad),
            Err(DecodeError::BadMagic)
        ));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            CompiledSpecStore::from_bytes(&bad),
            Err(DecodeError::BadVersion(99))
        ));

        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            CompiledSpecStore::from_bytes(&bad),
            Err(DecodeError::Corrupt(_))
        ));

        // Unsorted names: hand-build an image with "b" before "a".
        let a = [v(&[(1, 1.0)])];
        let unsorted = {
            let c1 = CompiledSpecStore::build(vec![("b", a.iter())]);
            let c2 = CompiledSpecStore::build(vec![("a", a.iter())]);
            let mut img = c1.to_bytes();
            // Splice c2's single spec record after c1's, bump the count.
            img[8..12].copy_from_slice(&2u32.to_le_bytes());
            img.extend_from_slice(&c2.to_bytes()[12..]);
            img
        };
        assert!(matches!(
            CompiledSpecStore::from_bytes(&unsorted),
            Err(DecodeError::Corrupt(
                "specialization names not strictly sorted"
            ))
        ));

        // A non-finite weight is corrupt: overwrite the first folded
        // weight with NaN bits. Layout of the first record for "empty"
        // (no folded entries) means we corrupt a later one — find the
        // first weight by rebuilding a single-spec store instead.
        let single = CompiledSpecStore::build(vec![("x", a.iter())]);
        let mut img = single.to_bytes();
        let w_off = img.len() - 8; // last field is the only weight
        img[w_off..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            CompiledSpecStore::from_bytes(&img),
            Err(DecodeError::Corrupt("non-finite folded weight"))
        ));
    }

    #[test]
    fn empty_store_scores_nothing() {
        let c = CompiledSpecStore::build(Vec::<(&str, std::iter::Empty<&SparseVector>)>::new());
        assert!(c.is_empty());
        assert!(c
            .score_all(&v(&[(1, 1.0)]), UtilityParams::default())
            .is_empty());
        let scorer = c.scorer(["ghost"]);
        let m = scorer.matrix(&[v(&[(1, 1.0)])], UtilityParams::default());
        assert_eq!(m.get(0, 0), 0.0);
    }
}
