//! OptSelect — Algorithm 2, solving MaxUtility Diversify(k).
//!
//! The paper's key observation (§3.1.3): because the MaxUtility objective is
//! *additive* over the selected set,
//!
//! ```text
//! Ũ(S|q) = Σ_{d∈S} Ũ(d|q)                                  (Eq. 8)
//! Ũ(d|q) = Σ_{q′∈Sq} (1−λ)P(d|q) + λP(q′|q)Ũ(d|R_q′)       (Eq. 9)
//! ```
//!
//! the problem reduces to scoring each candidate once and keeping the top-k
//! — subject to the constraint that "every specialization is covered
//! proportionally to its probability": `|Rq ⋈ q′| ≥ ⌊k·P(q′|q)⌋` where
//! `Rq ⋈ q′ = {d : U(d|R_q′) > 0}`.
//!
//! Implementation, following Algorithm 2's heap discipline:
//!
//! 1. one pass over the `n` candidates feeds |Sq| **bounded heaps** of
//!    capacity `⌊k·P(q′|q)⌋+1` (only candidates useful for that
//!    specialization enter) plus a global heap `M` — every push is
//!    `O(log k)`, so the whole algorithm is `O(n·|Sq|·log k)`;
//! 2. the selection phase first takes the best document of every covered
//!    specialization (Algorithm 2 lines 07–09), then keeps drawing from the
//!    specialization heaps until each one reaches its proportional quota
//!    (the constraint of the problem statement), and finally fills the
//!    remaining slots from `M` by decreasing overall utility (lines 10–12).
//!
//! Two pseudocode ambiguities are resolved in favour of the problem
//! statement, and documented here: (a) line 06 pushes a candidate into `M`
//! only when it is useless for the specialization under scan — we push every
//! candidate into `M` (same asymptotic cost, a superset of line 06's
//! content, and `M` is what the fill phase draws from); `M`'s capacity is
//! `2k` so that after up to `k` picks from the specialization heaps it still
//! holds `k` fresh candidates; (b) lines 07–09 take one document per
//! specialization, which under-enforces the `⌊k·P⌋` quota — step 2 above
//! enforces it fully. When `|Sq| > k` only the `k` most probable
//! specializations are considered (§3.1.3: "we select from Sq the k
//! specializations with the largest probabilities").

use crate::candidates::DiversifyInput;
use crate::heap::BoundedHeap;
use crate::Diversifier;

/// The OptSelect algorithm.
#[derive(Debug, Clone, Copy)]
pub struct OptSelect {
    /// Relevance/diversity mixing parameter λ of Eq. 9 (the paper uses
    /// 0.15, "the value maximizing α-NDCG@20 in \[24\]").
    pub lambda: f64,
}

impl Default for OptSelect {
    fn default() -> Self {
        OptSelect { lambda: 0.15 }
    }
}

impl OptSelect {
    /// OptSelect with the paper's λ = 0.15.
    pub fn new() -> Self {
        Self::default()
    }

    /// OptSelect with a custom λ ∈ [0, 1].
    pub fn with_lambda(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "λ must lie in [0,1]");
        OptSelect { lambda }
    }
}

impl Diversifier for OptSelect {
    fn name(&self) -> &'static str {
        "OptSelect"
    }

    fn select(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        let n = input.num_candidates();
        let m = input.num_specializations();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        if m == 0 {
            // Not ambiguous: Eq. 9's relevance term carries a |Sq| factor,
            // so with no specializations the ranking is pure relevance.
            let mut heap = BoundedHeap::new(k);
            for (i, &r) in input.relevance.iter().enumerate() {
                heap.push(r, i);
            }
            return heap
                .into_sorted_desc()
                .into_iter()
                .map(|(_, i)| i)
                .collect();
        }

        // Eq. 9 — one score per candidate, computed once.
        let overall: Vec<f64> = (0..n)
            .map(|i| input.overall_utility(i, self.lambda))
            .collect();

        // Active specializations: the k most probable when |Sq| > k.
        let mut spec_order: Vec<usize> = (0..m).collect();
        spec_order.sort_unstable_by(|&a, &b| {
            input.spec_probs[b]
                .total_cmp(&input.spec_probs[a])
                .then(a.cmp(&b))
        });
        spec_order.truncate(k);

        // Algorithm 2 lines 02–06: the bounded heaps.
        let quotas: Vec<usize> = spec_order
            .iter()
            .map(|&j| (k as f64 * input.spec_probs[j]).floor() as usize)
            .collect();
        let mut spec_heaps: Vec<BoundedHeap> =
            quotas.iter().map(|&q| BoundedHeap::new(q + 1)).collect();
        let mut global = BoundedHeap::new(2 * k);
        for (i, &score) in overall.iter().enumerate() {
            global.push(score, i);
            let row = input.utilities.row(i);
            for (h, &j) in spec_order.iter().enumerate() {
                if row[j] > 0.0 {
                    spec_heaps[h].push(score, i);
                }
            }
        }

        // Selection state: S plus per-specialization coverage counts.
        let mut selected: Vec<usize> = Vec::with_capacity(k);
        let mut in_s = vec![false; n];
        let mut coverage = vec![0usize; spec_order.len()];
        let spec_lists: Vec<Vec<(f64, usize)>> = spec_heaps
            .into_iter()
            .map(BoundedHeap::into_sorted_desc)
            .collect();
        let add = |i: usize,
                   selected: &mut Vec<usize>,
                   in_s: &mut Vec<bool>,
                   coverage: &mut Vec<usize>| {
            if in_s[i] {
                return false;
            }
            in_s[i] = true;
            selected.push(i);
            let row = input.utilities.row(i);
            for (h, &j) in spec_order.iter().enumerate() {
                if row[j] > 0.0 {
                    coverage[h] += 1;
                }
            }
            true
        };

        // Lines 07–09: the single best document of every covered
        // specialization, in decreasing-probability order.
        for list in &spec_lists {
            if selected.len() >= k {
                break;
            }
            if let Some(&(_, i)) = list.iter().find(|&&(_, i)| !in_s[i]) {
                add(i, &mut selected, &mut in_s, &mut coverage);
            }
        }

        // Constraint phase: round-robin the specializations until each
        // reaches its ⌊k·P⌋ quota (or its heap runs dry).
        let mut cursors = vec![0usize; spec_lists.len()];
        let mut progressed = true;
        while progressed && selected.len() < k {
            progressed = false;
            for h in 0..spec_lists.len() {
                if selected.len() >= k || coverage[h] >= quotas[h] {
                    continue;
                }
                let list = &spec_lists[h];
                while cursors[h] < list.len() && in_s[list[cursors[h]].1] {
                    cursors[h] += 1;
                }
                if cursors[h] < list.len() {
                    let i = list[cursors[h]].1;
                    add(i, &mut selected, &mut in_s, &mut coverage);
                    progressed = true;
                }
            }
        }

        // Lines 10–12: fill from M by decreasing overall utility.
        for (_, i) in global.into_sorted_desc() {
            if selected.len() >= k {
                break;
            }
            add(i, &mut selected, &mut in_s, &mut coverage);
        }
        debug_assert_eq!(selected.len(), k, "M holds 2k candidates ≥ k fresh");

        // Final SERP order: the paper defines S as a *set*; for the
        // evaluated run we order it by proportional apportionment over the
        // specializations (each rank goes to the specialization with the
        // largest deficit P(q'|q)·rank − emitted, docs within a
        // specialization by decreasing overall utility). Early ranks thus
        // cover the interpretations proportionally to their probability —
        // the MaxUtility constraint carried into the presentation order.
        order_selected(input, &spec_order, &overall, selected)
    }
}

/// Proportional-apportionment presentation order of a selected set (see
/// the trailing comment in [`OptSelect::select`]). `O(k·|Sq| + k log k)`.
fn order_selected(
    input: &DiversifyInput,
    spec_order: &[usize],
    overall: &[f64],
    selected: Vec<usize>,
) -> Vec<usize> {
    let k = selected.len();
    // Assign each document to its strongest specialization.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); spec_order.len()];
    let mut unassigned: Vec<usize> = Vec::new();
    for &i in &selected {
        let row = input.utilities.row(i);
        let mut best: Option<(f64, usize)> = None;
        for (h, &j) in spec_order.iter().enumerate() {
            if row[j] > 0.0 {
                let score = input.spec_probs[j] * row[j];
                if best.is_none_or(|(bs, _)| score > bs) {
                    best = Some((score, h));
                }
            }
        }
        match best {
            Some((_, h)) => buckets[h].push(i),
            None => unassigned.push(i),
        }
    }
    let desc = |v: &mut Vec<usize>| {
        v.sort_unstable_by(|&a, &b| overall[b].total_cmp(&overall[a]).then(a.cmp(&b)));
    };
    for b in &mut buckets {
        desc(b);
    }
    desc(&mut unassigned);

    // Largest-deficit scheduling.
    let mut out = Vec::with_capacity(k);
    let mut cursors = vec![0usize; buckets.len()];
    let mut emitted = vec![0f64; buckets.len()];
    let mut un_cursor = 0usize;
    for rank in 1..=k {
        let mut pick: Option<(f64, usize)> = None;
        for (h, bucket) in buckets.iter().enumerate() {
            if cursors[h] >= bucket.len() {
                continue;
            }
            let deficit = input.spec_probs[spec_order[h]] * rank as f64 - emitted[h];
            if pick.is_none_or(|(pd, _)| deficit > pd) {
                pick = Some((deficit, h));
            }
        }
        match pick {
            Some((_, h)) => {
                out.push(buckets[h][cursors[h]]);
                cursors[h] += 1;
                emitted[h] += 1.0;
            }
            None => {
                if un_cursor < unassigned.len() {
                    out.push(unassigned[un_cursor]);
                    un_cursor += 1;
                }
            }
        }
    }
    while out.len() < k && un_cursor < unassigned.len() {
        out.push(unassigned[un_cursor]);
        un_cursor += 1;
    }
    debug_assert_eq!(out.len(), k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityMatrix;

    /// 6 candidates × 2 specializations with probabilities (0.75, 0.25).
    fn input() -> DiversifyInput {
        #[rustfmt::skip]
        let u = vec![
            // spec0, spec1
            0.9, 0.0, // 0: strong for spec0
            0.8, 0.0, // 1: strong for spec0
            0.7, 0.0, // 2: strong for spec0
            0.0, 0.6, // 3: only doc (with 4) for spec1
            0.0, 0.5, // 4
            0.0, 0.0, // 5: useless for both
        ];
        DiversifyInput::new(
            vec![0.75, 0.25],
            vec![1.0, 0.9, 0.8, 0.4, 0.3, 0.99],
            UtilityMatrix::from_values(6, 2, u),
        )
    }

    #[test]
    fn returns_min_k_n_distinct_indices() {
        let inp = input();
        let algo = OptSelect::new();
        for k in [0usize, 1, 3, 6, 10] {
            let s = algo.select(&inp, k);
            assert_eq!(s.len(), k.min(6), "k={k}");
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), s.len(), "duplicates at k={k}");
        }
    }

    #[test]
    fn covers_both_specializations() {
        let inp = input();
        let s = OptSelect::with_lambda(1.0).select(&inp, 4);
        // Quotas: ⌊4·0.75⌋ = 3 for spec0, ⌊4·0.25⌋ = 1 for spec1.
        let cov0 = s.iter().filter(|&&i| inp.utilities.get(i, 0) > 0.0).count();
        let cov1 = s.iter().filter(|&&i| inp.utilities.get(i, 1) > 0.0).count();
        assert!(cov0 >= 3, "spec0 coverage {cov0}");
        assert!(cov1 >= 1, "spec1 coverage {cov1}");
    }

    #[test]
    fn pure_relevance_lambda_zero_is_top_k_relevance() {
        let inp = input();
        let s = OptSelect::with_lambda(0.0).select(&inp, 3);
        // λ=0 ⇒ overall utility ∝ relevance; but the coverage constraint
        // still guarantees spec1 gets its ⌊3·0.25⌋ = 0 docs and spec0 its
        // ⌊3·0.75⌋ = 2: picks follow relevance among useful docs.
        // Top relevance overall: 0 (1.0), 5 (0.99), 1 (0.9).
        // Phase 1 seeds best-per-spec first: 0 (spec0) and 3 (spec1).
        assert!(s.contains(&0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn unconstrained_case_equals_top_k_by_overall_utility() {
        // Single specialization, quota ⌊k·1⌋ = k: every useful doc counts;
        // with all docs useful the output must be the global top-k.
        let u = UtilityMatrix::from_values(5, 1, vec![0.9, 0.7, 0.5, 0.3, 0.1]);
        let inp = DiversifyInput::new(vec![1.0], vec![0.1, 0.2, 0.3, 0.4, 0.5], u);
        let algo = OptSelect::with_lambda(1.0);
        let s = algo.select(&inp, 3);
        // λ=1 ⇒ overall = 1.0·Ũ; top-3 by utility = docs 0,1,2.
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn no_specializations_falls_back_to_relevance_ranking() {
        let u = UtilityMatrix::from_values(4, 0, vec![]);
        let inp = DiversifyInput::new(vec![], vec![0.2, 0.9, 0.5, 0.7], u);
        let s = OptSelect::new().select(&inp, 3);
        assert_eq!(s, vec![1, 3, 2]);
    }

    #[test]
    fn more_specializations_than_k_keeps_most_probable() {
        // 3 specs, k = 2: the two most probable specs are active.
        let u = UtilityMatrix::from_values(
            3,
            3,
            vec![
                0.9, 0.0, 0.0, // doc0 → spec0
                0.0, 0.9, 0.0, // doc1 → spec1
                0.0, 0.0, 0.9, // doc2 → spec2 (least probable spec)
            ],
        );
        let inp = DiversifyInput::new(vec![0.5, 0.3, 0.2], vec![0.5, 0.5, 0.5], u);
        let s = OptSelect::with_lambda(1.0).select(&inp, 2);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&0), "most probable spec covered");
        assert!(s.contains(&1), "second spec covered");
    }

    #[test]
    fn all_utilities_zero_degenerates_to_relevance() {
        let u = UtilityMatrix::from_values(4, 2, vec![0.0; 8]);
        let inp = DiversifyInput::new(vec![0.5, 0.5], vec![0.1, 0.9, 0.4, 0.6], u);
        let s = OptSelect::new().select(&inp, 2);
        assert_eq!(s, vec![1, 3]);
    }

    #[test]
    fn deterministic() {
        let inp = input();
        let algo = OptSelect::new();
        assert_eq!(algo.select(&inp, 4), algo.select(&inp, 4));
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let inp = input();
        let s = OptSelect::new().select(&inp, 100);
        assert_eq!(s.len(), 6);
    }

    #[test]
    #[should_panic(expected = "λ")]
    fn invalid_lambda_panics() {
        let _ = OptSelect::with_lambda(1.5);
    }
}
