//! IASelect — the greedy approximation of QL Diversify(k).
//!
//! §3.1.1 adapts Agrawal et al.'s Diversify(k) (WSDM 2009) to the query-log
//! setting: categories become mined specializations and the quality value
//! `V(d|q,c)` becomes the normalized utility `Ũ(d|R_q′)`. The objective,
//!
//! ```text
//! P(S|q) = Σ_{q′∈Sq} P(q′|q) · (1 − Π_{d∈S} (1 − Ũ(d|R_q′)))   (Eq. 4)
//! ```
//!
//! is submodular; the greedy algorithm that repeatedly inserts the document
//! with the largest *marginal* gain achieves a `(1−1/e)` approximation
//! (Nemhauser et al., 1978). The marginal gain of `d` given the current
//! solution `S` is
//!
//! ```text
//! g(d|S) = Σ_{q′} P(q′|q) · Ũ(d|R_q′) · Π_{d′∈S}(1 − Ũ(d′|R_q′))
//! ```
//!
//! Keeping the per-specialization "uncovered mass" `Π(1−Ũ)` incrementally
//! makes each of the `k` rounds a scan of the remaining candidates —
//! `O(n·k·|Sq|)` total (§4, Table 1).

use crate::candidates::DiversifyInput;
use crate::lazy::lazy_greedy;
use crate::Diversifier;

/// The IASelect greedy algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct IaSelect;

impl IaSelect {
    /// Create the algorithm (no parameters: Eq. 4 has no λ).
    pub fn new() -> Self {
        IaSelect
    }

    /// The pre-optimization full-rescan greedy, kept verbatim as the
    /// equivalence oracle for the lazy [`select`](Diversifier::select)
    /// (`tests/select_equivalence.rs` asserts identical index sequences).
    pub fn select_eager(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        let n = input.num_candidates();
        let m = input.num_specializations();
        let k = k.min(n);
        let mut selected = Vec::with_capacity(k);
        let mut in_s = vec![false; n];
        // Uncovered mass per specialization: Π_{d∈S}(1 − Ũ(d|R_q′)).
        let mut uncovered = vec![1.0f64; m];

        for _ in 0..k {
            let mut best: Option<(f64, f64, usize)> = None; // (gain, relevance, idx)
            for (i, &taken) in in_s.iter().enumerate() {
                if taken {
                    continue;
                }
                let row = input.utilities.row(i);
                let gain: f64 = (0..m)
                    .map(|j| input.spec_probs[j] * row[j] * uncovered[j])
                    .sum();
                let key = (gain, input.relevance[i], i);
                let better = match best {
                    None => true,
                    Some((bg, br, bi)) => {
                        gain > bg || (gain == bg && (key.1 > br || (key.1 == br && i < bi)))
                    }
                };
                if better {
                    best = Some(key);
                }
            }
            let Some((_, _, idx)) = best else { break };
            in_s[idx] = true;
            selected.push(idx);
            let row = input.utilities.row(idx);
            for j in 0..m {
                uncovered[j] *= 1.0 - row[j];
            }
        }
        selected
    }
}

impl Diversifier for IaSelect {
    fn name(&self) -> &'static str {
        "IASelect"
    }

    /// Exact lazy-greedy IASelect (identical picks to
    /// [`select_eager`](IaSelect::select_eager)).
    ///
    /// Staleness invariant: `uncovered[j]` only shrinks and every gain
    /// summand `P(q′|q)·Ũ·uncovered` is non-negative, so a stale gain
    /// upper-bounds the fresh one in f64 arithmetic. The secondary tie key
    /// is the (round-independent) baseline relevance, matching the eager
    /// `gain, relevance, index` comparison chain.
    fn select(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        let n = input.num_candidates();
        let m = input.num_specializations();
        // Both closures touch the uncovered-mass state; a RefCell gives
        // them disjoint dynamic borrows (the driver never overlaps them).
        let uncovered_cell = std::cell::RefCell::new(vec![1.0f64; m]);
        lazy_greedy(
            n,
            k,
            |i, _selected| {
                let uncovered = uncovered_cell.borrow();
                let row = input.utilities.row(i);
                let gain: f64 = (0..m)
                    .map(|j| input.spec_probs[j] * row[j] * uncovered[j])
                    .sum();
                (gain, input.relevance[i])
            },
            |idx| {
                let mut uncovered = uncovered_cell.borrow_mut();
                let row = input.utilities.row(idx);
                for j in 0..m {
                    uncovered[j] *= 1.0 - row[j];
                }
            },
        )
    }
}

/// Evaluate the Eq. 4 objective of a solution (used by tests and the
/// ablation benches).
pub fn objective(input: &DiversifyInput, solution: &[usize]) -> f64 {
    (0..input.num_specializations())
        .map(|j| {
            let uncovered: f64 = solution
                .iter()
                .map(|&i| 1.0 - input.utilities.get(i, j))
                .product();
            input.spec_probs[j] * (1.0 - uncovered)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityMatrix;

    /// Two specializations; doc2 covers both moderately.
    fn input() -> DiversifyInput {
        #[rustfmt::skip]
        let u = vec![
            0.9, 0.0,
            0.0, 0.9,
            0.5, 0.5,
            0.1, 0.1,
        ];
        DiversifyInput::new(
            vec![0.5, 0.5],
            vec![0.9, 0.8, 0.7, 0.6],
            UtilityMatrix::from_values(4, 2, u),
        )
    }

    #[test]
    fn first_pick_maximizes_weighted_utility() {
        let inp = input();
        let s = IaSelect::new().select(&inp, 1);
        // Gains: d0 = .5·.9 = .45, d1 = .45, d2 = .5·.5+.5·.5 = .5 → d2.
        assert_eq!(s, vec![2]);
    }

    #[test]
    fn second_pick_respects_coverage_decay() {
        let inp = input();
        let s = IaSelect::new().select(&inp, 3);
        assert_eq!(s[0], 2);
        // After d2, uncovered = (.5, .5); gains: d0 = .5·.9·.5 = .225,
        // d1 = .225 → tie → relevance breaks it: d0 (0.9) over d1 (0.8).
        assert_eq!(s[1], 0);
        assert_eq!(s[2], 1);
    }

    #[test]
    fn greedy_is_near_optimal_on_small_instances() {
        // Exhaustive check of the (1 − 1/e) guarantee on every C(6,3).
        let inp = {
            #[rustfmt::skip]
            let u = vec![
                0.8, 0.1, 0.0,
                0.1, 0.7, 0.0,
                0.0, 0.2, 0.9,
                0.4, 0.4, 0.1,
                0.2, 0.0, 0.5,
                0.6, 0.6, 0.6,
            ];
            DiversifyInput::new(
                vec![0.5, 0.3, 0.2],
                vec![1.0; 6],
                UtilityMatrix::from_values(6, 3, u),
            )
        };
        let greedy = IaSelect::new().select(&inp, 3);
        let greedy_val = objective(&inp, &greedy);
        let mut best_val = 0.0f64;
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    best_val = best_val.max(objective(&inp, &[a, b, c]));
                }
            }
        }
        assert!(
            greedy_val >= (1.0 - 1.0 / std::f64::consts::E) * best_val,
            "greedy {greedy_val} < (1-1/e)·{best_val}"
        );
    }

    #[test]
    fn zero_utility_candidates_ranked_by_relevance() {
        let u = UtilityMatrix::from_values(3, 1, vec![0.0, 0.0, 0.0]);
        let inp = DiversifyInput::new(vec![1.0], vec![0.3, 0.9, 0.6], u);
        let s = IaSelect::new().select(&inp, 3);
        assert_eq!(s, vec![1, 2, 0]);
    }

    #[test]
    fn k_bounds() {
        let inp = input();
        assert!(IaSelect::new().select(&inp, 0).is_empty());
        assert_eq!(IaSelect::new().select(&inp, 99).len(), 4);
    }

    #[test]
    fn objective_monotone_in_solution_size() {
        let inp = input();
        let s = IaSelect::new().select(&inp, 4);
        let mut prev = 0.0;
        for l in 1..=4 {
            let v = objective(&inp, &s[..l]);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        assert!(prev <= 1.0 + 1e-12);
    }
}
