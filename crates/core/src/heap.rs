//! Bounded top-`m` heaps — the data structure behind Algorithm 2.
//!
//! §4: "we use a collection of |Sq| heaps each of those keeps the top
//! ⌊k · P(q′|q)⌋ + 1 most useful documents for that specialization ... all
//! the heap operations are carried out on data structures having a constant
//! size bounded by k", giving OptSelect its `O(n · log k)` cost.
//!
//! [`BoundedHeap`] keeps the `m` highest-scoring items seen so far using an
//! internal min-heap of size ≤ m: each `push` is `O(log m)`; items that
//! cannot enter the top-`m` are rejected in `O(1)` (comparison against the
//! root). Ties break towards the smaller item id, deterministically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Entry ordered so the [`BinaryHeap`] root is the *weakest* kept item.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinEntry {
    score: f64,
    item: usize,
}

impl Eq for MinEntry {}

impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed score (min-heap); on ties the *larger* id is weaker, so
        // equal-score items survive in increasing-id order.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A heap retaining the top-`m` `(score, item)` pairs.
#[derive(Debug, Clone)]
pub struct BoundedHeap {
    capacity: usize,
    heap: BinaryHeap<MinEntry>,
}

impl BoundedHeap {
    /// Heap keeping at most `capacity` items. `capacity == 0` is a valid
    /// degenerate heap that rejects everything (a specialization with
    /// ⌊k·P⌋+1 = 0 cannot happen, but the framework guards uniformly).
    pub fn new(capacity: usize) -> Self {
        BoundedHeap {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// Capacity bound `m`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of kept items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer `(score, item)`; returns `true` if it entered the top-`m`.
    pub fn push(&mut self, score: f64, item: usize) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(MinEntry { score, item });
            return true;
        }
        // Full: compare with the weakest kept entry.
        let weakest = self.heap.peek().expect("nonempty when full");
        let candidate = MinEntry { score, item };
        // `candidate > weakest` in MinEntry order ⇔ candidate is weaker.
        if candidate < *weakest {
            self.heap.pop();
            self.heap.push(candidate);
            true
        } else {
            false
        }
    }

    /// Drain into a vector sorted by decreasing score (ties by increasing
    /// item id).
    pub fn into_sorted_desc(self) -> Vec<(f64, usize)> {
        let mut v: Vec<(f64, usize)> = self.heap.into_iter().map(|e| (e.score, e.item)).collect();
        v.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_m() {
        let mut h = BoundedHeap::new(3);
        for (s, i) in [(1.0, 0), (5.0, 1), (3.0, 2), (4.0, 3), (2.0, 4)] {
            h.push(s, i);
        }
        assert_eq!(h.len(), 3);
        let sorted = h.into_sorted_desc();
        assert_eq!(sorted, vec![(5.0, 1), (4.0, 3), (3.0, 2)]);
    }

    #[test]
    fn rejects_weak_items_when_full() {
        let mut h = BoundedHeap::new(2);
        assert!(h.push(5.0, 0));
        assert!(h.push(4.0, 1));
        assert!(!h.push(1.0, 2), "weaker than both kept");
        assert!(h.push(6.0, 3), "stronger than the weakest");
        let sorted = h.into_sorted_desc();
        assert_eq!(sorted, vec![(6.0, 3), (5.0, 0)]);
    }

    #[test]
    fn ties_keep_smaller_ids() {
        let mut h = BoundedHeap::new(2);
        h.push(1.0, 5);
        h.push(1.0, 1);
        h.push(1.0, 3);
        let kept: Vec<usize> = h.into_sorted_desc().iter().map(|&(_, i)| i).collect();
        assert_eq!(kept, vec![1, 3]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut h = BoundedHeap::new(0);
        assert!(!h.push(9.0, 0));
        assert!(h.is_empty());
        assert!(h.into_sorted_desc().is_empty());
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut h = BoundedHeap::new(10);
        h.push(2.0, 0);
        h.push(1.0, 1);
        assert_eq!(h.len(), 2);
        assert_eq!(h.capacity(), 10);
    }

    #[test]
    fn negative_and_nan_free_scores() {
        let mut h = BoundedHeap::new(2);
        h.push(-5.0, 0);
        h.push(-1.0, 1);
        h.push(-3.0, 2);
        let sorted = h.into_sorted_desc();
        assert_eq!(sorted, vec![(-1.0, 1), (-3.0, 2)]);
    }
}
