//! Maximal Marginal Relevance (Carbonell & Goldstein, SIGIR 1998).
//!
//! The pioneering diversifier the paper's related-work section opens with
//! — included as the fourth baseline for the ablation benches. MMR greedily
//! picks
//!
//! ```text
//! d* = argmax_{d ∈ R\S} (1−λ)·rel(d) − λ·max_{d′∈S} sim(d, d′)
//! ```
//!
//! MMR needs pairwise document similarity, which the paper's three
//! algorithms deliberately avoid (their diversity signal comes from the
//! mined specializations). When surrogate vectors are attached to the
//! input, `sim` is the snippet cosine; otherwise the utility *profile*
//! rows act as low-dimensional document descriptions and `sim` is their
//! cosine — documents useful for the same specializations count as similar.
//!
//! Complexity: `O(n·k)` similarity evaluations thanks to the incremental
//! `max_sim` array (each new selection updates every candidate's best
//! similarity in one pass).

use crate::candidates::DiversifyInput;
use crate::lazy::lazy_greedy;
use crate::Diversifier;
use serpdiv_index::cosine;

/// The MMR algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Mmr {
    /// Diversity weight λ ∈ [0, 1] (0 = pure relevance).
    pub lambda: f64,
}

impl Default for Mmr {
    fn default() -> Self {
        Mmr { lambda: 0.5 }
    }
}

impl Mmr {
    /// MMR with the conventional λ = 0.5.
    pub fn new() -> Self {
        Self::default()
    }

    /// MMR with a custom λ ∈ [0, 1].
    pub fn with_lambda(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "λ must lie in [0,1]");
        Mmr { lambda }
    }

    fn similarity(&self, input: &DiversifyInput, a: usize, b: usize) -> f64 {
        if let Some(vectors) = &input.vectors {
            return f64::from(cosine(&vectors[a], &vectors[b]));
        }
        // Fallback: cosine of the utility profiles.
        let ra = input.utilities.row(a);
        let rb = input.utilities.row(b);
        let dot: f64 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
        let na: f64 = ra.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = rb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }
}

impl Mmr {
    /// The pre-optimization full-rescan greedy, kept verbatim as the
    /// equivalence oracle for the lazy [`select`](Diversifier::select)
    /// (`tests/select_equivalence.rs` asserts identical index sequences).
    pub fn select_eager(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        let n = input.num_candidates();
        let k = k.min(n);
        let mut selected = Vec::with_capacity(k);
        let mut in_s = vec![false; n];
        // max_{d′∈S} sim(d, d′) per candidate, updated incrementally.
        let mut max_sim = vec![0.0f64; n];

        for round in 0..k {
            let mut best: Option<(f64, usize)> = None;
            for i in 0..n {
                if in_s[i] {
                    continue;
                }
                let score = if round == 0 {
                    input.relevance[i]
                } else {
                    (1.0 - self.lambda) * input.relevance[i] - self.lambda * max_sim[i]
                };
                let better = match best {
                    None => true,
                    Some((bs, bi)) => score > bs || (score == bs && i < bi),
                };
                if better {
                    best = Some((score, i));
                }
            }
            let Some((_, idx)) = best else { break };
            in_s[idx] = true;
            selected.push(idx);
            for i in 0..n {
                if !in_s[i] {
                    max_sim[i] = max_sim[i].max(self.similarity(input, i, idx));
                }
            }
        }
        selected
    }
}

impl Diversifier for Mmr {
    fn name(&self) -> &'static str {
        "MMR"
    }

    /// Exact lazy-greedy MMR (identical picks to
    /// [`select_eager`](Mmr::select_eager)).
    ///
    /// Two optimizations over the eager loop, both bit-preserving:
    ///
    /// * Utility-profile norms (the fallback `sim` denominators) are
    ///   computed once per candidate instead of per pair — the same
    ///   `Σx²` → `sqrt` expression over the same row, so the same f64.
    /// * Similarity folding is *deferred*: each candidate's `max_sim` is
    ///   folded against `selected[applied[i]..]` only when the candidate
    ///   is re-scored, in selection order — the identical sequence of f64
    ///   `max` folds the eager loop performs eagerly for everyone.
    ///
    /// Staleness invariant: a round-0 score is `rel(i)`, which
    /// upper-bounds `(1−λ)·rel(i) − λ·max_sim` for every later round
    /// (`rel ≥ 0`, `max_sim ≥ 0`, `λ ∈ [0,1]`); from round 1 on,
    /// `max_sim` only grows and enters negatively, so stale scores only
    /// overestimate — exactly what [`lazy_greedy`] needs.
    fn select(&self, input: &DiversifyInput, k: usize) -> Vec<usize> {
        let n = input.num_candidates();
        // Per-candidate profile norms for the no-vectors fallback,
        // hoisted out of the O(n·k) similarity evaluations.
        let norms: Option<Vec<f64>> = if input.vectors.is_none() {
            Some(
                (0..n)
                    .map(|i| {
                        input
                            .utilities
                            .row(i)
                            .iter()
                            .map(|x| x * x)
                            .sum::<f64>()
                            .sqrt()
                    })
                    .collect(),
            )
        } else {
            None
        };
        let sim = |a: usize, b: usize| -> f64 {
            if let Some(vectors) = &input.vectors {
                return f64::from(cosine(&vectors[a], &vectors[b]));
            }
            let norms = norms.as_ref().expect("norms exist when vectors don't");
            let (na, nb) = (norms[a], norms[b]);
            if na == 0.0 || nb == 0.0 {
                return 0.0;
            }
            let ra = input.utilities.row(a);
            let rb = input.utilities.row(b);
            let dot: f64 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
            (dot / (na * nb)).clamp(0.0, 1.0)
        };
        // (max_sim, applied): candidate i's similarity max is folded
        // against selected[applied[i]..] lazily, on re-score.
        let state = std::cell::RefCell::new((vec![0.0f64; n], vec![0usize; n]));
        lazy_greedy(
            n,
            k,
            |i, selected: &[usize]| {
                if selected.is_empty() {
                    return (input.relevance[i], 0.0);
                }
                let mut st = state.borrow_mut();
                let (max_sim, applied) = &mut *st;
                while applied[i] < selected.len() {
                    max_sim[i] = max_sim[i].max(sim(i, selected[applied[i]]));
                    applied[i] += 1;
                }
                (
                    (1.0 - self.lambda) * input.relevance[i] - self.lambda * max_sim[i],
                    0.0,
                )
            },
            |_idx| {},
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityMatrix;
    use serpdiv_index::SparseVector;
    use serpdiv_text::TermId;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    /// docs 0 and 1 are near-duplicates; doc 2 is different.
    fn input_with_vectors() -> DiversifyInput {
        let u = UtilityMatrix::from_values(3, 1, vec![0.5, 0.5, 0.5]);
        DiversifyInput::new(vec![1.0], vec![1.0, 0.98, 0.6], u).with_vectors(vec![
            std::sync::Arc::new(v(&[(1, 1.0), (2, 1.0)])),
            std::sync::Arc::new(v(&[(1, 1.0), (2, 0.9)])),
            std::sync::Arc::new(v(&[(9, 1.0)])),
        ])
    }

    #[test]
    fn first_pick_is_most_relevant() {
        let inp = input_with_vectors();
        let s = Mmr::new().select(&inp, 1);
        assert_eq!(s, vec![0]);
    }

    #[test]
    fn duplicates_are_penalized() {
        let inp = input_with_vectors();
        let s = Mmr::with_lambda(0.6).select(&inp, 2);
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 2, "near-duplicate doc1 must lose to doc2");
    }

    #[test]
    fn lambda_zero_is_relevance_order() {
        let inp = input_with_vectors();
        let s = Mmr::with_lambda(0.0).select(&inp, 3);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn utility_profile_fallback_without_vectors() {
        // docs 0,1 share a specialization profile; doc 2 differs.
        let u = UtilityMatrix::from_values(3, 2, vec![0.9, 0.0, 0.8, 0.0, 0.0, 0.9]);
        let inp = DiversifyInput::new(vec![0.5, 0.5], vec![1.0, 0.95, 0.5], u);
        let s = Mmr::with_lambda(0.8).select(&inp, 2);
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 2);
    }

    #[test]
    fn output_size_and_distinctness() {
        let inp = input_with_vectors();
        for k in [0, 1, 2, 3, 10] {
            let s = Mmr::new().select(&inp, k);
            assert_eq!(s.len(), k.min(3));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), s.len());
        }
    }
}
