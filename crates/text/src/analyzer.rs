//! The composed analysis pipeline: tokenize → stopword-filter → stem.
//!
//! This is the pipeline the paper's Terrier configuration applies both at
//! indexing and at query time ("Porter's stemmer and standard English
//! stopword removal", §5). Both sides must share one [`Analyzer`] so query
//! terms meet the same normal form stored in the index.

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::tokenizer::Tokenizer;
use crate::vocab::{TermId, Vocabulary};

/// Text-analysis pipeline configuration.
#[derive(Debug, Clone)]
pub struct Analyzer {
    tokenizer: Tokenizer,
    remove_stopwords: bool,
    stem: bool,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::english()
    }
}

impl Analyzer {
    /// The pipeline used throughout the reproduction: default tokenizer,
    /// English stopword removal, Porter stemming.
    pub fn english() -> Self {
        Analyzer {
            tokenizer: Tokenizer::default(),
            remove_stopwords: true,
            stem: true,
        }
    }

    /// A pipeline that only tokenizes (no stopwords, no stemming). Useful
    /// for tests and for exact-match query processing.
    pub fn plain() -> Self {
        Analyzer {
            tokenizer: Tokenizer::default(),
            remove_stopwords: false,
            stem: false,
        }
    }

    /// Disable or enable stemming, returning the modified analyzer.
    pub fn with_stemming(mut self, on: bool) -> Self {
        self.stem = on;
        self
    }

    /// Disable or enable stopword removal, returning the modified analyzer.
    pub fn with_stopwords(mut self, remove: bool) -> Self {
        self.remove_stopwords = remove;
        self
    }

    /// Analyze `text` into normalized terms.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        self.tokenizer.tokenize_into(text, &mut tokens);
        let mut out = Vec::with_capacity(tokens.len());
        for tok in tokens {
            if self.remove_stopwords && is_stopword(&tok) {
                continue;
            }
            if self.stem {
                out.push(porter_stem(&tok));
            } else {
                out.push(tok);
            }
        }
        out
    }

    /// Analyze `text` and intern every produced term into `vocab`.
    pub fn analyze_interned(&self, text: &str, vocab: &mut Vocabulary) -> Vec<TermId> {
        self.analyze(text).iter().map(|t| vocab.intern(t)).collect()
    }

    /// Analyze `text`, resolving terms against an existing (read-only)
    /// vocabulary. Terms absent from the vocabulary are dropped — this is
    /// the query-time behaviour: a query term the index has never seen
    /// cannot match anything.
    pub fn analyze_known(&self, text: &str, vocab: &Vocabulary) -> Vec<TermId> {
        self.analyze(text)
            .iter()
            .filter_map(|t| vocab.id(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline() {
        let a = Analyzer::english();
        assert_eq!(
            a.analyze("The leopards were running in the snow"),
            vec!["leopard", "run", "snow"]
        );
    }

    #[test]
    fn plain_pipeline_keeps_everything() {
        let a = Analyzer::plain();
        assert_eq!(
            a.analyze("The leopards were running"),
            vec!["the", "leopards", "were", "running"]
        );
    }

    #[test]
    fn stemming_toggle() {
        let a = Analyzer::english().with_stemming(false);
        assert_eq!(a.analyze("running leopards"), vec!["running", "leopards"]);
    }

    #[test]
    fn stopword_toggle() {
        let a = Analyzer::english().with_stopwords(false);
        assert_eq!(a.analyze("the cat"), vec!["the", "cat"]);
    }

    #[test]
    fn interning_assigns_consistent_ids() {
        let a = Analyzer::english();
        let mut v = Vocabulary::new();
        let first = a.analyze_interned("apple iphone", &mut v);
        let second = a.analyze_interned("apple fruit", &mut v);
        assert_eq!(first[0], second[0]); // "apple" → "appl" shares one id
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn analyze_known_drops_oov_terms() {
        let a = Analyzer::english();
        let mut v = Vocabulary::new();
        a.analyze_interned("apple tree", &mut v);
        let ids = a.analyze_known("apple zeppelin", &v);
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn empty_text() {
        let a = Analyzer::english();
        assert!(a.analyze("").is_empty());
        let mut v = Vocabulary::new();
        assert!(a.analyze_interned("", &mut v).is_empty());
    }

    #[test]
    fn query_and_document_share_normal_form() {
        // The core property the retrieval pipeline depends on.
        let a = Analyzer::english();
        let doc_terms = a.analyze("Running shoes for marathon runners");
        let query_terms = a.analyze("running shoe");
        assert!(query_terms.iter().all(|q| doc_terms.contains(q)));
    }
}
