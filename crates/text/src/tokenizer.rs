//! Word tokenizer.
//!
//! Splits text into lowercase alphanumeric word tokens, the same behaviour
//! as Terrier's default `EnglishTokeniser`: a token is a maximal run of
//! alphanumeric characters; everything else is a separator. Tokens longer
//! than [`Tokenizer::max_token_len`] are dropped (Terrier drops tokens longer
//! than 20 characters — they are almost always junk in web data).

/// Configurable word tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Maximum token length kept; longer tokens are discarded.
    pub max_token_len: usize,
    /// Minimum token length kept; shorter tokens are discarded.
    pub min_token_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            max_token_len: 20,
            min_token_len: 1,
        }
    }
}

impl Tokenizer {
    /// Create a tokenizer with the default (Terrier-like) limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenize `text`, pushing lowercase tokens into `out`.
    ///
    /// Reusing `out` across calls avoids per-document allocations
    /// (workhorse-collection pattern).
    pub fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                // Lowercasing can expand to multiple code points, some of
                // which are combining marks (e.g. 'İ' → 'i' + U+0307);
                // keep only the alphanumeric parts so tokens stay clean.
                for lc in ch.to_lowercase().filter(|c| c.is_alphanumeric()) {
                    current.push(lc);
                }
            } else if !current.is_empty() {
                self.flush(&mut current, out);
            }
        }
        if !current.is_empty() {
            self.flush(&mut current, out);
        }
    }

    /// Tokenize `text` into a fresh vector.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(text, &mut out);
        out
    }

    fn flush(&self, current: &mut String, out: &mut Vec<String>) {
        let len = current.chars().count();
        if len >= self.min_token_len && len <= self.max_token_len {
            out.push(std::mem::take(current));
        } else {
            current.clear();
        }
    }
}

/// Tokenize with the default tokenizer.
pub fn tokenize(text: &str) -> Vec<String> {
    Tokenizer::default().tokenize(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(tokenize("Hello, world!"), vec!["hello", "world"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("RuSt IR"), vec!["rust", "ir"]);
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(
            tokenize("trec 2009 web-track"),
            vec!["trec", "2009", "web", "track"]
        );
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n--- ").is_empty());
    }

    #[test]
    fn drops_overlong_tokens() {
        let long = "a".repeat(25);
        let text = format!("short {long} ok");
        assert_eq!(tokenize(&text), vec!["short", "ok"]);
    }

    #[test]
    fn min_len_filter() {
        let t = Tokenizer {
            min_token_len: 2,
            ..Tokenizer::default()
        };
        assert_eq!(t.tokenize("a bb c ddd"), vec!["bb", "ddd"]);
    }

    #[test]
    fn unicode_is_handled() {
        assert_eq!(tokenize("café münchen"), vec!["café", "münchen"]);
    }

    #[test]
    fn reuse_buffer() {
        let t = Tokenizer::default();
        let mut buf = Vec::new();
        t.tokenize_into("one two", &mut buf);
        assert_eq!(buf, vec!["one", "two"]);
        buf.clear();
        t.tokenize_into("three", &mut buf);
        assert_eq!(buf, vec!["three"]);
    }
}
