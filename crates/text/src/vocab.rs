//! Interning term dictionary.
//!
//! Maps analyzed terms to dense [`TermId`]s so downstream structures
//! (postings lists, TF-IDF vectors, language models) can work with `u32`
//! keys instead of strings. Ids are assigned in first-seen order and are
//! stable for the lifetime of the vocabulary.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional term ↔ id dictionary.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    #[serde(skip)]
    by_term: HashMap<String, TermId>,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.by_term.insert(term.to_string(), id);
        id
    }

    /// Look up the id of `term` without interning.
    pub fn id(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The string for `id`, if assigned.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Iterate over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }

    /// Rebuild the reverse map after deserialization (the map is not
    /// serialized to keep the on-disk form small and canonical).
    pub fn rebuild_reverse_index(&mut self) {
        self.by_term = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TermId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let b = v.intern("apple");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("b"), TermId(1));
        assert_eq!(v.intern("c"), TermId(2));
    }

    #[test]
    fn roundtrip_lookup() {
        let mut v = Vocabulary::new();
        let id = v.intern("leopard");
        assert_eq!(v.id("leopard"), Some(id));
        assert_eq!(v.term(id), Some("leopard"));
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.term(TermId(99)), None);
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let collected: Vec<_> = v.iter().map(|(id, t)| (id.0, t.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn rebuild_reverse_index_restores_lookup() {
        let mut v = Vocabulary::new();
        v.intern("apple");
        v.intern("tree");
        let mut clone = Vocabulary {
            terms: v.terms.clone(),
            by_term: HashMap::new(),
        };
        assert_eq!(clone.id("tree"), None);
        clone.rebuild_reverse_index();
        assert_eq!(clone.id("tree"), Some(TermId(1)));
    }
}
