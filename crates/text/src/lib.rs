//! Text-analysis substrate for the `serpdiv` workspace.
//!
//! The paper (Capannini et al., VLDB 2011) indexes ClueWeb-B with the Terrier
//! platform using "Porter's stemmer and standard English stopword removal"
//! (§5). This crate provides the equivalent pipeline, built from scratch:
//!
//! * [`tokenizer`] — Unicode-aware lowercasing word tokenizer,
//! * [`stem`] — a full implementation of the classic Porter (1980) stemmer,
//! * [`stopwords`] — the standard English stopword list,
//! * [`vocab`] — an interning term dictionary mapping terms to dense
//!   [`TermId`]s,
//! * [`analyzer`] — the composed pipeline used by the indexer, the corpus
//!   generator and the query-side processing.
//!
//! # Example
//!
//! ```
//! use serpdiv_text::{Analyzer, Vocabulary};
//!
//! let analyzer = Analyzer::english();
//! let mut vocab = Vocabulary::new();
//! let ids = analyzer.analyze_interned("The runners were running quickly!", &mut vocab);
//! // "the" and "were" are stopwords; "runners"/"running" both stem to "runner"/"run".
//! assert_eq!(ids.len(), 3);
//! assert_eq!(vocab.term(ids[0]), Some("runner"));
//! assert_eq!(vocab.term(ids[1]), Some("run"));
//! assert_eq!(vocab.term(ids[2]), Some("quickli"));
//! ```

pub mod analyzer;
pub mod stem;
pub mod stopwords;
pub mod tokenizer;
pub mod vocab;

pub use analyzer::Analyzer;
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tokenizer::{tokenize, Tokenizer};
pub use vocab::{TermId, Vocabulary};
