//! The Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
//! stripping", *Program* 14(3), 1980).
//!
//! This is a faithful from-scratch implementation of the classic algorithm
//! (the original 1980 definition, the variant shipped by Terrier and used by
//! the paper's indexing pipeline). Words are processed as ASCII lowercase;
//! words containing non-ASCII-alphabetic characters are returned unchanged,
//! as are words of length ≤ 2.
//!
//! The implementation follows the original description: a word is a sequence
//! of consonant/vowel runs `[C](VC)^m[V]`, and each step of the algorithm
//! conditions suffix rewrites on the *measure* `m` of the remaining stem.

/// Stem a single lowercase word with the Porter algorithm.
///
/// The input is expected to already be lowercase (the
/// [`Tokenizer`](crate::tokenizer::Tokenizer) guarantees this); uppercase
/// ASCII is tolerated and lowered. Returns the input unchanged when it is
/// too short to stem or contains characters outside `[a-z]`.
pub fn porter_stem(word: &str) -> String {
    if word.chars().count() <= 2 {
        return word.to_string();
    }
    let mut b: Vec<u8> = Vec::with_capacity(word.len());
    for ch in word.chars() {
        let lc = ch.to_ascii_lowercase();
        if !lc.is_ascii_alphabetic() {
            return word.to_string();
        }
        b.push(lc as u8);
    }
    let mut s = Stemmer { b };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // The buffer only ever contains ASCII bytes.
    String::from_utf8(s.b).expect("stemmer buffer is ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is the letter at position `i` a consonant?
    ///
    /// `y` is a consonant when it is the first letter or follows a vowel
    /// ("toy" — y consonant; "syzygy" — alternating).
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The measure `m` of the prefix `b[..len]`: the number of VC sequences
    /// in `[C](VC)^m[V]`.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip the optional initial consonant run.
        while i < len && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Vowel run.
            while i < len && !self.is_consonant(i) {
                i += 1;
            }
            if i >= len {
                return m;
            }
            // Consonant run closes one VC sequence.
            while i < len && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
            if i >= len {
                return m;
            }
        }
    }

    /// Does the prefix `b[..len]` contain a vowel?
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_consonant(i))
    }

    /// Does the prefix `b[..len]` end with a double consonant?
    fn ends_double_consonant(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_consonant(len - 1)
    }

    /// `*o`: the prefix ends consonant-vowel-consonant where the final
    /// consonant is not `w`, `x` or `y` ("hop" yes, "snow"/"box"/"tray" no).
    fn ends_cvc(&self, len: usize) -> bool {
        if len < 3 {
            return false;
        }
        if !self.is_consonant(len - 3) || self.is_consonant(len - 2) || !self.is_consonant(len - 1)
        {
            return false;
        }
        !matches!(self.b[len - 1], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &[u8]) -> bool {
        self.b.len() >= suffix.len() && self.b[self.b.len() - suffix.len()..] == *suffix
    }

    /// Length of the stem if `suffix` were removed, or `None`.
    fn stem_len(&self, suffix: &[u8]) -> Option<usize> {
        if self.ends_with(suffix) {
            Some(self.b.len() - suffix.len())
        } else {
            None
        }
    }

    /// Replace `suffix` by `replacement` if present and the stem measure
    /// exceeds `min_m`. Returns true if the word ended with `suffix`
    /// (whether or not the rewrite fired), so rule lists can stop at the
    /// first matching suffix, as the original algorithm requires.
    fn replace_if_m(&mut self, suffix: &[u8], replacement: &[u8], min_m: usize) -> bool {
        if let Some(sl) = self.stem_len(suffix) {
            if self.measure(sl) > min_m {
                self.b.truncate(sl);
                self.b.extend_from_slice(replacement);
            }
            true
        } else {
            false
        }
    }

    /// Step 1a: plural reduction. SSES→SS, IES→I, SS→SS, S→ε.
    // The SSES and IES arms both drop two bytes — distinct rules of the
    // published algorithm that happen to share an implementation.
    #[allow(clippy::if_same_then_else)]
    fn step1a(&mut self) {
        if self.ends_with(b"sses") {
            self.b.truncate(self.b.len() - 2);
        } else if self.ends_with(b"ies") {
            self.b.truncate(self.b.len() - 2);
        } else if self.ends_with(b"ss") {
            // keep
        } else if self.ends_with(b"s") {
            self.b.pop();
        }
    }

    /// Step 1b: -ed / -ing removal with cleanup.
    fn step1b(&mut self) {
        if let Some(sl) = self.stem_len(b"eed") {
            if self.measure(sl) > 0 {
                self.b.pop(); // eed -> ee
            }
            return;
        }
        let fired = if let Some(sl) = self.stem_len(b"ed") {
            if self.has_vowel(sl) {
                self.b.truncate(sl);
                true
            } else {
                false
            }
        } else if let Some(sl) = self.stem_len(b"ing") {
            if self.has_vowel(sl) {
                self.b.truncate(sl);
                true
            } else {
                false
            }
        } else {
            false
        };
        if !fired {
            return;
        }
        // Cleanup after removal: restore an E or undouble a consonant.
        if self.ends_with(b"at") || self.ends_with(b"bl") || self.ends_with(b"iz") {
            self.b.push(b'e');
        } else if self.ends_double_consonant(self.b.len())
            && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
        {
            self.b.pop();
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e');
        }
    }

    /// Step 1c: terminal Y → I when the stem contains a vowel.
    fn step1c(&mut self) {
        if let Some(sl) = self.stem_len(b"y") {
            if self.has_vowel(sl) {
                let n = self.b.len();
                self.b[n - 1] = b'i';
            }
        }
    }

    /// Step 2: double-suffix reduction (m > 0).
    fn step2(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"abli", b"able"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.replace_if_m(suffix, replacement, 0) {
                return;
            }
        }
    }

    /// Step 3: -ic-, -full, -ness etc. (m > 0).
    fn step3(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for (suffix, replacement) in RULES {
            if self.replace_if_m(suffix, replacement, 0) {
                return;
            }
        }
    }

    /// Step 4: strip suffixes when the stem is long enough (m > 1).
    fn step4(&mut self) {
        const RULES: &[&[u8]] = &[
            b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
            b"ent",
        ];
        for suffix in RULES {
            if let Some(sl) = self.stem_len(suffix) {
                if self.measure(sl) > 1 {
                    self.b.truncate(sl);
                }
                return;
            }
        }
        // (m>1 and (*S or *T)) ION -> delete
        if let Some(sl) = self.stem_len(b"ion") {
            if self.measure(sl) > 1 && sl >= 1 && matches!(self.b[sl - 1], b's' | b't') {
                self.b.truncate(sl);
            }
            return;
        }
        const RULES2: &[&[u8]] = &[b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize"];
        for suffix in RULES2 {
            if let Some(sl) = self.stem_len(suffix) {
                if self.measure(sl) > 1 {
                    self.b.truncate(sl);
                }
                return;
            }
        }
    }

    /// Step 5a: remove a final E when the stem is long enough.
    fn step5a(&mut self) {
        if let Some(sl) = self.stem_len(b"e") {
            let m = self.measure(sl);
            if m > 1 || (m == 1 && !self.ends_cvc(sl)) {
                self.b.pop();
            }
        }
    }

    /// Step 5b: undouble a final LL when m > 1 ("controll" → "control").
    fn step5b(&mut self) {
        let n = self.b.len();
        if n >= 2
            && self.b[n - 1] == b'l'
            && self.ends_double_consonant(n)
            && self.measure(n - 1) > 1
        {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pairs taken from Porter's published sample vocabulary.
    #[test]
    fn classic_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem(""), "");
    }

    #[test]
    fn non_ascii_unchanged() {
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("abc1"), "abc1");
    }

    #[test]
    fn query_terms_from_the_paper() {
        // "leopard pictures" from §3's running example.
        assert_eq!(porter_stem("pictures"), "pictur");
        assert_eq!(porter_stem("leopard"), "leopard");
        assert_eq!(porter_stem("diversification"), "diversif");
        assert_eq!(porter_stem("queries"), "queri");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["running", "relational", "happiness", "generalization"] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but for these common cases
            // the second application must be stable.
            assert_eq!(porter_stem(&twice), twice, "triple-stable for {w}");
        }
    }
}
