//! Standard English stopword removal.
//!
//! The list is the classic "standard English" list (a superset of the
//! SMART/Terrier short list) covering determiners, pronouns, auxiliaries,
//! prepositions and high-frequency adverbs. Lookup is a binary search over a
//! sorted static table — no allocation, no hashing.

/// Sorted list of English stopwords. Kept sorted so [`is_stopword`] can
/// binary-search; the unit tests enforce sortedness.
pub static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Is `word` (already lowercase) an English stopword?
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduplicated() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_stopwords_detected() {
        for w in ["the", "a", "is", "of", "and", "were", "was"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["apple", "leopard", "diversification", "search", "query"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn case_sensitive_lowercase_contract() {
        // The contract is lowercase input; uppercase is not matched.
        assert!(!is_stopword("The"));
    }
}
