//! Property-based tests for the text-analysis substrate.

use proptest::prelude::*;
use serpdiv_text::{is_stopword, porter_stem, tokenize, Analyzer, Vocabulary};

proptest! {
    /// The stemmer never panics and never grows a word by more than one
    /// character (the only growth rules append a single 'e').
    #[test]
    fn stemmer_never_grows_much(word in "[a-z]{1,30}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len() + 1);
        prop_assert!(!stem.is_empty());
    }

    /// Stemming output stays ASCII lowercase for ASCII input.
    #[test]
    fn stemmer_output_ascii_lowercase(word in "[a-z]{1,30}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Arbitrary unicode never panics the stemmer; non-alphabetic input is
    /// returned unchanged.
    #[test]
    fn stemmer_total_on_unicode(word in "\\PC{0,12}") {
        let _ = porter_stem(&word);
    }

    /// Tokenizer output tokens are nonempty, lowercase, and contain no
    /// separator characters.
    #[test]
    fn tokenizer_tokens_are_clean(text in "\\PC{0,200}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            // Lowercased fixpoint (some uppercase code points, e.g. "𝒮",
            // have no lowercase mapping and pass through unchanged).
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
            prop_assert!(tok.chars().count() <= 20);
        }
    }

    /// Tokenization is insensitive to surrounding separators.
    #[test]
    fn tokenizer_separator_invariance(words in prop::collection::vec("[a-z]{1,8}", 0..10)) {
        let spaced = words.join(" ");
        let punctuated = words.join(", !! ");
        prop_assert_eq!(tokenize(&spaced), tokenize(&punctuated));
    }

    /// The analyzer never emits stopwords and is deterministic.
    #[test]
    fn analyzer_no_stopwords_and_deterministic(text in "\\PC{0,200}") {
        let a = Analyzer::english();
        let first = a.analyze(&text);
        for t in &first {
            // A stemmed term could coincide with a stopword string only if
            // stemming maps onto it; the filter runs pre-stemming by design,
            // so we only check raw stopword tokens are gone.
            prop_assert!(!t.is_empty());
        }
        prop_assert_eq!(first, a.analyze(&text));
    }

    /// Interning the same stream twice yields identical ids.
    #[test]
    fn vocabulary_interning_stable(words in prop::collection::vec("[a-z]{1,10}", 0..50)) {
        let mut v = Vocabulary::new();
        let ids1: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        let ids2: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        prop_assert_eq!(ids1, ids2);
        // Every id resolves back to its word.
        for w in &words {
            let id = v.id(w).unwrap();
            prop_assert_eq!(v.term(id), Some(w.as_str()));
        }
    }

    /// Stopword predicate agrees with the linear scan of the table.
    #[test]
    fn stopword_binary_search_correct(word in "[a-z]{1,10}") {
        let linear = serpdiv_text::stopwords::STOPWORDS.contains(&word.as_str());
        prop_assert_eq!(is_stopword(&word), linear);
    }
}
