//! Clustering query refinements by intent.
//!
//! §3.1 of the paper: "any other approach for deriving user intents from
//! query logs (as an example, \[21, 23\]) could be used and easily
//! integrated in our diversification framework" — \[23\] is Sadikov et
//! al., *Clustering query refinements by user intent* (WWW 2010).
//!
//! Distinct reformulation strings frequently express the *same* intent
//! ("apple iphone" / "apple iphone 4"); serving both as separate
//! specializations splits one interpretation's probability mass and wastes
//! result-list slots. This module merges specializations whose *clicked
//! document sets* overlap (users clicking the same pages had the same
//! intent — the click-graph half of Sadikov's model): single-link
//! clustering over Jaccard similarity of click sets, with the summed
//! probability assigned to each cluster's most probable representative.

use crate::model::{SpecializationEntry, SpecializationModel};
use serpdiv_index::DocId;
use serpdiv_querylog::QueryLog;
use std::collections::{HashMap, HashSet};

/// Click-profile store: query text → set of clicked documents.
#[derive(Debug, Default)]
pub struct ClickProfiles {
    clicks: HashMap<String, HashSet<DocId>>,
}

impl ClickProfiles {
    /// Accumulate the clicked-document set of every query in `log`.
    pub fn build(log: &QueryLog) -> Self {
        let mut clicks: HashMap<String, HashSet<DocId>> = HashMap::new();
        for r in log.records() {
            if r.clicks.is_empty() {
                continue;
            }
            if let Some(text) = log.query_text(r.query) {
                clicks
                    .entry(text.to_string())
                    .or_default()
                    .extend(r.clicks.iter().copied());
            }
        }
        ClickProfiles { clicks }
    }

    /// Jaccard similarity of two queries' click sets (0 when either has
    /// no recorded clicks).
    pub fn jaccard(&self, a: &str, b: &str) -> f64 {
        let (Some(sa), Some(sb)) = (self.clicks.get(a), self.clicks.get(b)) else {
            return 0.0;
        };
        let inter = sa.intersection(sb).count();
        let union = sa.len() + sb.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Number of queries with click profiles.
    pub fn len(&self) -> usize {
        self.clicks.len()
    }

    /// True when no clicks were recorded.
    pub fn is_empty(&self) -> bool {
        self.clicks.is_empty()
    }
}

/// Merge the specializations of `entry` whose click-set Jaccard reaches
/// `threshold` (single-link). Each cluster keeps its most probable member
/// as representative and receives the cluster's summed probability;
/// output order is decreasing probability. Probabilities still sum to 1.
pub fn cluster_entry(
    entry: &SpecializationEntry,
    profiles: &ClickProfiles,
    threshold: f64,
) -> SpecializationEntry {
    let n = entry.specializations.len();
    // Union-find over specializations.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let sim = profiles.jaccard(&entry.specializations[i].0, &entry.specializations[j].0);
            if sim >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    // Aggregate per cluster root: summed probability, best representative.
    let mut clusters: HashMap<usize, (String, f64, f64)> = HashMap::new(); // root → (repr, repr_p, total_p)
    for i in 0..n {
        let root = find(&mut parent, i);
        let (text, p) = &entry.specializations[i];
        let slot = clusters
            .entry(root)
            .or_insert_with(|| (text.clone(), *p, 0.0));
        if *p > slot.1 {
            slot.0 = text.clone();
            slot.1 = *p;
        }
        slot.2 += p;
    }
    let mut specializations: Vec<(String, f64)> = clusters
        .into_values()
        .map(|(repr, _, total)| (repr, total))
        .collect();
    specializations.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    SpecializationEntry {
        query: entry.query.clone(),
        specializations,
    }
}

/// Apply [`cluster_entry`] to every entry of a model.
pub fn cluster_model(
    model: &SpecializationModel,
    profiles: &ClickProfiles,
    threshold: f64,
) -> SpecializationModel {
    let mut out = SpecializationModel::default();
    for entry in model.iter() {
        out.insert(cluster_entry(entry, profiles, threshold));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_querylog::{LogRecord, UserId};

    /// Log where "apple iphone" and "apple iphone 4" share clicks and
    /// "apple fruit" clicks elsewhere.
    fn profiles() -> ClickProfiles {
        let mut log = QueryLog::new();
        let mut t = 0u64;
        let add = |log: &mut QueryLog, q: &str, clicks: Vec<u32>, t: &mut u64| {
            let query = log.intern_query(q);
            log.push(LogRecord {
                query,
                user: UserId(0),
                time: *t,
                results: clicks.iter().map(|&d| DocId(d)).collect(),
                clicks: clicks.into_iter().map(DocId).collect(),
            });
            *t += 10;
        };
        add(&mut log, "apple iphone", vec![1, 2, 3], &mut t);
        add(&mut log, "apple iphone 4", vec![2, 3], &mut t);
        add(&mut log, "apple fruit", vec![8, 9], &mut t);
        ClickProfiles::build(&log)
    }

    fn entry() -> SpecializationEntry {
        SpecializationEntry {
            query: "apple".into(),
            specializations: vec![
                ("apple iphone".into(), 0.5),
                ("apple iphone 4".into(), 0.2),
                ("apple fruit".into(), 0.3),
            ],
        }
    }

    #[test]
    fn jaccard_values() {
        let p = profiles();
        assert!((p.jaccard("apple iphone", "apple iphone 4") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.jaccard("apple iphone", "apple fruit"), 0.0);
        assert_eq!(p.jaccard("apple iphone", "never seen"), 0.0);
    }

    #[test]
    fn same_intent_refinements_merge() {
        let p = profiles();
        let clustered = cluster_entry(&entry(), &p, 0.5);
        assert_eq!(clustered.specializations.len(), 2);
        // The merged cluster keeps the most probable representative and
        // the summed probability.
        assert_eq!(clustered.specializations[0].0, "apple iphone");
        assert!((clustered.specializations[0].1 - 0.7).abs() < 1e-12);
        assert_eq!(clustered.specializations[1].0, "apple fruit");
        let total: f64 = clustered.specializations.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_threshold_keeps_everything_separate() {
        let p = profiles();
        let clustered = cluster_entry(&entry(), &p, 0.9);
        assert_eq!(clustered.specializations.len(), 3);
    }

    #[test]
    fn model_level_clustering() {
        let p = profiles();
        let mut model = SpecializationModel::default();
        model.insert(entry());
        let clustered = cluster_model(&model, &p, 0.5);
        assert_eq!(clustered.get("apple").unwrap().specializations.len(), 2);
        assert_eq!(clustered.len(), 1);
    }

    #[test]
    fn queries_without_clicks_never_merge() {
        let p = ClickProfiles::default();
        let clustered = cluster_entry(&entry(), &p, 0.1);
        assert_eq!(clustered.specializations.len(), 3);
    }
}
