//! The Query-Flow Graph (Boldi, Bonchi, Castillo, Donato, Gionis, Vigna —
//! CIKM 2008).
//!
//! §3 of the paper: session splitting "consists of building a Markov Chain
//! model of the query log and subsequently finding paths in the graph which
//! are more likely to be followed by random surfers. As a result ... we
//! obtain the set of logical user sessions."
//!
//! Nodes are distinct queries; a directed edge `q → q′` counts how often
//! `q′` immediately follows `q` inside a physical (timeout) session. The
//! *chaining probability* `P(q′|q) = w(q,q′) / Σ_r w(q,r)` estimates whether
//! two consecutive submissions belong to the same search mission; walking
//! each physical session and cutting at low-probability transitions yields
//! the logical sessions.

use crate::detect::Recommender;
use serpdiv_querylog::{QueryId, QueryLog, Session};
use std::collections::HashMap;

/// The query-flow graph: a first-order Markov chain over distinct queries.
#[derive(Debug, Default)]
pub struct QueryFlowGraph {
    /// `q → (q′ → count)`; kept as sorted vecs after `build`.
    edges: HashMap<QueryId, Vec<(QueryId, u32)>>,
    /// Out-degree mass per node.
    out_totals: HashMap<QueryId, u64>,
}

impl QueryFlowGraph {
    /// Build the graph from the physical `sessions` of `log`.
    pub fn build(log: &QueryLog, sessions: &[Session]) -> Self {
        let mut counts: HashMap<(QueryId, QueryId), u32> = HashMap::new();
        for session in sessions {
            for w in session.records.windows(2) {
                let a = log.records()[w[0]].query;
                let b = log.records()[w[1]].query;
                if a != b {
                    *counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let mut edges: HashMap<QueryId, Vec<(QueryId, u32)>> = HashMap::new();
        let mut out_totals: HashMap<QueryId, u64> = HashMap::new();
        for ((a, b), c) in counts {
            edges.entry(a).or_default().push((b, c));
            *out_totals.entry(a).or_insert(0) += u64::from(c);
        }
        // Deterministic order: by decreasing count, ties by id.
        for list in edges.values_mut() {
            list.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        }
        QueryFlowGraph { edges, out_totals }
    }

    /// Number of nodes with outgoing edges.
    pub fn num_nodes(&self) -> usize {
        self.edges.len()
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Reformulation count of the edge `q → q′`.
    pub fn weight(&self, q: QueryId, q2: QueryId) -> u32 {
        self.edges
            .get(&q)
            .and_then(|l| l.iter().find(|&&(b, _)| b == q2).map(|&(_, c)| c))
            .unwrap_or(0)
    }

    /// Chaining probability `P(q′|q)`; 0 when `q` has no outgoing edges.
    pub fn chaining_probability(&self, q: QueryId, q2: QueryId) -> f64 {
        match self.out_totals.get(&q) {
            Some(&total) if total > 0 => f64::from(self.weight(q, q2)) / total as f64,
            _ => 0.0,
        }
    }

    /// Successors of `q` ordered by decreasing count.
    pub fn successors(&self, q: QueryId) -> &[(QueryId, u32)] {
        self.edges.get(&q).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Split each physical session into *logical* sessions by cutting
    /// transitions whose chaining probability falls below `threshold`.
    ///
    /// A transition observed only once in the whole log has low probability
    /// by construction, so rare topic switches inside a physical session
    /// are separated while common reformulation chains stay together.
    pub fn extract_logical_sessions(
        &self,
        log: &QueryLog,
        sessions: &[Session],
        threshold: f64,
    ) -> Vec<Session> {
        let mut out = Vec::with_capacity(sessions.len());
        for session in sessions {
            let mut current: Vec<usize> = Vec::new();
            for &idx in &session.records {
                if let Some(&prev) = current.last() {
                    let a = log.records()[prev].query;
                    let b = log.records()[idx].query;
                    let keep = a == b || self.chaining_probability(a, b) >= threshold;
                    if !keep {
                        out.push(Session {
                            user: session.user,
                            records: std::mem::take(&mut current),
                        });
                    }
                }
                current.push(idx);
            }
            if !current.is_empty() {
                out.push(Session {
                    user: session.user,
                    records: current,
                });
            }
        }
        out
    }
}

/// The query-flow graph doubles as a query recommender: the successors of
/// `q`, scored by chaining probability, are exactly the reformulations
/// users made — a drop-in alternative `A` for Algorithm 1 (the paper: "any
/// other approach for deriving user intents from query logs could be ...
/// easily integrated in our diversification framework").
impl Recommender for QueryFlowGraph {
    fn recommend(&self, q: QueryId, n: usize) -> Vec<(QueryId, f64)> {
        self.successors(q)
            .iter()
            .take(n)
            .map(|&(q2, _)| (q2, self.chaining_probability(q, q2)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_querylog::{split_sessions, LogRecord, UserId};

    /// Build a log where each tuple is (query, user, time).
    fn log_with(entries: &[(&str, u32, u64)]) -> QueryLog {
        let mut log = QueryLog::new();
        for &(q, u, t) in entries {
            let query = log.intern_query(q);
            log.push(LogRecord {
                query,
                user: UserId(u),
                time: t,
                results: Vec::new(),
                clicks: Vec::new(),
            });
        }
        log
    }

    #[test]
    fn edge_counts_accumulate_across_users() {
        let log = log_with(&[
            ("apple", 1, 0),
            ("apple iphone", 1, 60),
            ("apple", 2, 1000),
            ("apple iphone", 2, 1060),
            ("apple", 3, 2000),
            ("apple fruit", 3, 2050),
        ]);
        let sessions = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &sessions);
        let apple = log.query_id("apple").unwrap();
        let iphone = log.query_id("apple iphone").unwrap();
        let fruit = log.query_id("apple fruit").unwrap();
        assert_eq!(g.weight(apple, iphone), 2);
        assert_eq!(g.weight(apple, fruit), 1);
        assert!((g.chaining_probability(apple, iphone) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.successors(apple)[0].0, iphone);
    }

    #[test]
    fn self_loops_are_ignored() {
        let log = log_with(&[("a", 1, 0), ("a", 1, 10), ("b", 1, 20)]);
        let sessions = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &sessions);
        let a = log.query_id("a").unwrap();
        assert_eq!(g.weight(a, a), 0);
        assert_eq!(g.weight(a, log.query_id("b").unwrap()), 1);
    }

    #[test]
    fn cross_session_pairs_do_not_count() {
        let log = log_with(&[("a", 1, 0), ("b", 1, 10_000)]); // > timeout apart
        let sessions = split_sessions(&log);
        assert_eq!(sessions.len(), 2);
        let g = QueryFlowGraph::build(&log, &sessions);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn logical_sessions_cut_low_probability_transitions() {
        // "apple → apple iphone" is frequent (3 users), "apple → zebra"
        // happens once: the latter transition must be cut.
        let log = log_with(&[
            ("apple", 1, 0),
            ("apple iphone", 1, 30),
            ("apple", 2, 500),
            ("apple iphone", 2, 530),
            ("apple", 3, 900),
            ("apple iphone", 3, 930),
            ("apple", 4, 1500),
            ("zebra", 4, 1530),
        ]);
        let physical = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &physical);
        let logical = g.extract_logical_sessions(&log, &physical, 0.5);
        // User 4's pair must be split; users 1–3 stay joined.
        let user4: Vec<&Session> = logical.iter().filter(|s| s.user == UserId(4)).collect();
        assert_eq!(user4.len(), 2);
        let user1: Vec<&Session> = logical.iter().filter(|s| s.user == UserId(1)).collect();
        assert_eq!(user1.len(), 1);
        assert_eq!(user1[0].records.len(), 2);
    }

    #[test]
    fn logical_sessions_preserve_all_records() {
        let log = log_with(&[
            ("a", 1, 0),
            ("b", 1, 10),
            ("c", 1, 20),
            ("a", 2, 30),
            ("b", 2, 45),
        ]);
        let physical = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &physical);
        let logical = g.extract_logical_sessions(&log, &physical, 0.9);
        let mut all: Vec<usize> = logical.iter().flat_map(|s| s.records.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn qfg_as_recommender() {
        use crate::detect::Recommender;
        let log = log_with(&[
            ("apple", 1, 0),
            ("apple iphone", 1, 60),
            ("apple", 2, 1000),
            ("apple iphone", 2, 1060),
            ("apple", 3, 2000),
            ("apple fruit", 3, 2050),
        ]);
        let sessions = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &sessions);
        let apple = log.query_id("apple").unwrap();
        let recs = g.recommend(apple, 10);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, log.query_id("apple iphone").unwrap());
        assert!((recs[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.recommend(apple, 1).len(), 1);
    }

    #[test]
    fn unknown_query_has_no_probability() {
        let log = log_with(&[("a", 1, 0)]);
        let sessions = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &sessions);
        assert_eq!(g.chaining_probability(QueryId(0), QueryId(99)), 0.0);
    }
}
