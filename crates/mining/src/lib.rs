//! Query-log mining: specializations of ambiguous queries.
//!
//! §3 of the paper: ambiguity is detected and specializations are mined
//! from query-log sessions —
//!
//! 1. [`qfg`] — the **Query-Flow Graph** (Boldi et al., CIKM'08): a Markov
//!    chain over distinct queries whose edge weights count session-level
//!    reformulations; used to extract *logical* user sessions,
//! 2. [`shortcuts`] — an efficient session-co-occurrence **query
//!    recommender** in the spirit of Search Shortcuts (Broccolo et al.,
//!    the paper’s reference \[7\]) — the algorithm `A` of Algorithm 1,
//! 3. [`detect`] — **Algorithm 1, `AmbiguousQueryDetect(q, A, f, s)`**, and
//!    the specialization-probability estimate `P(q′|q) = f(q′)/Σ f(·)`
//!    (Definition 1),
//! 4. [`model`] — the deployable [`SpecializationModel`]: every ambiguous
//!    query with its specializations and probabilities, serializable, with
//!    the §4.1 memory-footprint accounting.

pub mod cluster;
pub mod detect;
pub mod json;
pub mod model;
pub mod personalize;
pub mod qfg;
pub mod shortcuts;

pub use cluster::{cluster_entry, cluster_model, ClickProfiles};
pub use detect::{AmbiguityDetector, Recommender};
pub use model::{SpecializationEntry, SpecializationModel};
pub use personalize::{PersonalizedModel, UserHistory};
pub use qfg::QueryFlowGraph;
pub use shortcuts::ShortcutsModel;
