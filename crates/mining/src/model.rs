//! The deployable specialization model.
//!
//! §4.1: "The only information we need are: the ambiguous queries, the list
//! of their possible specializations mined from a long-term query log, \[and\]
//! the probabilities associated with such specializations" (the per-
//! specialization result lists `R_q′` live in `serpdiv-core::framework`,
//! which also accounts for their §4.1 memory footprint).
//!
//! The model is mined offline by sweeping Algorithm 1 over every distinct
//! query of the training log and is serializable (JSON) for deployment.

use crate::detect::{AmbiguityDetector, Recommender};
use crate::json;
use serde::{Deserialize, Serialize};
use serpdiv_querylog::{QueryId, QueryLog};
use std::collections::HashMap;

/// Specializations of one ambiguous query.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SpecializationEntry {
    /// The ambiguous query text.
    pub query: String,
    /// `(specialization text, P(q′|q))`, decreasing probability.
    pub specializations: Vec<(String, f64)>,
}

impl SpecializationEntry {
    /// Number of specializations `|Sq|`.
    pub fn len(&self) -> usize {
        self.specializations.len()
    }

    /// True when no specialization is stored (never produced by mining).
    pub fn is_empty(&self) -> bool {
        self.specializations.is_empty()
    }
}

/// The mined model: every ambiguous query of the log with its
/// specializations and probabilities.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SpecializationModel {
    entries: HashMap<String, SpecializationEntry>,
}

impl SpecializationModel {
    /// Mine the model: run Algorithm 1 (`detector`) over every distinct
    /// query of `log` and keep the ambiguous ones (`Q̂` of Definition 1).
    pub fn mine<A: Recommender>(log: &QueryLog, detector: &AmbiguityDetector<'_, A>) -> Self {
        let mut entries = HashMap::new();
        for i in 0..log.num_queries() {
            let q = QueryId(i as u32);
            let Some(specs) = detector.detect(q) else {
                continue;
            };
            let text = log.query_text(q).expect("interned").to_string();
            let specializations = specs
                .iter()
                .map(|s| {
                    (
                        log.query_text(s.query).expect("interned").to_string(),
                        s.probability,
                    )
                })
                .collect();
            entries.insert(
                text.clone(),
                SpecializationEntry {
                    query: text,
                    specializations,
                },
            );
        }
        SpecializationModel { entries }
    }

    /// Insert (or replace) an entry — used by the personalization layer to
    /// materialize per-user models.
    pub fn insert(&mut self, entry: SpecializationEntry) {
        self.entries.insert(entry.query.clone(), entry);
    }

    /// Look up the specializations of `query`; `None` means "not ambiguous:
    /// serve the baseline ranking unchanged".
    pub fn get(&self, query: &str) -> Option<&SpecializationEntry> {
        self.entries.get(query)
    }

    /// Number of ambiguous queries in the model (`N` of §4.1).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no query was detected as ambiguous.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &SpecializationEntry> {
        self.entries.values()
    }

    /// Largest `|Sq|` over the model (the `|S_q̂|` of the §4.1 bound).
    pub fn max_specializations(&self) -> usize {
        self.entries.values().map(|e| e.len()).max().unwrap_or(0)
    }

    /// In-memory footprint estimate in bytes (query-level part of §4.1).
    pub fn byte_size(&self) -> usize {
        self.entries
            .values()
            .map(|e| {
                e.query.len()
                    + e.specializations
                        .iter()
                        .map(|(s, _)| s.len() + std::mem::size_of::<f64>())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Serialize to JSON (the deployment wire format of §4.1):
    /// `{"entries":{"<query>":{"query":"...","specializations":[["text",p],…]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.byte_size() * 2);
        out.push_str("{\"entries\":{");
        // Deterministic output: sort by query text.
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let entry = &self.entries[*key];
            json::write_escaped(&mut out, key);
            out.push_str(":{\"query\":");
            json::write_escaped(&mut out, &entry.query);
            out.push_str(",\"specializations\":[");
            for (j, (spec, p)) in entry.specializations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                json::write_escaped(&mut out, spec);
                out.push(',');
                json::write_number(&mut out, *p);
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Deserialize from the JSON produced by [`SpecializationModel::to_json`].
    pub fn from_json(text: &str) -> Result<Self, ModelFormatError> {
        let doc = json::parse(text)?;
        let top = doc
            .as_object()
            .ok_or_else(|| bad("top-level value must be an object"))?;
        let entries_val = top
            .get("entries")
            .ok_or_else(|| bad("missing \"entries\" key"))?;
        let raw_entries = entries_val
            .as_object()
            .ok_or_else(|| bad("\"entries\" must be an object"))?;
        let mut entries = HashMap::with_capacity(raw_entries.len());
        for (key, val) in raw_entries {
            let obj = val
                .as_object()
                .ok_or_else(|| bad(format!("entry {key:?} must be an object")))?;
            let query = obj
                .get("query")
                .and_then(json::Value::as_str)
                .ok_or_else(|| bad(format!("entry {key:?} needs a string \"query\"")))?
                .to_string();
            let raw_specs = obj
                .get("specializations")
                .and_then(json::Value::as_array)
                .ok_or_else(|| bad(format!("entry {key:?} needs a \"specializations\" array")))?;
            let mut specializations = Vec::with_capacity(raw_specs.len());
            for pair in raw_specs {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad("each specialization must be a [text, p] pair"))?;
                let spec = pair[0]
                    .as_str()
                    .ok_or_else(|| bad("specialization text must be a string"))?;
                let p = pair[1]
                    .as_f64()
                    .ok_or_else(|| bad("specialization probability must be a number"))?;
                specializations.push((spec.to_string(), p));
            }
            entries.insert(
                key.clone(),
                SpecializationEntry {
                    query,
                    specializations,
                },
            );
        }
        Ok(SpecializationModel { entries })
    }
}

/// Error decoding a serialized [`SpecializationModel`]: either malformed
/// JSON or a document with the wrong shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelFormatError {
    /// The text is not valid JSON.
    Syntax(json::ParseError),
    /// The JSON does not have the model's shape.
    Shape(String),
}

fn bad(msg: impl Into<String>) -> ModelFormatError {
    ModelFormatError::Shape(msg.into())
}

impl From<json::ParseError> for ModelFormatError {
    fn from(e: json::ParseError) -> Self {
        ModelFormatError::Syntax(e)
    }
}

impl std::fmt::Display for ModelFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelFormatError::Syntax(e) => write!(f, "{e}"),
            ModelFormatError::Shape(msg) => write!(f, "model format error: {msg}"),
        }
    }
}

impl std::error::Error for ModelFormatError {}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_querylog::{FreqTable, LogRecord, UserId};

    /// Log: "apple" is refined to two popular specializations by many
    /// users; "banana" is unambiguous.
    fn training_log() -> QueryLog {
        let mut log = QueryLog::new();
        let mut t = 0u64;
        let push = |log: &mut QueryLog, q: &str, u: u32, time: u64| {
            let query = log.intern_query(q);
            log.push(LogRecord {
                query,
                user: UserId(u),
                time,
                results: Vec::new(),
                clicks: Vec::new(),
            });
        };
        for u in 0..20u32 {
            push(&mut log, "apple", u, t);
            let spec = if u % 3 == 0 {
                "apple fruit"
            } else {
                "apple iphone"
            };
            push(&mut log, spec, u, t + 30);
            t += 3600 * 24;
        }
        for u in 0..5u32 {
            push(&mut log, "banana", u, t);
            push(&mut log, "banana bread", u, t + 30);
            t += 3600 * 24;
        }
        log.sort_by_time();
        log
    }

    fn mined(log: &QueryLog) -> SpecializationModel {
        let sessions = serpdiv_querylog::split_sessions(log);
        let shortcuts = crate::shortcuts::ShortcutsModel::train(log, &sessions, 16);
        let freq = FreqTable::build(log);
        let detector = AmbiguityDetector::new(&shortcuts, &freq, 10.0);
        SpecializationModel::mine(log, &detector)
    }

    #[test]
    fn mines_ambiguous_queries_only() {
        let log = training_log();
        let model = mined(&log);
        let apple = model.get("apple").expect("apple is ambiguous");
        assert_eq!(apple.len(), 2);
        // banana has a single refinement ⇒ not ambiguous by Algorithm 1.
        assert!(model.get("banana").is_none());
        assert!(model.get("zebra").is_none());
    }

    #[test]
    fn probabilities_reflect_popularity() {
        let log = training_log();
        let model = mined(&log);
        let apple = model.get("apple").unwrap();
        // iphone: 13 users of 20; fruit: 7 of 20.
        assert_eq!(apple.specializations[0].0, "apple iphone");
        let p: f64 = apple.specializations.iter().map(|(_, p)| p).sum();
        assert!((p - 1.0).abs() < 1e-9);
        assert!(apple.specializations[0].1 > apple.specializations[1].1);
    }

    #[test]
    fn json_roundtrip() {
        let log = training_log();
        let model = mined(&log);
        let json = model.to_json();
        let back = SpecializationModel::from_json(&json).unwrap();
        assert_eq!(back.len(), model.len());
        assert_eq!(
            back.get("apple").unwrap().specializations,
            model.get("apple").unwrap().specializations
        );
    }

    #[test]
    fn footprint_accounting() {
        let log = training_log();
        let model = mined(&log);
        assert!(model.byte_size() > 0);
        assert_eq!(model.max_specializations(), 2);
    }
}
