//! Algorithm 1 — `AmbiguousQueryDetect(q, A, f(), s)` — and Definition 1.
//!
//! ```text
//! Algorithm 1 AmbiguousQueryDetect(q, A, f(), s)
//!   1. Ŝq ← A(q)                       // candidate specializations
//!   2. Sq ← { q′ ∈ Ŝq | f(q′) ≥ f(q)/s }   // popularity filter
//!   3. If |Sq| ≥ 2 Then Return Sq Else Return ∅
//! ```
//!
//! The probability of each specialization (Definition 1) is estimated by
//! frequency normalization: `P(q′|q) = f(q′) / Σ_{r ∈ Sq} f(r)`.

use serpdiv_querylog::{FreqTable, QueryId};

/// A query recommendation algorithm `A` — anything that proposes related
/// queries mined from the log (the paper: "any other approach for deriving
/// user intents from query logs could be easily integrated").
pub trait Recommender {
    /// Up to `n` related queries for `q`, best first, with model scores.
    fn recommend(&self, q: QueryId, n: usize) -> Vec<(QueryId, f64)>;
}

/// One detected specialization with its probability `P(q′|q)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Specialization {
    /// The specialized query.
    pub query: QueryId,
    /// `P(q′|q)` per Definition 1; the specializations of one ambiguous
    /// query sum to 1.
    pub probability: f64,
}

/// Algorithm 1 wired to a recommender and a frequency table.
#[derive(Debug)]
pub struct AmbiguityDetector<'a, A: Recommender> {
    recommender: &'a A,
    freq: &'a FreqTable,
    /// The popularity-filter divisor `s` of Algorithm 1 (`f(q′) ≥ f(q)/s`).
    pub s: f64,
    /// Maximum candidate specializations requested from `A`.
    pub max_candidates: usize,
    /// Candidates scoring below `min_score_ratio · best_score` in `A`'s
    /// own ranking are dropped from `Sq` (after the popularity filter).
    ///
    /// This is a deliberate deviation from Algorithm 1 as printed, which
    /// has only the popularity filter; set it to `0.0` to reproduce the
    /// paper's letter. It defaults on because the synthetic logs (and real
    /// ones) contain chance session adjacencies the popularity filter
    /// cannot reject:
    ///
    /// The popularity filter compares *global* frequencies, so a one-off
    /// session adjacency with a globally popular but unrelated query would
    /// pass it — and, because `P(q′|q) ∝ f(q′)` (Definition 1), then
    /// swallow most of the probability mass. The shortcuts model's scores
    /// separate the two regimes by orders of magnitude (population-repeated
    /// refinements vs. chance co-occurrences), so a small relative floor
    /// removes the noise without touching genuine specializations.
    pub min_score_ratio: f64,
}

impl<'a, A: Recommender> AmbiguityDetector<'a, A> {
    /// Detector with the given filter divisor `s` (larger `s` ⇒ laxer
    /// filter ⇒ more specializations admitted).
    pub fn new(recommender: &'a A, freq: &'a FreqTable, s: f64) -> Self {
        assert!(s > 0.0, "the popularity divisor must be positive");
        AmbiguityDetector {
            recommender,
            freq,
            s,
            max_candidates: 32,
            min_score_ratio: 0.05,
        }
    }

    /// Run Algorithm 1 on `q`. Returns `None` when `q` is not ambiguous
    /// (fewer than two specializations survive the filter), otherwise the
    /// specializations with their Definition-1 probabilities, in
    /// decreasing-probability order.
    pub fn detect(&self, q: QueryId) -> Option<Vec<Specialization>> {
        // Step 1: Ŝq ← A(q).
        let candidates = self.recommender.recommend(q, self.max_candidates);
        // Step 2: popularity filter  f(q′) ≥ f(q)/s.
        let fq = self.freq.freq(q) as f64;
        let threshold = fq / self.s;
        let popular: Vec<(QueryId, f64)> = candidates
            .into_iter()
            .filter(|&(c, _)| self.freq.freq(c) as f64 >= threshold)
            .collect();
        // Step 2b: relative score floor over the popularity survivors, so
        // chance co-occurrences never enter Sq. Computing the floor after
        // the popularity filter keeps a high-scored but globally rare
        // candidate (which the filter discards anyway) from inflating the
        // floor above every genuine specialization. The floor only makes
        // sense for nonnegative score scales (co-occurrence counts); with
        // a negative best score (e.g. a log-probability recommender) it is
        // disabled rather than letting `ratio · best` land above every
        // candidate.
        let best_score = popular
            .iter()
            .map(|&(_, score)| score)
            .fold(f64::NEG_INFINITY, f64::max);
        let score_floor = if best_score > 0.0 {
            self.min_score_ratio * best_score
        } else {
            f64::NEG_INFINITY
        };
        let kept: Vec<QueryId> = popular
            .into_iter()
            .filter(|&(_, score)| score >= score_floor)
            .map(|(c, _)| c)
            .collect();
        // Step 3: ambiguous iff at least two interpretations survive.
        if kept.len() < 2 {
            return None;
        }
        // Definition 1: P(q′|q) = f(q′) / Σ f(·).
        let total: f64 = kept.iter().map(|&c| self.freq.freq(c) as f64).sum();
        debug_assert!(
            total > 0.0,
            "filter admits only positive frequencies when f(q) > 0"
        );
        let mut specs: Vec<Specialization> = kept
            .into_iter()
            .map(|c| Specialization {
                query: c,
                probability: if total > 0.0 {
                    self.freq.freq(c) as f64 / total
                } else {
                    0.0
                },
            })
            .collect();
        specs.sort_unstable_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then(a.query.cmp(&b.query))
        });
        Some(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_querylog::{LogRecord, QueryLog, UserId};

    /// A recommender with a fixed table, for isolated Algorithm-1 tests.
    struct Fixed(Vec<(QueryId, f64)>);

    impl Recommender for Fixed {
        fn recommend(&self, _q: QueryId, n: usize) -> Vec<(QueryId, f64)> {
            self.0[..self.0.len().min(n)].to_vec()
        }
    }

    /// Log with the given `(query, count)` pairs.
    fn log_with_counts(counts: &[(&str, u64)]) -> QueryLog {
        let mut log = QueryLog::new();
        let mut t = 0;
        for &(q, c) in counts {
            let id = log.intern_query(q);
            for _ in 0..c {
                log.push(LogRecord {
                    query: id,
                    user: UserId(0),
                    time: t,
                    results: Vec::new(),
                    clicks: Vec::new(),
                });
                t += 1;
            }
        }
        log
    }

    #[test]
    fn detects_ambiguity_and_normalizes_probabilities() {
        let log = log_with_counts(&[("apple", 100), ("apple iphone", 60), ("apple fruit", 40)]);
        let freq = FreqTable::build(&log);
        let apple = log.query_id("apple").unwrap();
        let iphone = log.query_id("apple iphone").unwrap();
        let fruit = log.query_id("apple fruit").unwrap();
        let rec = Fixed(vec![(iphone, 1.0), (fruit, 0.5)]);
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        let specs = det.detect(apple).expect("ambiguous");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].query, iphone);
        assert!((specs[0].probability - 0.6).abs() < 1e-12);
        assert!((specs[1].probability - 0.4).abs() < 1e-12);
        let total: f64 = specs.iter().map(|s| s.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn popularity_filter_drops_rare_candidates() {
        // f(apple)=100, s=4 ⇒ threshold 25; "apple tour" (f=5) is dropped.
        let log = log_with_counts(&[
            ("apple", 100),
            ("apple iphone", 60),
            ("apple fruit", 40),
            ("apple tour", 5),
        ]);
        let freq = FreqTable::build(&log);
        let ids: Vec<QueryId> = ["apple iphone", "apple fruit", "apple tour"]
            .iter()
            .map(|q| log.query_id(q).unwrap())
            .collect();
        let rec = Fixed(ids.iter().map(|&i| (i, 1.0)).collect());
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        let specs = det.detect(log.query_id("apple").unwrap()).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.query != ids[2]));
    }

    #[test]
    fn single_surviving_specialization_is_not_ambiguous() {
        let log = log_with_counts(&[("q", 50), ("q a", 40), ("q b", 1)]);
        let freq = FreqTable::build(&log);
        let rec = Fixed(vec![
            (log.query_id("q a").unwrap(), 1.0),
            (log.query_id("q b").unwrap(), 0.9),
        ]);
        let det = AmbiguityDetector::new(&rec, &freq, 2.0);
        assert!(det.detect(log.query_id("q").unwrap()).is_none());
    }

    #[test]
    fn no_candidates_is_not_ambiguous() {
        let log = log_with_counts(&[("q", 10)]);
        let freq = FreqTable::build(&log);
        let rec = Fixed(vec![]);
        let det = AmbiguityDetector::new(&rec, &freq, 2.0);
        assert!(det.detect(log.query_id("q").unwrap()).is_none());
    }

    #[test]
    fn lax_s_admits_more_specializations() {
        let log = log_with_counts(&[("q", 100), ("q a", 50), ("q b", 10), ("q c", 4)]);
        let freq = FreqTable::build(&log);
        let ids: Vec<QueryId> = ["q a", "q b", "q c"]
            .iter()
            .map(|q| log.query_id(q).unwrap())
            .collect();
        let rec = Fixed(ids.iter().map(|&i| (i, 1.0)).collect());
        let strict = AmbiguityDetector::new(&rec, &freq, 4.0); // threshold 25
        let lax = AmbiguityDetector::new(&rec, &freq, 30.0); // threshold 3.3
        assert!(strict.detect(log.query_id("q").unwrap()).is_none());
        assert_eq!(lax.detect(log.query_id("q").unwrap()).unwrap().len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_s_panics() {
        let log = log_with_counts(&[("q", 1)]);
        let freq = FreqTable::build(&log);
        let rec = Fixed(vec![]);
        let _ = AmbiguityDetector::new(&rec, &freq, 0.0);
    }

    #[test]
    fn score_floor_drops_chance_cooccurrences() {
        // "noise" is globally popular (so it passes the popularity
        // filter) but scored as a one-off by the recommender; the
        // relative floor must remove it while keeping both genuine,
        // strongly-scored refinements.
        let log = log_with_counts(&[("q", 100), ("q a", 60), ("q b", 40), ("noise", 500)]);
        let freq = FreqTable::build(&log);
        let a = log.query_id("q a").unwrap();
        let b = log.query_id("q b").unwrap();
        let noise = log.query_id("noise").unwrap();
        let rec = Fixed(vec![(a, 150.0), (b, 90.0), (noise, 1.0)]);
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        let specs = det.detect(log.query_id("q").unwrap()).expect("ambiguous");
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.query != noise));
        // Without the floor the popular one-off would dominate P(q′|q).
        let mut lax = AmbiguityDetector::new(&rec, &freq, 4.0);
        lax.min_score_ratio = 0.0;
        let with_noise = lax.detect(log.query_id("q").unwrap()).unwrap();
        assert_eq!(with_noise.len(), 3);
        assert_eq!(with_noise[0].query, noise);
    }

    #[test]
    fn score_floor_scales_with_the_ratio() {
        let log = log_with_counts(&[("q", 100), ("q a", 60), ("q b", 40)]);
        let freq = FreqTable::build(&log);
        let a = log.query_id("q a").unwrap();
        let b = log.query_id("q b").unwrap();
        let rec = Fixed(vec![(a, 100.0), (b, 10.0)]);
        // Default ratio 0.05 ⇒ floor 5: both kept.
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        assert_eq!(det.detect(log.query_id("q").unwrap()).unwrap().len(), 2);
        // Ratio 0.2 ⇒ floor 20: "q b" (score 10) is dropped, and a single
        // survivor means not ambiguous.
        let mut strict = AmbiguityDetector::new(&rec, &freq, 4.0);
        strict.min_score_ratio = 0.2;
        assert!(strict.detect(log.query_id("q").unwrap()).is_none());
    }

    #[test]
    fn rare_high_scored_candidate_cannot_inflate_the_floor() {
        // A candidate the popularity filter discards anyway must not raise
        // the score floor above the genuine specializations.
        let log = log_with_counts(&[("q", 100), ("q a", 60), ("q b", 40), ("q rare", 1)]);
        let freq = FreqTable::build(&log);
        let a = log.query_id("q a").unwrap();
        let b = log.query_id("q b").unwrap();
        let rare = log.query_id("q rare").unwrap();
        // rare scores 1000 but has f=1 (< threshold 25 at s=4); the
        // genuine specializations score 10 and 8.
        let rec = Fixed(vec![(rare, 1000.0), (a, 10.0), (b, 8.0)]);
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        let specs = det.detect(log.query_id("q").unwrap()).expect("ambiguous");
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.query != rare));
    }

    #[test]
    fn negative_recommender_scores_disable_the_floor() {
        // A log-probability recommender scores everything negative; the
        // relative floor must not reject the entire candidate set.
        let log = log_with_counts(&[("q", 100), ("q a", 60), ("q b", 40)]);
        let freq = FreqTable::build(&log);
        let a = log.query_id("q a").unwrap();
        let b = log.query_id("q b").unwrap();
        let rec = Fixed(vec![(a, -0.5), (b, -2.0)]);
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        let specs = det.detect(log.query_id("q").unwrap()).expect("ambiguous");
        assert_eq!(specs.len(), 2);
    }
}
