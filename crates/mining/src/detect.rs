//! Algorithm 1 — `AmbiguousQueryDetect(q, A, f(), s)` — and Definition 1.
//!
//! ```text
//! Algorithm 1 AmbiguousQueryDetect(q, A, f(), s)
//!   1. Ŝq ← A(q)                       // candidate specializations
//!   2. Sq ← { q′ ∈ Ŝq | f(q′) ≥ f(q)/s }   // popularity filter
//!   3. If |Sq| ≥ 2 Then Return Sq Else Return ∅
//! ```
//!
//! The probability of each specialization (Definition 1) is estimated by
//! frequency normalization: `P(q′|q) = f(q′) / Σ_{r ∈ Sq} f(r)`.

use serpdiv_querylog::{FreqTable, QueryId};

/// A query recommendation algorithm `A` — anything that proposes related
/// queries mined from the log (the paper: "any other approach for deriving
/// user intents from query logs could be easily integrated").
pub trait Recommender {
    /// Up to `n` related queries for `q`, best first, with model scores.
    fn recommend(&self, q: QueryId, n: usize) -> Vec<(QueryId, f64)>;
}

/// One detected specialization with its probability `P(q′|q)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Specialization {
    /// The specialized query.
    pub query: QueryId,
    /// `P(q′|q)` per Definition 1; the specializations of one ambiguous
    /// query sum to 1.
    pub probability: f64,
}

/// Algorithm 1 wired to a recommender and a frequency table.
#[derive(Debug)]
pub struct AmbiguityDetector<'a, A: Recommender> {
    recommender: &'a A,
    freq: &'a FreqTable,
    /// The popularity-filter divisor `s` of Algorithm 1 (`f(q′) ≥ f(q)/s`).
    pub s: f64,
    /// Maximum candidate specializations requested from `A`.
    pub max_candidates: usize,
}

impl<'a, A: Recommender> AmbiguityDetector<'a, A> {
    /// Detector with the given filter divisor `s` (larger `s` ⇒ laxer
    /// filter ⇒ more specializations admitted).
    pub fn new(recommender: &'a A, freq: &'a FreqTable, s: f64) -> Self {
        assert!(s > 0.0, "the popularity divisor must be positive");
        AmbiguityDetector {
            recommender,
            freq,
            s,
            max_candidates: 32,
        }
    }

    /// Run Algorithm 1 on `q`. Returns `None` when `q` is not ambiguous
    /// (fewer than two specializations survive the filter), otherwise the
    /// specializations with their Definition-1 probabilities, in
    /// decreasing-probability order.
    pub fn detect(&self, q: QueryId) -> Option<Vec<Specialization>> {
        // Step 1: Ŝq ← A(q).
        let candidates = self.recommender.recommend(q, self.max_candidates);
        // Step 2: popularity filter  f(q′) ≥ f(q)/s.
        let fq = self.freq.freq(q) as f64;
        let threshold = fq / self.s;
        let kept: Vec<QueryId> = candidates
            .into_iter()
            .map(|(c, _)| c)
            .filter(|&c| self.freq.freq(c) as f64 >= threshold)
            .collect();
        // Step 3: ambiguous iff at least two interpretations survive.
        if kept.len() < 2 {
            return None;
        }
        // Definition 1: P(q′|q) = f(q′) / Σ f(·).
        let total: f64 = kept.iter().map(|&c| self.freq.freq(c) as f64).sum();
        debug_assert!(total > 0.0, "filter admits only positive frequencies when f(q) > 0");
        let mut specs: Vec<Specialization> = kept
            .into_iter()
            .map(|c| Specialization {
                query: c,
                probability: if total > 0.0 {
                    self.freq.freq(c) as f64 / total
                } else {
                    0.0
                },
            })
            .collect();
        specs.sort_unstable_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then(a.query.cmp(&b.query))
        });
        Some(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_querylog::{LogRecord, QueryLog, UserId};

    /// A recommender with a fixed table, for isolated Algorithm-1 tests.
    struct Fixed(Vec<(QueryId, f64)>);

    impl Recommender for Fixed {
        fn recommend(&self, _q: QueryId, n: usize) -> Vec<(QueryId, f64)> {
            self.0[..self.0.len().min(n)].to_vec()
        }
    }

    /// Log with the given `(query, count)` pairs.
    fn log_with_counts(counts: &[(&str, u64)]) -> QueryLog {
        let mut log = QueryLog::new();
        let mut t = 0;
        for &(q, c) in counts {
            let id = log.intern_query(q);
            for _ in 0..c {
                log.push(LogRecord {
                    query: id,
                    user: UserId(0),
                    time: t,
                    results: Vec::new(),
                    clicks: Vec::new(),
                });
                t += 1;
            }
        }
        log
    }

    #[test]
    fn detects_ambiguity_and_normalizes_probabilities() {
        let log = log_with_counts(&[("apple", 100), ("apple iphone", 60), ("apple fruit", 40)]);
        let freq = FreqTable::build(&log);
        let apple = log.query_id("apple").unwrap();
        let iphone = log.query_id("apple iphone").unwrap();
        let fruit = log.query_id("apple fruit").unwrap();
        let rec = Fixed(vec![(iphone, 1.0), (fruit, 0.5)]);
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        let specs = det.detect(apple).expect("ambiguous");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].query, iphone);
        assert!((specs[0].probability - 0.6).abs() < 1e-12);
        assert!((specs[1].probability - 0.4).abs() < 1e-12);
        let total: f64 = specs.iter().map(|s| s.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn popularity_filter_drops_rare_candidates() {
        // f(apple)=100, s=4 ⇒ threshold 25; "apple tour" (f=5) is dropped.
        let log = log_with_counts(&[
            ("apple", 100),
            ("apple iphone", 60),
            ("apple fruit", 40),
            ("apple tour", 5),
        ]);
        let freq = FreqTable::build(&log);
        let ids: Vec<QueryId> = ["apple iphone", "apple fruit", "apple tour"]
            .iter()
            .map(|q| log.query_id(q).unwrap())
            .collect();
        let rec = Fixed(ids.iter().map(|&i| (i, 1.0)).collect());
        let det = AmbiguityDetector::new(&rec, &freq, 4.0);
        let specs = det.detect(log.query_id("apple").unwrap()).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.query != ids[2]));
    }

    #[test]
    fn single_surviving_specialization_is_not_ambiguous() {
        let log = log_with_counts(&[("q", 50), ("q a", 40), ("q b", 1)]);
        let freq = FreqTable::build(&log);
        let rec = Fixed(vec![
            (log.query_id("q a").unwrap(), 1.0),
            (log.query_id("q b").unwrap(), 0.9),
        ]);
        let det = AmbiguityDetector::new(&rec, &freq, 2.0);
        assert!(det.detect(log.query_id("q").unwrap()).is_none());
    }

    #[test]
    fn no_candidates_is_not_ambiguous() {
        let log = log_with_counts(&[("q", 10)]);
        let freq = FreqTable::build(&log);
        let rec = Fixed(vec![]);
        let det = AmbiguityDetector::new(&rec, &freq, 2.0);
        assert!(det.detect(log.query_id("q").unwrap()).is_none());
    }

    #[test]
    fn lax_s_admits_more_specializations() {
        let log = log_with_counts(&[("q", 100), ("q a", 50), ("q b", 10), ("q c", 4)]);
        let freq = FreqTable::build(&log);
        let ids: Vec<QueryId> = ["q a", "q b", "q c"]
            .iter()
            .map(|q| log.query_id(q).unwrap())
            .collect();
        let rec = Fixed(ids.iter().map(|&i| (i, 1.0)).collect());
        let strict = AmbiguityDetector::new(&rec, &freq, 4.0); // threshold 25
        let lax = AmbiguityDetector::new(&rec, &freq, 30.0); // threshold 3.3
        assert!(strict.detect(log.query_id("q").unwrap()).is_none());
        assert_eq!(lax.detect(log.query_id("q").unwrap()).unwrap().len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_s_panics() {
        let log = log_with_counts(&[("q", 1)]);
        let freq = FreqTable::build(&log);
        let rec = Fixed(vec![]);
        let _ = AmbiguityDetector::new(&rec, &freq, 0.0);
    }
}
