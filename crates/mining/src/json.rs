//! Minimal JSON reader/writer for the deployable specialization model.
//!
//! The offline build environment cannot fetch `serde_json`, and the model's
//! wire format is tiny and stable (strings, numbers, arrays, objects), so
//! the crate carries its own recursive-descent parser and escaping writer.
//! The grammar covered is full RFC 8259 JSON minus number exponent corner
//! cases beyond `f64` (which Rust's `str::parse::<f64>` already handles).

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`, like `serde_json`'s default).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion order not preserved).
    Object(HashMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&HashMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
/// Maximum container nesting accepted by [`parse`]. The parser is
/// recursive-descent, so unbounded nesting in a corrupt or hostile model
/// file would overflow the stack instead of returning `Err`; the model's
/// real wire format nests 5 levels deep.
const MAX_DEPTH: u32 = 128;

pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        parse_container: fn(&mut Self) -> Result<Value, ParseError>,
    ) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        self.depth += 1;
        let v = parse_container(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

/// Append `s` to `out` as a JSON string literal (with escaping).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` in a round-trippable decimal form (Rust's shortest
/// `Display` for `f64` round-trips exactly).
pub fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Bare integers like `1` are valid JSON already; nothing to fix up.
    } else {
        // JSON has no NaN/inf; the model never produces them, but never
        // emit invalid documents. Writing `null` (which the model reader
        // then rejects) matches serde_json's behavior for non-finite
        // floats, keeping the wire format drop-in compatible.
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_model_shaped_document() {
        let v = parse(
            r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
        )
        .unwrap();
        let entries = v.as_object().unwrap()["entries"].as_object().unwrap();
        let apple = entries["apple"].as_object().unwrap();
        assert_eq!(apple["query"].as_str(), Some("apple"));
        let specs = apple["specializations"].as_array().unwrap();
        assert_eq!(specs.len(), 2);
        let first = specs[0].as_array().unwrap();
        assert_eq!(first[0].as_str(), Some("apple iphone"));
        assert_eq!(first[1].as_f64(), Some(0.6));
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Value::Number(-125.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Value::String("a\nbA".into()));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(HashMap::new()));
        let nested = parse(r#"[1, [2, {"x": [3]}]]"#).unwrap();
        assert!(matches!(nested, Value::Array(_)));
    }

    #[test]
    fn surrogate_pairs_roundtrip() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "01a",
            r#""unterminated"#,
            "[1] trailing",
            r#"{"a":1,}"#,
            // Past the depth limit: must be an Err, not a stack overflow.
            &"[".repeat(200_000),
            &format!("{}1{}", "[".repeat(300), "]".repeat(300)),
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escaping_writer_roundtrips() {
        let gnarly = "a\"b\\c\nd\te\u{0001}π😀";
        let mut doc = String::new();
        write_escaped(&mut doc, gnarly);
        assert_eq!(parse(&doc).unwrap().as_str(), Some(gnarly));
    }

    #[test]
    fn number_writer_roundtrips() {
        for v in [
            0.0,
            1.0,
            -1.5,
            0.1,
            1e-10,
            123456789.123,
            f64::MIN,
            f64::MAX,
        ] {
            let mut doc = String::new();
            write_number(&mut doc, v);
            let back = parse(&doc).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "value {v}");
        }
    }
}
