//! Personalized specialization probabilities — the paper's future work (i).
//!
//! §6: "Future work will regard: i) the exploitation of users' search
//! history for personalizing result diversification". The natural
//! construction over this framework: a user's own refinement history
//! defines per-user specialization counts, and the served distribution
//! blends them with the global Definition-1 estimate,
//!
//! ```text
//! P_u(q′|q) = (1−β)·P(q′|q) + β·f_u(q′)/Σ_{r∈Sq} f_u(r)
//! ```
//!
//! with `β ∈ [0,1]` the personalization strength. A user who has never
//! touched `q` gets the global distribution unchanged; a user who always
//! refines "leopard" to "leopard tank" sees the tank interpretation's
//! share grow accordingly — and hence more tank results in their
//! diversified SERP (the quota `⌊k·P⌋` follows the probability).

use crate::model::{SpecializationEntry, SpecializationModel};
use serpdiv_querylog::{QueryLog, UserId};
use std::collections::HashMap;

/// Per-user refinement history: `(user, query text) → submission count`.
#[derive(Debug, Default)]
pub struct UserHistory {
    counts: HashMap<(UserId, String), u64>,
}

impl UserHistory {
    /// Accumulate per-user query counts from `log`.
    pub fn build(log: &QueryLog) -> Self {
        let mut counts: HashMap<(UserId, String), u64> = HashMap::new();
        for r in log.records() {
            if let Some(text) = log.query_text(r.query) {
                *counts.entry((r.user, text.to_string())).or_insert(0) += 1;
            }
        }
        UserHistory { counts }
    }

    /// How often `user` submitted `query`.
    pub fn count(&self, user: UserId, query: &str) -> u64 {
        self.counts
            .get(&(user, query.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Number of `(user, query)` pairs tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no history was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Personalization layer over a global [`SpecializationModel`].
#[derive(Debug)]
pub struct PersonalizedModel<'a> {
    global: &'a SpecializationModel,
    history: &'a UserHistory,
    /// Blend weight β ∈ [0, 1]; 0 = global only.
    pub beta: f64,
}

impl<'a> PersonalizedModel<'a> {
    /// Blend `global` with `history` at strength `beta`.
    ///
    /// # Panics
    /// Panics when `beta` is outside `[0, 1]`.
    pub fn new(global: &'a SpecializationModel, history: &'a UserHistory, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "β must lie in [0,1]");
        PersonalizedModel {
            global,
            history,
            beta,
        }
    }

    /// The specialization entry `user` should be served for `query`, or
    /// `None` when the query is not ambiguous. Probabilities still sum
    /// to 1 and the specializations are re-sorted by the blended value.
    pub fn get(&self, user: UserId, query: &str) -> Option<SpecializationEntry> {
        let entry = self.global.get(query)?;
        let personal_total: u64 = entry
            .specializations
            .iter()
            .map(|(s, _)| self.history.count(user, s))
            .sum();
        if personal_total == 0 || self.beta == 0.0 {
            return Some(entry.clone());
        }
        let mut specializations: Vec<(String, f64)> = entry
            .specializations
            .iter()
            .map(|(s, p_global)| {
                let p_user = self.history.count(user, s) as f64 / personal_total as f64;
                (s.clone(), (1.0 - self.beta) * p_global + self.beta * p_user)
            })
            .collect();
        specializations.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Some(SpecializationEntry {
            query: entry.query.clone(),
            specializations,
        })
    }

    /// Materialize the full per-user model (every ambiguous query with the
    /// blended distribution) — a drop-in [`SpecializationModel`] for the
    /// diversification pipeline, so a per-user SERP needs no pipeline
    /// changes.
    pub fn materialize(&self, user: UserId) -> SpecializationModel {
        let mut model = SpecializationModel::default();
        for entry in self.global.iter() {
            if let Some(personal) = self.get(user, &entry.query) {
                model.insert(personal);
            }
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_querylog::LogRecord;

    fn global_model() -> SpecializationModel {
        SpecializationModel::from_json(
            r#"{"entries":{"apple":{"query":"apple","specializations":[
                ["apple iphone",0.7],["apple fruit",0.3]]}}}"#,
        )
        .unwrap()
    }

    fn history_for(user: u32, query: &str, times: u64) -> (QueryLog, UserHistory) {
        let mut log = QueryLog::new();
        for t in 0..times {
            let q = log.intern_query(query);
            log.push(LogRecord {
                query: q,
                user: UserId(user),
                time: t,
                results: Vec::new(),
                clicks: Vec::new(),
            });
        }
        let h = UserHistory::build(&log);
        (log, h)
    }

    #[test]
    fn no_history_serves_global() {
        let global = global_model();
        let (_log, history) = history_for(1, "unrelated", 5);
        let model = PersonalizedModel::new(&global, &history, 0.5);
        let entry = model.get(UserId(1), "apple").unwrap();
        assert_eq!(entry.specializations[0], ("apple iphone".into(), 0.7));
    }

    #[test]
    fn personal_refinements_shift_the_distribution() {
        let global = global_model();
        // User 9 always refines to the fruit interpretation.
        let (_log, history) = history_for(9, "apple fruit", 10);
        let model = PersonalizedModel::new(&global, &history, 0.6);
        let entry = model.get(UserId(9), "apple").unwrap();
        // Blended: fruit = 0.4·0.3 + 0.6·1.0 = 0.72; iphone = 0.4·0.7 = 0.28.
        assert_eq!(entry.specializations[0].0, "apple fruit");
        assert!((entry.specializations[0].1 - 0.72).abs() < 1e-12);
        let total: f64 = entry.specializations.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // A different user is unaffected.
        let other = model.get(UserId(1), "apple").unwrap();
        assert_eq!(other.specializations[0].0, "apple iphone");
    }

    #[test]
    fn beta_zero_is_global_even_with_history() {
        let global = global_model();
        let (_log, history) = history_for(9, "apple fruit", 10);
        let model = PersonalizedModel::new(&global, &history, 0.0);
        let entry = model.get(UserId(9), "apple").unwrap();
        assert_eq!(entry.specializations[0].0, "apple iphone");
    }

    #[test]
    fn beta_one_is_pure_history() {
        let global = global_model();
        let (_log, history) = history_for(9, "apple fruit", 3);
        let model = PersonalizedModel::new(&global, &history, 1.0);
        let entry = model.get(UserId(9), "apple").unwrap();
        assert!((entry.specializations[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_ambiguous_queries_stay_none() {
        let global = global_model();
        let (_log, history) = history_for(1, "apple", 2);
        let model = PersonalizedModel::new(&global, &history, 0.5);
        assert!(model.get(UserId(1), "banana").is_none());
    }

    #[test]
    fn materialized_model_is_pipeline_ready() {
        let global = global_model();
        let (_log, history) = history_for(9, "apple fruit", 10);
        let model = PersonalizedModel::new(&global, &history, 0.6);
        let user_model = model.materialize(UserId(9));
        assert_eq!(user_model.len(), global.len());
        let entry = user_model.get("apple").unwrap();
        assert_eq!(entry.specializations[0].0, "apple fruit");
        // Serialization still works on the materialized model.
        let back = SpecializationModel::from_json(&user_model.to_json()).unwrap();
        assert_eq!(back.len(), user_model.len());
    }

    #[test]
    #[should_panic(expected = "β")]
    fn invalid_beta_panics() {
        let global = global_model();
        let (_log, history) = history_for(1, "x", 1);
        let _ = PersonalizedModel::new(&global, &history, 1.5);
    }
}
