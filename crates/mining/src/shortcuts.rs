//! Session-co-occurrence query recommendation ("Search Shortcuts").
//!
//! The paper (§3.1) computes specializations with "a very efficient query
//! recommendation algorithm \[7\]" (Broccolo et al., *An efficient algorithm
//! to generate search shortcuts*, CNR TR 2010) that "learns the suggestion
//! model from the query log, and returns as related specializations only
//! queries that are present in Q".
//!
//! This implementation scores a candidate suggestion `q′` for query `q` by
//! its discounted co-occurrence *after* `q` within logical sessions:
//! every ordered pair `(q at position i, q′ at position j > i)` contributes
//! `1/(j−i)` — adjacent refinements weigh most, as in the shortcuts TR where
//! suggestions come from session "tails". Scores are aggregated over all
//! sessions of all users, so only reformulations repeated across the
//! population rank high.

use crate::detect::Recommender;
use serpdiv_querylog::{QueryId, QueryLog, Session};
use std::collections::HashMap;

/// Trained suggestion model.
#[derive(Debug, Default)]
pub struct ShortcutsModel {
    /// `q → [(q′, score)]` sorted by decreasing score.
    suggestions: HashMap<QueryId, Vec<(QueryId, f64)>>,
}

impl ShortcutsModel {
    /// Train from the logical `sessions` of `log`.
    ///
    /// `max_suggestions` truncates each suggestion list (the model is
    /// deployed in memory; only the head is ever used by Algorithm 1).
    pub fn train(log: &QueryLog, sessions: &[Session], max_suggestions: usize) -> Self {
        let mut scores: HashMap<QueryId, HashMap<QueryId, f64>> = HashMap::new();
        for session in sessions {
            let queries: Vec<QueryId> = session
                .records
                .iter()
                .map(|&i| log.records()[i].query)
                .collect();
            for i in 0..queries.len() {
                for j in (i + 1)..queries.len() {
                    if queries[i] == queries[j] {
                        continue;
                    }
                    let w = 1.0 / (j - i) as f64;
                    *scores
                        .entry(queries[i])
                        .or_default()
                        .entry(queries[j])
                        .or_insert(0.0) += w;
                }
            }
        }
        let mut suggestions: HashMap<QueryId, Vec<(QueryId, f64)>> =
            HashMap::with_capacity(scores.len());
        for (q, map) in scores {
            let mut list: Vec<(QueryId, f64)> = map.into_iter().collect();
            list.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            list.truncate(max_suggestions);
            suggestions.insert(q, list);
        }
        ShortcutsModel { suggestions }
    }

    /// Suggestions for `q`, best first.
    pub fn suggest(&self, q: QueryId) -> &[(QueryId, f64)] {
        self.suggestions.get(&q).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of queries with at least one suggestion.
    pub fn num_covered_queries(&self) -> usize {
        self.suggestions.len()
    }
}

impl Recommender for ShortcutsModel {
    fn recommend(&self, q: QueryId, n: usize) -> Vec<(QueryId, f64)> {
        let s = self.suggest(q);
        s[..s.len().min(n)].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_querylog::{split_sessions, LogRecord, UserId};

    fn log_with(entries: &[(&str, u32, u64)]) -> QueryLog {
        let mut log = QueryLog::new();
        for &(q, u, t) in entries {
            let query = log.intern_query(q);
            log.push(LogRecord {
                query,
                user: UserId(u),
                time: t,
                results: Vec::new(),
                clicks: Vec::new(),
            });
        }
        log
    }

    #[test]
    fn frequent_refinements_rank_first() {
        let log = log_with(&[
            ("apple", 1, 0),
            ("apple iphone", 1, 30),
            ("apple", 2, 100),
            ("apple iphone", 2, 130),
            ("apple", 3, 200),
            ("apple fruit", 3, 230),
        ]);
        let sessions = split_sessions(&log);
        let model = ShortcutsModel::train(&log, &sessions, 10);
        let apple = log.query_id("apple").unwrap();
        let list = model.suggest(apple);
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].0, log.query_id("apple iphone").unwrap());
        assert!(list[0].1 > list[1].1);
    }

    #[test]
    fn adjacency_discount() {
        // "a b c": (a→b) gets 1.0, (a→c) gets 0.5.
        let log = log_with(&[("a", 1, 0), ("b", 1, 10), ("c", 1, 20)]);
        let sessions = split_sessions(&log);
        let model = ShortcutsModel::train(&log, &sessions, 10);
        let a = log.query_id("a").unwrap();
        let list = model.suggest(a);
        assert_eq!(list[0], (log.query_id("b").unwrap(), 1.0));
        assert_eq!(list[1], (log.query_id("c").unwrap(), 0.5));
    }

    #[test]
    fn truncation_respected() {
        let log = log_with(&[("q", 1, 0), ("r1", 1, 10), ("r2", 1, 20), ("r3", 1, 30)]);
        let sessions = split_sessions(&log);
        let model = ShortcutsModel::train(&log, &sessions, 2);
        assert_eq!(model.suggest(log.query_id("q").unwrap()).len(), 2);
    }

    #[test]
    fn unseen_query_has_no_suggestions() {
        let log = log_with(&[("a", 1, 0), ("b", 1, 10)]);
        let sessions = split_sessions(&log);
        let model = ShortcutsModel::train(&log, &sessions, 10);
        assert!(model.suggest(QueryId(999)).is_empty());
        // The *last* query of every session never has successors.
        assert!(model.suggest(log.query_id("b").unwrap()).is_empty());
    }

    #[test]
    fn recommender_trait_limits_n() {
        let log = log_with(&[("q", 1, 0), ("r1", 1, 10), ("r2", 1, 20)]);
        let sessions = split_sessions(&log);
        let model = ShortcutsModel::train(&log, &sessions, 10);
        let q = log.query_id("q").unwrap();
        assert_eq!(model.recommend(q, 1).len(), 1);
        assert_eq!(model.recommend(q, 50).len(), 2);
    }
}
