//! Property-based tests for the mining stack.

use proptest::prelude::*;
use serpdiv_mining::{AmbiguityDetector, QueryFlowGraph, Recommender, ShortcutsModel};
use serpdiv_querylog::{split_sessions, FreqTable, LogRecord, QueryLog, UserId};

/// A log built from (user, minute, query-index) triples; queries come from
/// a pool of 8 strings so reformulation edges repeat.
fn build_log(entries: &[(u8, u16, u8)]) -> QueryLog {
    let mut log = QueryLog::new();
    let mut rows: Vec<_> = entries.to_vec();
    rows.sort_by_key(|&(_, t, _)| t);
    for (u, t, q) in rows {
        let id = log.intern_query(&format!("query-{}", q % 8));
        log.push(LogRecord {
            query: id,
            user: UserId(u32::from(u % 4)),
            time: u64::from(t) * 30,
            results: Vec::new(),
            clicks: Vec::new(),
        });
    }
    log
}

proptest! {
    /// QFG chaining probabilities per node sum to ≤ 1 (= 1 for nodes with
    /// outgoing edges).
    #[test]
    fn qfg_probabilities_normalized(entries in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 0..100)) {
        let log = build_log(&entries);
        let sessions = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &sessions);
        for i in 0..log.num_queries() {
            let q = serpdiv_querylog::QueryId(i as u32);
            let total: f64 = g
                .successors(q)
                .iter()
                .map(|&(q2, _)| g.chaining_probability(q, q2))
                .sum();
            prop_assert!(total <= 1.0 + 1e-9);
            if !g.successors(q).is_empty() {
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Logical-session extraction never loses or duplicates records and
    /// never merges users, for any threshold.
    #[test]
    fn logical_sessions_partition(
        entries in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 0..100),
        threshold in 0.0f64..1.0,
    ) {
        let log = build_log(&entries);
        let physical = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &physical);
        let logical = g.extract_logical_sessions(&log, &physical, threshold);
        let mut seen: Vec<usize> = logical.iter().flat_map(|s| s.records.clone()).collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..log.len()).collect();
        prop_assert_eq!(seen, expected);
        // Higher thresholds only split more.
        prop_assert!(logical.len() >= physical.len());
    }

    /// Shortcuts suggestion scores are positive and sorted descending.
    #[test]
    fn shortcuts_scores_sorted(entries in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 0..100)) {
        let log = build_log(&entries);
        let sessions = split_sessions(&log);
        let model = ShortcutsModel::train(&log, &sessions, 8);
        for i in 0..log.num_queries() {
            let list = model.suggest(serpdiv_querylog::QueryId(i as u32));
            prop_assert!(list.len() <= 8);
            for w in list.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
            for &(_, score) in list {
                prop_assert!(score > 0.0);
            }
        }
    }

    /// Algorithm 1's output is always either None or ≥ 2 specializations
    /// whose probabilities sum to 1, each positive.
    #[test]
    fn detector_output_is_a_distribution(
        entries in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 0..120),
        s in 1.0f64..50.0,
    ) {
        let log = build_log(&entries);
        let sessions = split_sessions(&log);
        let model = ShortcutsModel::train(&log, &sessions, 8);
        let freq = FreqTable::build(&log);
        let detector = AmbiguityDetector::new(&model, &freq, s);
        for i in 0..log.num_queries() {
            let q = serpdiv_querylog::QueryId(i as u32);
            if let Some(specs) = detector.detect(q) {
                prop_assert!(specs.len() >= 2);
                let total: f64 = specs.iter().map(|sp| sp.probability).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                for sp in &specs {
                    prop_assert!(sp.probability > 0.0);
                    prop_assert!(sp.query != q, "a query cannot specialize itself");
                }
            }
        }
    }

    /// The QFG recommender returns at most n suggestions with
    /// probabilities in (0, 1].
    #[test]
    fn qfg_recommender_bounds(
        entries in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 0..80),
        n in 0usize..10,
    ) {
        let log = build_log(&entries);
        let sessions = split_sessions(&log);
        let g = QueryFlowGraph::build(&log, &sessions);
        for i in 0..log.num_queries() {
            let recs = g.recommend(serpdiv_querylog::QueryId(i as u32), n);
            prop_assert!(recs.len() <= n);
            for &(_, p) in &recs {
                prop_assert!(p > 0.0 && p <= 1.0);
            }
        }
    }
}
