//! Deterministic fault injection for the serpdiv serving stack.
//!
//! The stack is instrumented with **named failpoints** — fixed call sites
//! like `chaos::failpoint("pool.serve")` or
//! `chaos::mangle("worker.reply", &mut bytes)` — that are two-instruction
//! no-ops (one relaxed atomic load and a branch) unless a [`FaultPlan`]
//! has been [`arm`]ed for the whole process. An armed plan is a list of
//! `(site pattern, probability, fault)` rules driven by one seeded LCG,
//! so a given `(seed, rules, call sequence)` injects *exactly* the same
//! faults on every run: chaos tests are replayable, and a failing seed is
//! a bug report.
//!
//! # Fault vocabulary
//!
//! | [`FaultKind`] | applied where | effect |
//! |---|---|---|
//! | `Delay(d)`  | inside [`failpoint`] | sleeps `d`, then continues |
//! | `Panic`     | inside [`failpoint`] | panics (containment is the site's job) |
//! | `Drop`      | returned as [`SiteAction::Drop`] | site abandons its connection/work |
//! | `Stall(d)`  | returned as [`SiteAction::Stall`] | site sleeps `d` and goes silent |
//! | `Corrupt`   | via [`mangle`] | flips bytes in an outgoing buffer |
//!
//! `Delay` and `Panic` are *generic* — the failpoint executes them itself
//! so every instrumented site gets them for free. `Drop`/`Stall`/`Corrupt`
//! only make sense at sites that own a transport, so the failpoint hands
//! them back as a [`SiteAction`] for the site to interpret (a site that
//! cannot, ignores them).
//!
//! # Scope and safety
//!
//! Arming is **process-global** (that is what makes the no-op fast path
//! possible), so tests that arm plans must serialize against each other
//! and [`disarm`] on every exit path — [`armed`], the RAII guard returned
//! by [`arm`], does both ends of that. Production binaries simply never
//! arm a plan and pay only the dead branch.
//!
//! ```
//! use serpdiv_chaos as chaos;
//! use std::sync::Arc;
//!
//! let plan = Arc::new(
//!     chaos::FaultPlan::new(0xC0FFEE)
//!         .with_rule("pool.*", 1.0, chaos::FaultKind::Panic)
//!         .with_max_fires(2),
//! );
//! chaos::arm(plan.clone());
//! assert!(std::panic::catch_unwind(|| chaos::failpoint("pool.serve")).is_err());
//! chaos::disarm();
//! assert_eq!(plan.fired_total(), 1);
//! // Disarmed: the failpoint is inert again.
//! let _ = chaos::failpoint("pool.serve");
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// One injectable fault. See the [crate table](crate) for which faults
/// the failpoint applies itself and which it returns to the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this long inside the failpoint, then continue normally.
    /// Models a slow dependency (GC pause, cold page, saturated core).
    Delay(Duration),
    /// Panic inside the failpoint. Models a crashed task; the layers
    /// above must contain it (executor batches, pool workers).
    Panic,
    /// Tell the site to drop its connection / abandon the work silently.
    Drop,
    /// Tell the site to sleep this long and then *not* produce its
    /// output — a silent stall, the nastiest failure a peer can see.
    Stall(Duration),
    /// Flip bytes in the site's outgoing buffer (only observable through
    /// [`mangle`]).
    Corrupt,
}

/// What an instrumented site should do, as decided by the armed plan.
///
/// `Delay` and `Panic` faults never reach here — the failpoint applies
/// them before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteAction {
    /// No fault (or no plan armed): proceed normally.
    None,
    /// Drop the connection / abandon the work.
    Drop,
    /// Sleep this long, then go silent (skip the reply).
    Stall(Duration),
    /// Corrupt the outgoing bytes (sites that buffer through [`mangle`]
    /// never see this; it is returned for sites that corrupt in place).
    Corrupt,
}

/// `site` patterns: exact match, or a `*`-terminated prefix
/// (`"worker.*"`), or the universal `"*"`.
fn site_matches(pattern: &str, site: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => site.starts_with(prefix),
        None => pattern == site,
    }
}

/// xorshift64* — tiny, seedable, good enough to decorrelate fault rolls.
/// Not the shims' rand: the chaos crate stays dependency-free so every
/// layer of the workspace can instrument itself without a cycle.
#[derive(Debug, Clone)]
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        // splitmix64 scramble: adjacent seeds decorrelate, and the
        // all-zero xorshift fixed point is unreachable.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Lcg((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

struct Rule {
    pattern: String,
    probability: f64,
    fault: FaultKind,
    fired: AtomicU64,
}

/// A seeded, replayable schedule of faults.
///
/// Build one with [`FaultPlan::new`] + [`with_rule`](Self::with_rule),
/// wrap it in an `Arc`, and [`arm`] it; keep your clone of the `Arc` to
/// read the [`fired`](Self::fired) counters after the run. Rules are
/// evaluated in insertion order and at most one fires per failpoint hit;
/// every probability roll consumes the shared LCG, so the injected
/// schedule is a pure function of `(seed, rules, failpoint sequence)`.
pub struct FaultPlan {
    rules: Vec<Rule>,
    rng: Mutex<Lcg>,
    /// 0 ⇒ unlimited.
    max_fires: u64,
    fired_total: AtomicU64,
}

impl FaultPlan {
    /// An empty plan driven by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rules: Vec::new(),
            rng: Mutex::new(Lcg::new(seed)),
            max_fires: 0,
            fired_total: AtomicU64::new(0),
        }
    }

    /// Add a rule: at any failpoint matching `pattern` (exact site name,
    /// `"prefix*"`, or `"*"`), inject `fault` with `probability`.
    pub fn with_rule(
        mut self,
        pattern: impl Into<String>,
        probability: f64,
        fault: FaultKind,
    ) -> Self {
        self.rules.push(Rule {
            pattern: pattern.into(),
            probability: probability.clamp(0.0, 1.0),
            fault,
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Cap the total number of injected faults (0 = unlimited). Once the
    /// budget is spent the plan behaves as if disarmed — useful for
    /// "break exactly N things, then let the system recover" schedules.
    pub fn with_max_fires(mut self, max: u64) -> Self {
        self.max_fires = max;
        self
    }

    /// Total faults injected so far.
    pub fn fired_total(&self) -> u64 {
        self.fired_total.load(Ordering::Relaxed)
    }

    /// Faults injected by the rule(s) registered under exactly this
    /// pattern string.
    pub fn fired(&self, pattern: &str) -> u64 {
        self.rules
            .iter()
            .filter(|r| r.pattern == pattern)
            .map(|r| r.fired.load(Ordering::Relaxed))
            .sum()
    }

    /// Roll the rules for one hit of `site`.
    fn decide(&self, site: &str) -> Option<FaultKind> {
        for rule in &self.rules {
            if !site_matches(&rule.pattern, site) {
                continue;
            }
            let roll = self
                .rng
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .next_f64();
            if roll < rule.probability {
                if !self.try_spend() {
                    return None;
                }
                rule.fired.fetch_add(1, Ordering::Relaxed);
                return Some(rule.fault);
            }
        }
        None
    }

    /// Claim one unit of the fire budget.
    fn try_spend(&self) -> bool {
        if self.max_fires == 0 {
            self.fired_total.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut cur = self.fired_total.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_fires {
                return false;
            }
            match self.fired_total.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Flip 1–4 pseudo-random bytes of `bytes` in place (no-op on an
    /// empty buffer).
    fn corrupt(&self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let mut rng = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
        let flips = 1 + (rng.next_u64() % 4) as usize;
        for _ in 0..flips {
            let pos = (rng.next_u64() as usize) % bytes.len();
            let bit = 1u8 << (rng.next_u64() % 8);
            bytes[pos] ^= bit;
        }
    }
}

/// Fast-path flag: `false` ⇒ every failpoint is an inert branch.
static ARMED: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn current_plan() -> Option<Arc<FaultPlan>> {
    plan_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Arm `plan` process-wide. Replaces any previously armed plan.
pub fn arm(plan: Arc<FaultPlan>) {
    *plan_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm: every failpoint reverts to its no-op fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *plan_slot().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// RAII guard from [`armed`]: disarms on drop (including unwind), so a
/// panicking chaos test cannot leave the process armed for the next one.
pub struct ArmedGuard(());

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// [`arm`] + a guard that [`disarm`]s when dropped.
#[must_use = "dropping the guard disarms the plan immediately"]
pub fn armed(plan: Arc<FaultPlan>) -> ArmedGuard {
    arm(plan);
    ArmedGuard(())
}

/// The failpoint hook every instrumented site calls.
///
/// Disarmed: a relaxed load and a branch. Armed: rolls the plan's rules
/// for `site`; applies `Delay` (sleeps) and `Panic` (panics) itself and
/// returns anything else as a [`SiteAction`] for the site to interpret.
#[inline]
pub fn failpoint(site: &str) -> SiteAction {
    if !ARMED.load(Ordering::Relaxed) {
        return SiteAction::None;
    }
    failpoint_armed(site)
}

#[cold]
fn failpoint_armed(site: &str) -> SiteAction {
    let Some(plan) = current_plan() else {
        return SiteAction::None;
    };
    match plan.decide(site) {
        None => SiteAction::None,
        Some(FaultKind::Delay(d)) => {
            std::thread::sleep(d);
            SiteAction::None
        }
        Some(FaultKind::Panic) => panic!("chaos: injected panic at failpoint `{site}`"),
        Some(FaultKind::Drop) => SiteAction::Drop,
        Some(FaultKind::Stall(d)) => SiteAction::Stall(d),
        Some(FaultKind::Corrupt) => SiteAction::Corrupt,
    }
}

/// Corruption hook for sites that own an outgoing byte buffer: when an
/// armed `Corrupt` rule fires for `site`, flips 1–4 bytes of `bytes` in
/// place and returns `true`. Disarmed (or any other fault kind rolled):
/// leaves the buffer untouched and returns `false` — only `Corrupt`
/// rules fire here, so a mangling site composes with a [`failpoint`] at
/// the same site name for its other faults.
#[inline]
pub fn mangle(site: &str, bytes: &mut [u8]) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    mangle_armed(site, bytes)
}

#[cold]
fn mangle_armed(site: &str, bytes: &mut [u8]) -> bool {
    let Some(plan) = current_plan() else {
        return false;
    };
    match plan.decide(site) {
        Some(FaultKind::Corrupt) => {
            plan.corrupt(bytes);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Arming is process-global: chaos unit tests take this lock so the
    /// harness can run them on its default parallelism.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_failpoints_are_inert() {
        let _s = serial();
        disarm();
        assert_eq!(failpoint("anything"), SiteAction::None);
        let mut b = vec![1, 2, 3];
        assert!(!mangle("anything", &mut b));
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn same_seed_same_schedule() {
        let decisions = |seed: u64| -> Vec<Option<FaultKind>> {
            let plan = FaultPlan::new(seed)
                .with_rule("a.*", 0.5, FaultKind::Drop)
                .with_rule("b", 0.25, FaultKind::Corrupt);
            (0..200)
                .map(|i| plan.decide(if i % 2 == 0 { "a.x" } else { "b" }))
                .collect()
        };
        assert_eq!(decisions(42), decisions(42));
        assert_ne!(decisions(42), decisions(43), "seeds decorrelate");
        // Both fault kinds actually occur at these probabilities.
        let d = decisions(42);
        assert!(d.contains(&Some(FaultKind::Drop)));
        assert!(d.contains(&Some(FaultKind::Corrupt)));
        assert!(d.iter().any(|f| f.is_none()));
    }

    #[test]
    fn probability_bounds() {
        let never = FaultPlan::new(7).with_rule("*", 0.0, FaultKind::Panic);
        let always = FaultPlan::new(7).with_rule("*", 1.0, FaultKind::Drop);
        for _ in 0..100 {
            assert_eq!(never.decide("x"), None);
            assert_eq!(always.decide("x"), Some(FaultKind::Drop));
        }
        assert_eq!(never.fired_total(), 0);
        assert_eq!(always.fired_total(), 100);
    }

    #[test]
    fn pattern_matching() {
        assert!(site_matches("*", "anything.at.all"));
        assert!(site_matches("worker.*", "worker.reply"));
        assert!(!site_matches("worker.*", "pool.serve"));
        assert!(site_matches("pool.serve", "pool.serve"));
        assert!(!site_matches("pool.serve", "pool.serve.x"));
    }

    #[test]
    fn fire_budget_exhausts_then_plan_goes_quiet() {
        let plan = FaultPlan::new(1)
            .with_rule("*", 1.0, FaultKind::Drop)
            .with_max_fires(3);
        let fired = (0..10).filter(|_| plan.decide("s").is_some()).count();
        assert_eq!(fired, 3);
        assert_eq!(plan.fired_total(), 3);
        assert_eq!(plan.fired("*"), 3);
    }

    #[test]
    fn first_matching_rule_wins_and_counts() {
        let plan = FaultPlan::new(5)
            .with_rule("x", 1.0, FaultKind::Drop)
            .with_rule("*", 1.0, FaultKind::Panic);
        assert_eq!(plan.decide("x"), Some(FaultKind::Drop));
        assert_eq!(plan.decide("y"), Some(FaultKind::Panic));
        assert_eq!(plan.fired("x"), 1);
        assert_eq!(plan.fired("*"), 1);
    }

    #[test]
    fn armed_panic_is_injected_and_guard_disarms() {
        let _s = serial();
        let plan = Arc::new(FaultPlan::new(9).with_rule("boom", 1.0, FaultKind::Panic));
        {
            let _g = armed(plan.clone());
            assert!(is_armed());
            let caught = std::panic::catch_unwind(|| failpoint("boom"));
            assert!(caught.is_err());
            // Unmatched sites stay clean.
            assert_eq!(failpoint("calm"), SiteAction::None);
        }
        assert!(!is_armed());
        assert_eq!(plan.fired_total(), 1);
    }

    #[test]
    fn mangle_flips_bytes_deterministically() {
        let _s = serial();
        let run = |seed: u64| {
            let plan = Arc::new(FaultPlan::new(seed).with_rule("wire", 1.0, FaultKind::Corrupt));
            let _g = armed(plan);
            let mut bytes = vec![0u8; 32];
            assert!(mangle("wire", &mut bytes));
            bytes
        };
        let a = run(123);
        let b = run(123);
        assert_eq!(a, b, "same seed, same corruption");
        assert!(a.iter().any(|&x| x != 0), "bytes actually flipped");
        // Non-corrupt rules never touch the buffer through mangle.
        let plan = Arc::new(FaultPlan::new(4).with_rule("wire", 1.0, FaultKind::Drop));
        let _g = armed(plan);
        let mut bytes = vec![7u8; 8];
        assert!(!mangle("wire", &mut bytes));
        assert_eq!(bytes, vec![7u8; 8]);
    }

    #[test]
    fn delay_fault_sleeps_inline() {
        let _s = serial();
        let plan = Arc::new(FaultPlan::new(2).with_rule(
            "slow",
            1.0,
            FaultKind::Delay(Duration::from_millis(30)),
        ));
        let _g = armed(plan);
        let t = std::time::Instant::now();
        assert_eq!(failpoint("slow"), SiteAction::None);
        assert!(t.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn stall_and_corrupt_are_returned_to_the_site() {
        let _s = serial();
        let plan = Arc::new(
            FaultPlan::new(3)
                .with_rule("a", 1.0, FaultKind::Stall(Duration::from_secs(1)))
                .with_rule("b", 1.0, FaultKind::Corrupt),
        );
        let _g = armed(plan);
        assert_eq!(failpoint("a"), SiteAction::Stall(Duration::from_secs(1)));
        assert_eq!(failpoint("b"), SiteAction::Corrupt);
    }
}
