//! Property-based tests for the synthetic-corpus substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serpdiv_corpus::{Testbed, TestbedConfig, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zipf pmf sums to 1 and is monotone non-increasing over ranks.
    #[test]
    fn zipf_pmf_is_a_monotone_distribution(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for r in 1..n {
            prop_assert!(z.pmf(r - 1) >= z.pmf(r) - 1e-12);
        }
    }

    /// Zipf samples always land in range.
    #[test]
    fn zipf_samples_in_range(n in 1usize..50, s in 0.0f64..2.5, seed in 0u64..1000) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Testbed invariants hold for arbitrary small shapes: topic weights
    /// normalized, qrels consistent with document counts, determinism.
    #[test]
    fn testbed_invariants(
        num_topics in 1usize..5,
        min_subs in 1usize..4,
        extra_subs in 0usize..3,
        docs in 1usize..8,
        distractors in 0usize..10,
        seed in 0u64..100,
    ) {
        let cfg = TestbedConfig {
            num_topics,
            min_subtopics: min_subs,
            max_subtopics: min_subs + extra_subs,
            docs_per_subtopic: docs,
            proportional_docs: false,
            distractors_per_topic: distractors,
            noise_docs: 5,
            background_vocab: 300,
            terms_per_subtopic: 5,
            subtopic_popularity_exponent: 1.0,
            docgen: serpdiv_corpus::DocGenConfig {
                min_len: 10,
                max_len: 30,
                ..Default::default()
            },
            seed,
        };
        let tb = Testbed::generate(cfg.clone());
        prop_assert_eq!(tb.topics.len(), num_topics);
        for t in &tb.topics {
            prop_assert!(t.validate().is_ok());
            for s in &t.subtopics {
                prop_assert_eq!(tb.qrels.relevant_docs(t.id, s.id).len(), docs);
            }
        }
        // Total documents = relevant + distractors + noise.
        let relevant: usize = tb.topics.iter().map(|t| t.num_subtopics() * docs).sum();
        prop_assert_eq!(
            tb.num_docs(),
            relevant + num_topics * distractors + 5
        );
        // Deterministic regeneration.
        let tb2 = Testbed::generate(cfg);
        prop_assert_eq!(tb.num_docs(), tb2.num_docs());
        prop_assert_eq!(&tb.topics[0].query, &tb2.topics[0].query);
    }

    /// Every topic's subtopic queries are distinct and extend the
    /// ambiguous query (true refinements).
    #[test]
    fn subtopic_queries_are_refinements(seed in 0u64..50) {
        let mut cfg = TestbedConfig::small();
        cfg.num_topics = 3;
        cfg.docs_per_subtopic = 2;
        cfg.noise_docs = 0;
        cfg.seed = seed;
        let tb = Testbed::generate(cfg);
        for t in &tb.topics {
            let mut queries: Vec<&str> = t.subtopics.iter().map(|s| s.query.as_str()).collect();
            queries.sort_unstable();
            queries.dedup();
            prop_assert_eq!(queries.len(), t.num_subtopics());
            for s in &t.subtopics {
                prop_assert!(s.query.starts_with(&t.query), "{} !< {}", t.query, s.query);
                prop_assert!(s.query.len() > t.query.len());
            }
        }
    }
}
