//! Assembled testbed: corpus + topics + subtopic qrels.
//!
//! One seeded call produces everything the TREC-style evaluation needs:
//! the document collection (ClueWeb-B stand-in), the 50 ambiguous topics
//! with weighted subtopics, and the subtopic-level relevance judgements —
//! all mutually consistent by construction.

use crate::docgen::{DocGenConfig, DocGenerator};
use crate::qrels::Qrels;
use crate::topics::{Subtopic, Topic};
use crate::vocabulary::SyntheticVocabulary;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serpdiv_index::{Document, DocumentStore, IndexBuilder, InvertedIndex};

/// Shape of the generated testbed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Number of ambiguous topics (TREC 2009: 50).
    pub num_topics: usize,
    /// Minimum subtopics per topic (TREC 2009: 3).
    pub min_subtopics: usize,
    /// Maximum subtopics per topic (TREC 2009: 8).
    pub max_subtopics: usize,
    /// Average relevant documents generated per subtopic.
    pub docs_per_subtopic: usize,
    /// Allocate subtopic documents proportionally to subtopic popularity
    /// (real web collections over-represent the dominant interpretation;
    /// a minimum of 3 documents per subtopic is kept). When false, every
    /// subtopic gets exactly `docs_per_subtopic` documents.
    pub proportional_docs: bool,
    /// Distractor documents per topic: pages using the topic's head term
    /// without belonging to any subtopic (judged irrelevant).
    pub distractors_per_topic: usize,
    /// Background (noise) documents relevant to nothing.
    pub noise_docs: usize,
    /// Background vocabulary size.
    pub background_vocab: usize,
    /// Private pool terms per subtopic.
    pub terms_per_subtopic: usize,
    /// Zipf exponent of the subtopic popularity distribution P(q′|q).
    pub subtopic_popularity_exponent: f64,
    /// Document language-model parameters.
    pub docgen: DocGenConfig,
    /// Master seed; everything is deterministic in it.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self::small()
    }
}

impl TestbedConfig {
    /// A small testbed for unit/integration tests (≈ 1k documents).
    pub fn small() -> Self {
        TestbedConfig {
            num_topics: 8,
            min_subtopics: 3,
            max_subtopics: 6,
            docs_per_subtopic: 15,
            proportional_docs: false,
            distractors_per_topic: 0,
            noise_docs: 200,
            background_vocab: 1_500,
            terms_per_subtopic: 25,
            subtopic_popularity_exponent: 1.0,
            docgen: DocGenConfig::default(),
            seed: 0xC0FFEE,
        }
    }

    /// The TREC-2009-shaped testbed used by the Table 3 harness: 50 topics,
    /// 3–8 subtopics. Document counts are scaled to laptop budgets (the
    /// paper's ClueWeb-B has 50M documents; retrieval quality shape is
    /// preserved with thousands — see DESIGN.md §2).
    pub fn trec_scaled() -> Self {
        TestbedConfig {
            num_topics: 50,
            min_subtopics: 3,
            max_subtopics: 8,
            docs_per_subtopic: 40,
            proportional_docs: true,
            distractors_per_topic: 120,
            noise_docs: 3_000,
            background_vocab: 6_000,
            terms_per_subtopic: 30,
            subtopic_popularity_exponent: 1.0,
            docgen: DocGenConfig::default(),
            seed: 0x7EC_2009,
        }
    }
}

/// The generated testbed.
#[derive(Debug)]
pub struct Testbed {
    /// Configuration it was generated from.
    pub config: TestbedConfig,
    /// The document collection.
    pub store: DocumentStore,
    /// The ambiguous topics.
    pub topics: Vec<Topic>,
    /// Subtopic-level relevance judgements.
    pub qrels: Qrels,
    /// The background vocabulary (noise documents and non-topical queries
    /// draw from it).
    pub background: Vec<String>,
}

impl Testbed {
    /// Generate a testbed from `config` (deterministic in `config.seed`).
    pub fn generate(config: TestbedConfig) -> Self {
        assert!(config.num_topics > 0);
        assert!(1 <= config.min_subtopics && config.min_subtopics <= config.max_subtopics);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Vocabulary layout: [background | per-topic blocks].
        // Per topic: 1 head term + max_subtopics · (1 name + pool terms).
        let per_topic = 1 + config.max_subtopics * (1 + config.terms_per_subtopic);
        let total_vocab = config.background_vocab + config.num_topics * per_topic;
        let vocab = SyntheticVocabulary::generate(total_vocab, config.seed ^ 0x5EED);
        let background = &vocab.words()[..config.background_vocab];

        // Build topics.
        let mut topics = Vec::with_capacity(config.num_topics);
        let mut cursor = config.background_vocab;
        for tid in 0..config.num_topics {
            let head_term = vocab.word(cursor).to_string();
            cursor += 1;
            let n_subs = rng.gen_range(config.min_subtopics..=config.max_subtopics);
            // Popularity ∝ Zipf over subtopic ranks, normalized.
            let z = Zipf::new(n_subs, config.subtopic_popularity_exponent);
            let mut subtopics = Vec::with_capacity(n_subs);
            for sid in 0..n_subs {
                let name_term = vocab.word(cursor).to_string();
                cursor += 1;
                let terms: Vec<String> = (0..config.terms_per_subtopic)
                    .map(|i| vocab.word(cursor + i).to_string())
                    .collect();
                cursor += config.terms_per_subtopic;
                subtopics.push(Subtopic {
                    id: sid,
                    query: format!("{head_term} {name_term}"),
                    weight: z.pmf(sid),
                    terms,
                });
            }
            // Skip the unused reserved slots of this topic block.
            cursor += (config.max_subtopics - n_subs) * (1 + config.terms_per_subtopic);
            let topic = Topic {
                id: tid,
                query: head_term.clone(),
                head_term,
                subtopics,
            };
            debug_assert!(topic.validate().is_ok(), "{:?}", topic.validate());
            topics.push(topic);
        }

        // Generate documents + qrels.
        let gen = DocGenerator::new(config.docgen, background);
        let mut store = DocumentStore::new();
        let mut qrels = Qrels::new();
        let mut next_id: u32 = 0;
        for topic in &topics {
            qrels.declare_topic(topic.id, topic.num_subtopics());
            let total_docs = config.docs_per_subtopic * topic.num_subtopics();
            for sub in &topic.subtopics {
                // Real collections over-represent the dominant
                // interpretation; allocate ∝ weight when configured.
                let n_docs = if config.proportional_docs {
                    ((total_docs as f64 * sub.weight).round() as usize).max(3)
                } else {
                    config.docs_per_subtopic
                };
                for d in 0..n_docs {
                    let body = gen.subtopic_body(topic, sub.id, &mut rng);
                    let url = format!("http://testbed/t{}/s{}/d{}", topic.id, sub.id, d);
                    let doc = Document::new(next_id, url, sub.query.clone(), body);
                    qrels.add(topic.id, sub.id, doc.id);
                    store.push(doc);
                    next_id += 1;
                }
            }
            for d in 0..config.distractors_per_topic {
                let body = gen.distractor_body(topic, &mut rng);
                let url = format!("http://testbed/t{}/distract/d{}", topic.id, d);
                store.push(Document::new(next_id, url, String::new(), body));
                next_id += 1;
            }
        }
        for d in 0..config.noise_docs {
            let body = gen.noise_body(&mut rng);
            let url = format!("http://testbed/noise/d{d}");
            store.push(Document::new(next_id, url, String::new(), body));
            next_id += 1;
        }

        Testbed {
            config,
            store,
            topics,
            qrels,
            background: background.to_vec(),
        }
    }

    /// Build the inverted index over the testbed's documents.
    pub fn build_index(&self) -> InvertedIndex {
        let mut builder = IndexBuilder::new();
        for doc in self.store.iter() {
            builder.add(doc.clone());
        }
        builder.build()
    }

    /// Total number of documents.
    pub fn num_docs(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bed() -> Testbed {
        let mut cfg = TestbedConfig::small();
        cfg.num_topics = 3;
        cfg.docs_per_subtopic = 5;
        cfg.noise_docs = 30;
        Testbed::generate(cfg)
    }

    #[test]
    fn topics_are_valid_and_in_bounds() {
        let tb = bed();
        assert_eq!(tb.topics.len(), 3);
        for t in &tb.topics {
            assert!(t.validate().is_ok());
            assert!((3..=6).contains(&t.num_subtopics()));
        }
    }

    #[test]
    fn qrels_cover_every_subtopic() {
        let tb = bed();
        for t in &tb.topics {
            for s in &t.subtopics {
                let docs = tb.qrels.relevant_docs(t.id, s.id);
                assert_eq!(docs.len(), 5, "topic {} sub {}", t.id, s.id);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = bed();
        let b = bed();
        assert_eq!(a.num_docs(), b.num_docs());
        let da = a.store.get(serpdiv_index::DocId(0)).unwrap();
        let db = b.store.get(serpdiv_index::DocId(0)).unwrap();
        assert_eq!(da.body, db.body);
        assert_eq!(a.topics[0].query, b.topics[0].query);
    }

    #[test]
    fn ambiguous_query_retrieves_multiple_subtopics() {
        let tb = bed();
        let index = tb.build_index();
        let engine = serpdiv_index::SearchEngine::new(&index);
        let topic = &tb.topics[0];
        let hits = engine.search(&topic.query, 100);
        assert!(!hits.is_empty());
        // Count distinct subtopics among retrieved docs.
        let mut covered = std::collections::HashSet::new();
        for h in &hits {
            for s in tb.qrels.subtopics_of(topic.id, h.doc) {
                covered.insert(s);
            }
        }
        assert!(
            covered.len() >= 2,
            "ambiguous query should surface ≥ 2 subtopics, got {covered:?}"
        );
    }

    #[test]
    fn specialization_query_prefers_its_subtopic() {
        let tb = bed();
        let index = tb.build_index();
        let engine = serpdiv_index::SearchEngine::new(&index);
        let topic = &tb.topics[0];
        let sub = &topic.subtopics[0];
        // Only `docs_per_subtopic` (= 5) relevant documents exist; the top-5
        // must be dominated by them.
        let hits = engine.search(&sub.query, 5);
        assert_eq!(hits.len(), 5);
        let rel = hits
            .iter()
            .filter(|h| tb.qrels.is_relevant(topic.id, sub.id, h.doc))
            .count();
        assert!(rel >= 4, "only {rel}/{} relevant", hits.len());
    }

    #[test]
    fn weights_are_descending() {
        let tb = bed();
        for t in &tb.topics {
            for w in t.subtopics.windows(2) {
                assert!(w[0].weight >= w[1].weight);
            }
        }
    }

    #[test]
    fn proportional_docs_follow_weights() {
        let mut cfg = TestbedConfig::small();
        cfg.num_topics = 2;
        cfg.proportional_docs = true;
        cfg.docs_per_subtopic = 20;
        cfg.noise_docs = 0;
        let tb = Testbed::generate(cfg);
        for t in &tb.topics {
            let counts: Vec<usize> = t
                .subtopics
                .iter()
                .map(|s| tb.qrels.relevant_docs(t.id, s.id).len())
                .collect();
            // Dominant subtopic gets the most documents; all get ≥ 3.
            assert!(counts[0] >= *counts.last().unwrap(), "{counts:?}");
            assert!(counts.iter().all(|&c| c >= 3), "{counts:?}");
        }
    }

    #[test]
    fn distractors_match_query_but_are_irrelevant() {
        let mut cfg = TestbedConfig::small();
        cfg.num_topics = 2;
        cfg.distractors_per_topic = 10;
        cfg.docs_per_subtopic = 5;
        cfg.noise_docs = 0;
        let tb = Testbed::generate(cfg);
        let index = tb.build_index();
        let engine = serpdiv_index::SearchEngine::new(&index);
        let topic = &tb.topics[0];
        let hits = engine.search(&topic.query, 1_000);
        let irrelevant = hits
            .iter()
            .filter(|h| !tb.qrels.is_relevant_any(topic.id, h.doc))
            .count();
        assert!(
            irrelevant >= 8,
            "distractors must be retrieved by the ambiguous query, got {irrelevant}"
        );
    }
}
