//! Subtopic-level relevance judgements (qrels).
//!
//! TREC's Diversity task provides "relevance judgements ... at subtopic
//! level" (Appendix B): a document is judged relevant to specific subtopics
//! of a topic, not to the topic as a whole. α-NDCG and IA-P both consume
//! this structure.

use serde::{Deserialize, Serialize};
use serpdiv_index::DocId;
use std::collections::{HashMap, HashSet};

/// Identifier of a topic within a testbed.
pub type TopicId = usize;
/// Identifier of a subtopic within its topic.
pub type SubtopicId = usize;

/// Subtopic-level relevance judgements for a set of topics.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Qrels {
    /// `(topic, doc) → set of relevant subtopics`.
    judgments: HashMap<(TopicId, u32), HashSet<SubtopicId>>,
    /// `topic → number of subtopics` (needed to iterate intents).
    num_subtopics: HashMap<TopicId, usize>,
}

impl Qrels {
    /// Empty qrels.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare that `topic` has `n` subtopics.
    pub fn declare_topic(&mut self, topic: TopicId, n: usize) {
        self.num_subtopics.insert(topic, n);
    }

    /// Number of subtopics of `topic` (0 when undeclared).
    pub fn num_subtopics(&self, topic: TopicId) -> usize {
        self.num_subtopics.get(&topic).copied().unwrap_or(0)
    }

    /// Judge `doc` relevant to `subtopic` of `topic`.
    pub fn add(&mut self, topic: TopicId, subtopic: SubtopicId, doc: DocId) {
        self.judgments
            .entry((topic, doc.0))
            .or_default()
            .insert(subtopic);
    }

    /// Is `doc` relevant to `subtopic` of `topic`?
    pub fn is_relevant(&self, topic: TopicId, subtopic: SubtopicId, doc: DocId) -> bool {
        self.judgments
            .get(&(topic, doc.0))
            .is_some_and(|s| s.contains(&subtopic))
    }

    /// Is `doc` relevant to *any* subtopic of `topic`?
    pub fn is_relevant_any(&self, topic: TopicId, doc: DocId) -> bool {
        self.judgments
            .get(&(topic, doc.0))
            .is_some_and(|s| !s.is_empty())
    }

    /// The subtopics `doc` is relevant to under `topic`.
    pub fn subtopics_of(&self, topic: TopicId, doc: DocId) -> Vec<SubtopicId> {
        let mut v: Vec<SubtopicId> = self
            .judgments
            .get(&(topic, doc.0))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// All documents judged relevant to `subtopic` of `topic`.
    pub fn relevant_docs(&self, topic: TopicId, subtopic: SubtopicId) -> Vec<DocId> {
        let mut v: Vec<DocId> = self
            .judgments
            .iter()
            .filter(|&(&(t, _), subs)| t == topic && subs.contains(&subtopic))
            .map(|(&(_, d), _)| DocId(d))
            .collect();
        v.sort_unstable();
        v
    }

    /// Total number of `(topic, doc)` judgement entries.
    pub fn len(&self) -> usize {
        self.judgments.len()
    }

    /// True when no judgement exists.
    pub fn is_empty(&self) -> bool {
        self.judgments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut q = Qrels::new();
        q.declare_topic(1, 3);
        q.add(1, 0, DocId(10));
        q.add(1, 2, DocId(10));
        q.add(1, 1, DocId(20));
        assert!(q.is_relevant(1, 0, DocId(10)));
        assert!(q.is_relevant(1, 2, DocId(10)));
        assert!(!q.is_relevant(1, 1, DocId(10)));
        assert!(q.is_relevant_any(1, DocId(20)));
        assert!(!q.is_relevant_any(1, DocId(30)));
        assert_eq!(q.subtopics_of(1, DocId(10)), vec![0, 2]);
        assert_eq!(q.num_subtopics(1), 3);
        assert_eq!(q.num_subtopics(9), 0);
    }

    #[test]
    fn relevant_docs_is_sorted() {
        let mut q = Qrels::new();
        q.add(0, 0, DocId(30));
        q.add(0, 0, DocId(10));
        q.add(0, 1, DocId(20));
        assert_eq!(q.relevant_docs(0, 0), vec![DocId(10), DocId(30)]);
    }

    #[test]
    fn topics_are_isolated() {
        let mut q = Qrels::new();
        q.add(0, 0, DocId(1));
        assert!(!q.is_relevant(1, 0, DocId(1)));
    }

    #[test]
    fn duplicate_adds_are_idempotent() {
        let mut q = Qrels::new();
        q.add(0, 0, DocId(1));
        q.add(0, 0, DocId(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.subtopics_of(0, DocId(1)), vec![0]);
    }
}
