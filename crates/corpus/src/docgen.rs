//! Per-subtopic unigram language models emitting documents.
//!
//! Each subtopic owns a language model mixing four sources:
//!
//! * the topic's head term (so the ambiguous query retrieves the document),
//! * the subtopic's name terms (so the specialization query retrieves it,
//!   and snippets of same-subtopic documents share vocabulary — the signal
//!   cosine similarity measures),
//! * the subtopic's private term pool (topical coherence),
//! * Zipf-distributed background vocabulary (realistic noise).

use crate::topics::Topic;
use crate::zipf::Zipf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mixture weights and length parameters of the document generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DocGenConfig {
    /// Probability of emitting the topic head term.
    pub p_head: f64,
    /// Probability of emitting one of the subtopic's name terms.
    pub p_subtopic_name: f64,
    /// Probability of emitting a term from the subtopic's private pool.
    pub p_subtopic_pool: f64,
    /// Minimum body length in tokens.
    pub min_len: usize,
    /// Maximum body length in tokens.
    pub max_len: usize,
    /// Zipf exponent of the background vocabulary.
    pub background_exponent: f64,
    /// Head-term rate of distractor documents relative to `p_head`
    /// (> 1: distractors out-rank genuine pages on term frequency alone,
    /// as keyword-stuffed pages do on the real web).
    pub distractor_head_boost: f64,
}

impl Default for DocGenConfig {
    fn default() -> Self {
        DocGenConfig {
            p_head: 0.08,
            p_subtopic_name: 0.10,
            p_subtopic_pool: 0.32,
            min_len: 40,
            max_len: 120,
            background_exponent: 1.05,
            distractor_head_boost: 1.5,
        }
    }
}

/// Document-body generator shared across subtopics of a testbed.
#[derive(Debug)]
pub struct DocGenerator<'a> {
    cfg: DocGenConfig,
    background: &'a [String],
    zipf: Zipf,
}

impl<'a> DocGenerator<'a> {
    /// Create a generator over a background vocabulary.
    ///
    /// # Panics
    /// Panics when the background vocabulary is empty or the mixture
    /// probabilities exceed 1.
    pub fn new(cfg: DocGenConfig, background: &'a [String]) -> Self {
        assert!(!background.is_empty(), "background vocabulary required");
        assert!(
            cfg.p_head + cfg.p_subtopic_name + cfg.p_subtopic_pool <= 1.0,
            "mixture probabilities must sum to ≤ 1"
        );
        assert!(cfg.min_len >= 1 && cfg.min_len <= cfg.max_len);
        let zipf = Zipf::new(background.len(), cfg.background_exponent);
        DocGenerator {
            cfg,
            background,
            zipf,
        }
    }

    /// Generate the body of a document about `topic`'s subtopic `sub`.
    pub fn subtopic_body<R: Rng + ?Sized>(&self, topic: &Topic, sub: usize, rng: &mut R) -> String {
        let subtopic = &topic.subtopics[sub];
        let len = rng.gen_range(self.cfg.min_len..=self.cfg.max_len);
        let mut words: Vec<&str> = Vec::with_capacity(len);
        for _ in 0..len {
            let u: f64 = rng.gen();
            if u < self.cfg.p_head {
                words.push(&topic.head_term);
            } else if u < self.cfg.p_head + self.cfg.p_subtopic_name {
                // Name terms exclude the head term (queries are "head sub").
                let name_terms: Vec<&str> = subtopic
                    .query
                    .split_whitespace()
                    .filter(|w| *w != topic.head_term)
                    .collect();
                if let Some(w) = pick(&name_terms, rng) {
                    words.push(w);
                } else {
                    words.push(&topic.head_term);
                }
            } else if u < self.cfg.p_head + self.cfg.p_subtopic_name + self.cfg.p_subtopic_pool {
                let i = rng.gen_range(0..subtopic.terms.len());
                words.push(&subtopic.terms[i]);
            } else {
                words.push(&self.background[self.zipf.sample(rng)]);
            }
        }
        words.join(" ")
    }

    /// Generate a *distractor* body: a document that uses the topic's head
    /// term (so the ambiguous query retrieves it) but belongs to no
    /// subtopic — the "plausible but irrelevant" pages that dominate real
    /// web result lists and that diversifiers must demote.
    pub fn distractor_body<R: Rng + ?Sized>(&self, topic: &Topic, rng: &mut R) -> String {
        let len = rng.gen_range(self.cfg.min_len..=self.cfg.max_len);
        let p_head = (self.cfg.p_head * self.cfg.distractor_head_boost).min(0.9);
        let mut words: Vec<&str> = Vec::with_capacity(len);
        for _ in 0..len {
            if rng.gen_bool(p_head) {
                words.push(&topic.head_term);
            } else {
                words.push(&self.background[self.zipf.sample(rng)]);
            }
        }
        words.join(" ")
    }

    /// Generate a background-only (noise) document body.
    pub fn noise_body<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let len = rng.gen_range(self.cfg.min_len..=self.cfg.max_len);
        (0..len)
            .map(|_| self.background[self.zipf.sample(rng)].as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn pick<'s, R: Rng + ?Sized>(items: &[&'s str], rng: &mut R) -> Option<&'s str> {
    if items.is_empty() {
        None
    } else {
        Some(items[rng.gen_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topics::Subtopic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topic() -> Topic {
        Topic {
            id: 0,
            query: "leopard".into(),
            head_term: "leopard".into(),
            subtopics: vec![Subtopic {
                id: 0,
                query: "leopard tank".into(),
                weight: 1.0,
                terms: vec!["armor".into(), "army".into(), "battalion".into()],
            }],
        }
    }

    fn background() -> Vec<String> {
        (0..50).map(|i| format!("bg{i:02}")).collect()
    }

    #[test]
    fn body_contains_topical_signal() {
        let bg = background();
        let gen = DocGenerator::new(DocGenConfig::default(), &bg);
        let t = topic();
        let mut rng = StdRng::seed_from_u64(1);
        // Over several documents the head term and pool terms must appear.
        let mut saw_head = false;
        let mut saw_pool = false;
        for _ in 0..20 {
            let body = gen.subtopic_body(&t, 0, &mut rng);
            saw_head |= body.contains("leopard");
            saw_pool |= body.contains("armor") || body.contains("army");
        }
        assert!(saw_head && saw_pool);
    }

    #[test]
    fn body_lengths_in_range() {
        let bg = background();
        let cfg = DocGenConfig {
            min_len: 10,
            max_len: 20,
            ..DocGenConfig::default()
        };
        let gen = DocGenerator::new(cfg, &bg);
        let t = topic();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let n = gen
                .subtopic_body(&t, 0, &mut rng)
                .split_whitespace()
                .count();
            assert!((10..=20).contains(&n));
        }
    }

    #[test]
    fn noise_has_no_topical_terms() {
        let bg = background();
        let gen = DocGenerator::new(DocGenConfig::default(), &bg);
        let mut rng = StdRng::seed_from_u64(3);
        let body = gen.noise_body(&mut rng);
        assert!(!body.contains("leopard"));
        assert!(!body.contains("armor"));
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let bg = background();
        let gen = DocGenerator::new(DocGenConfig::default(), &bg);
        let t = topic();
        let a = gen.subtopic_body(&t, 0, &mut StdRng::seed_from_u64(9));
        let b = gen.subtopic_body(&t, 0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "background")]
    fn empty_background_panics() {
        let bg: Vec<String> = Vec::new();
        let _ = DocGenerator::new(DocGenConfig::default(), &bg);
    }
}
