//! Zipf-distributed sampling.
//!
//! Query popularity and web-text term frequency are famously Zipfian; the
//! corpus and query-log generators both sample from this distribution. The
//! implementation precomputes the CDF over ranks `1..=n` and samples by
//! binary search — `O(n)` setup, `O(log n)` per sample, exact.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = r) ∝ 1 / (r + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is not finite and ≥ 0.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Make the final entry exactly 1 so sampling can never fall off.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank (degenerate distribution).
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(50, 1.2);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_follow_ranks() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head rank must dominate the tail rank decisively.
        assert!(counts[0] > counts[19] * 3);
        // Every rank should be reachable.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
