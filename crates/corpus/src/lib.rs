//! Synthetic topical corpus — the ClueWeb-B stand-in.
//!
//! The paper evaluates on ClueWeb-B (50M English web documents) with the 50
//! topics of the TREC 2009 Web track's Diversity task; each topic has 3–8
//! manually identified subtopics and relevance judgements *at subtopic
//! level* (Appendix B). ClueWeb09 is licensed and terabyte-scale, so this
//! crate generates the closest synthetic equivalent (see DESIGN.md §2):
//!
//! * [`zipf`] — a Zipf sampler (web text and query popularity are Zipfian),
//! * [`vocabulary`] — a deterministic pseudo-word vocabulary, collision-free
//!   under Porter stemming,
//! * [`topics`] — TREC-like topics with weighted subtopics (the ground-truth
//!   interpretation distribution P(q′|q)),
//! * [`docgen`] — per-subtopic unigram language models emitting documents,
//! * [`qrels`] — subtopic-level relevance judgements, known by construction,
//! * [`testbed`] — the assembled corpus + topics + qrels bundle.
//!
//! Everything is seeded and deterministic: the same seed reproduces the
//! same corpus byte-for-byte.

pub mod docgen;
pub mod qrels;
pub mod testbed;
pub mod topics;
pub mod vocabulary;
pub mod zipf;

pub use docgen::DocGenConfig;
pub use qrels::{Qrels, SubtopicId, TopicId};
pub use testbed::{Testbed, TestbedConfig};
pub use topics::{Subtopic, Topic};
pub use vocabulary::SyntheticVocabulary;
pub use zipf::Zipf;
