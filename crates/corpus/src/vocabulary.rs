//! Deterministic synthetic vocabulary.
//!
//! Generates pronounceable pseudo-words (alternating consonant/vowel
//! syllables) that are (a) deterministic in the seed, (b) pairwise distinct
//! *after Porter stemming* — so every generated word occupies its own slot
//! in the index's term space and subtopic language models stay separable —
//! and (c) free of stopword collisions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serpdiv_text::{is_stopword, porter_stem};
use std::collections::HashSet;

const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwz";
const VOWELS: &[u8] = b"aeiou";

/// A pool of distinct pseudo-words.
#[derive(Debug, Clone)]
pub struct SyntheticVocabulary {
    words: Vec<String>,
}

impl SyntheticVocabulary {
    /// Generate `n` distinct pseudo-words from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = Vec::with_capacity(n);
        let mut seen_stems: HashSet<String> = HashSet::with_capacity(n);
        while words.len() < n {
            let word = Self::pseudo_word(&mut rng);
            if is_stopword(&word) {
                continue;
            }
            let stem = porter_stem(&word);
            if seen_stems.insert(stem) {
                words.push(word);
            }
        }
        SyntheticVocabulary { words }
    }

    fn pseudo_word<R: Rng + ?Sized>(rng: &mut R) -> String {
        let syllables = rng.gen_range(2..=4);
        let mut w = String::with_capacity(syllables * 2 + 1);
        for _ in 0..syllables {
            w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
            w.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
        }
        // Occasionally close with a consonant for variety.
        if rng.gen_bool(0.3) {
            w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        }
        w
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word at `i`.
    pub fn word(&self, i: usize) -> &str {
        &self.words[i]
    }

    /// All words.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Split the pool into `parts` disjoint consecutive slices of equal
    /// size (the remainder goes to the last slice).
    pub fn partition(&self, parts: usize) -> Vec<&[String]> {
        assert!(parts > 0);
        let chunk = (self.words.len() / parts).max(1);
        let mut out = Vec::with_capacity(parts);
        for p in 0..parts {
            let start = (p * chunk).min(self.words.len());
            let end = if p + 1 == parts {
                self.words.len()
            } else {
                ((p + 1) * chunk).min(self.words.len())
            };
            out.push(&self.words[start..end]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = SyntheticVocabulary::generate(100, 42);
        let b = SyntheticVocabulary::generate(100, 42);
        assert_eq!(a.words(), b.words());
        let c = SyntheticVocabulary::generate(100, 43);
        assert_ne!(a.words(), c.words());
    }

    #[test]
    fn words_are_distinct_after_stemming() {
        let v = SyntheticVocabulary::generate(500, 7);
        let stems: HashSet<String> = v.words().iter().map(|w| porter_stem(w)).collect();
        assert_eq!(stems.len(), 500);
    }

    #[test]
    fn no_stopwords() {
        let v = SyntheticVocabulary::generate(300, 9);
        assert!(v.words().iter().all(|w| !is_stopword(w)));
    }

    #[test]
    fn partition_is_disjoint_and_covering() {
        let v = SyntheticVocabulary::generate(103, 1);
        let parts = v.partition(4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 103);
        let mut all: Vec<&String> = parts.iter().flat_map(|p| p.iter()).collect();
        all.dedup();
        assert_eq!(all.len(), 103);
    }

    #[test]
    fn words_survive_analysis() {
        // Every pseudo-word must map to exactly one indexed term.
        let v = SyntheticVocabulary::generate(100, 3);
        let analyzer = serpdiv_text::Analyzer::english();
        for w in v.words() {
            assert_eq!(analyzer.analyze(w).len(), 1, "word {w} analyzed away");
        }
    }
}
