//! TREC-like topics with weighted subtopics.
//!
//! A [`Topic`] models one ambiguous/faceted query of the TREC 2009 Web
//! track's Diversity task (e.g. *"obama family tree"* with its three
//! subtopics, Appendix B of the paper): an ambiguous query string and 3–8
//! subtopics. Each [`Subtopic`] has its own specialization query (the query
//! a user would refine to), a popularity weight (the ground-truth `P(q′|q)`
//! the query-log generator follows) and a dedicated term pool (its unigram
//! language model's specific vocabulary).

use serde::{Deserialize, Serialize};

/// One subtopic (interpretation/facet) of an ambiguous topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subtopic {
    /// Index of this subtopic within its topic.
    pub id: usize,
    /// The specialization query users refine to (e.g. "leopard tank").
    pub query: String,
    /// Ground-truth popularity of this interpretation; weights of one topic
    /// sum to 1.
    pub weight: f64,
    /// Terms specific to this subtopic's language model.
    pub terms: Vec<String>,
}

/// One ambiguous/faceted topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topic {
    /// Dense topic id (0-based; TREC numbers 1..=50).
    pub id: usize,
    /// The ambiguous query (e.g. "leopard").
    pub query: String,
    /// Head term identifying the topic in document text.
    pub head_term: String,
    /// The topic's subtopics, in decreasing weight order.
    pub subtopics: Vec<Subtopic>,
}

impl Topic {
    /// Number of subtopics.
    pub fn num_subtopics(&self) -> usize {
        self.subtopics.len()
    }

    /// Ground-truth interpretation distribution, indexed by subtopic id.
    pub fn weights(&self) -> Vec<f64> {
        self.subtopics.iter().map(|s| s.weight).collect()
    }

    /// Check invariants: weights sum to 1, subtopic count in bounds.
    pub fn validate(&self) -> Result<(), String> {
        if self.subtopics.is_empty() {
            return Err(format!("topic {} has no subtopics", self.id));
        }
        let sum: f64 = self.subtopics.iter().map(|s| s.weight).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("topic {} weights sum to {sum}", self.id));
        }
        for s in &self.subtopics {
            if s.weight <= 0.0 {
                return Err(format!("topic {} subtopic {} weight ≤ 0", self.id, s.id));
            }
            if s.terms.is_empty() {
                return Err(format!("topic {} subtopic {} has no terms", self.id, s.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic() -> Topic {
        Topic {
            id: 0,
            query: "leopard".into(),
            head_term: "leopard".into(),
            subtopics: vec![
                Subtopic {
                    id: 0,
                    query: "leopard mac os".into(),
                    weight: 0.6,
                    terms: vec!["mac".into(), "os".into()],
                },
                Subtopic {
                    id: 1,
                    query: "leopard tank".into(),
                    weight: 0.4,
                    terms: vec!["tank".into()],
                },
            ],
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(topic().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_weights() {
        let mut t = topic();
        t.subtopics[0].weight = 0.9;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty() {
        let mut t = topic();
        t.subtopics.clear();
        assert!(t.validate().is_err());
    }

    #[test]
    fn weights_accessor() {
        assert_eq!(topic().weights(), vec![0.6, 0.4]);
    }
}
