//! Property-based tests for the IR substrate.

use proptest::prelude::*;
use serpdiv_index::bm25::Bm25;
use serpdiv_index::postings::PostingsBuilder;
use serpdiv_index::search::top_k;
use serpdiv_index::{
    cosine, DocId, Document, IndexBuilder, MaxScoreEngine, ScoredDoc, SearchEngine, SparseVector,
};
use serpdiv_text::{Analyzer, TermId};

proptest! {
    /// Postings survive an encode/decode round trip for any increasing
    /// doc-id sequence and positive frequencies.
    #[test]
    fn postings_roundtrip(
        mut docs in prop::collection::btree_set(0u32..1_000_000, 0..200),
        tfs in prop::collection::vec(1u32..10_000, 200),
    ) {
        let docs: Vec<u32> = std::mem::take(&mut docs).into_iter().collect();
        let mut b = PostingsBuilder::new();
        let expected: Vec<(u32, u32)> = docs
            .iter()
            .zip(tfs.iter())
            .map(|(&d, &tf)| (d, tf))
            .collect();
        for &(d, tf) in &expected {
            b.push(DocId(d), tf);
        }
        let list = b.build();
        let decoded: Vec<(u32, u32)> = list.iter().map(|p| (p.doc.0, p.tf)).collect();
        prop_assert_eq!(decoded, expected);
    }

    /// `top_k` agrees with full sort on arbitrary score sets.
    #[test]
    fn top_k_matches_sort(
        scores in prop::collection::vec(-1e6f64..1e6, 0..300),
        k in 0usize..50,
    ) {
        let items: Vec<ScoredDoc> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| ScoredDoc { doc: DocId(i as u32), score: s })
            .collect();
        let mut reference = items.clone();
        reference.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        reference.truncate(k);
        let got = top_k(items.into_iter(), k);
        prop_assert_eq!(got, reference);
    }

    /// Cosine similarity is symmetric, bounded and 1 on self.
    #[test]
    fn cosine_properties(
        a in prop::collection::vec((0u32..500, 0.0f32..100.0), 0..40),
        b in prop::collection::vec((0u32..500, 0.0f32..100.0), 0..40),
    ) {
        let va = SparseVector::from_pairs(a.iter().map(|&(t, w)| (TermId(t), w)));
        let vb = SparseVector::from_pairs(b.iter().map(|&(t, w)| (TermId(t), w)));
        let sab = cosine(&va, &vb);
        let sba = cosine(&vb, &va);
        prop_assert!((0.0..=1.0).contains(&sab));
        prop_assert!((sab - sba).abs() < 1e-6);
        if !va.is_zero() {
            prop_assert!((cosine(&va, &va) - 1.0).abs() < 1e-5);
        }
    }

    /// Every document containing all query terms is retrievable, and no
    /// returned document lacks all of them (bag-of-words conjunctive lower
    /// bound: returned docs contain at least one query term).
    #[test]
    fn retrieval_soundness(bodies in prop::collection::vec("[a-d]{1,6}( [a-d]{1,6}){0,8}", 1..20)) {
        let mut builder = IndexBuilder::new();
        for (i, body) in bodies.iter().enumerate() {
            builder.add(Document::new(i as u32, format!("u{i}"), "", body.clone()));
        }
        let idx = builder.build();
        let engine = SearchEngine::new(&idx);
        let query = &bodies[0];
        let hits = engine.search(query, bodies.len());
        // Every hit must share at least one analyzed term with the query.
        let qterms = idx.analyze_query(query);
        for h in &hits {
            let doc = idx.store().get(h.doc).unwrap();
            let dterms = idx.analyze_query(&doc.full_text());
            prop_assert!(qterms.iter().any(|t| dterms.contains(t)));
        }
        // Document 0 matches its own text, so it must be retrieved
        // (unless its text analyzed to nothing).
        if !qterms.is_empty() {
            prop_assert!(hits.iter().any(|h| h.doc == DocId(0)));
        }
    }

    /// Index statistics are consistent: Σ doc_len == num_tokens and
    /// Σ coll_freq over terms == num_tokens.
    #[test]
    fn index_statistics_consistent(bodies in prop::collection::vec("[a-f ]{0,60}", 0..30)) {
        let mut builder = IndexBuilder::new();
        for (i, body) in bodies.iter().enumerate() {
            builder.add(Document::new(i as u32, format!("u{i}"), "", body.clone()));
        }
        let idx = builder.build();
        let total_len: u64 = (0..bodies.len())
            .map(|i| u64::from(idx.doc_len(DocId(i as u32)).unwrap()))
            .sum();
        prop_assert_eq!(total_len, idx.stats().num_tokens);
        let total_cf: u64 = (0..idx.num_terms() as u32)
            .map(|t| idx.term_stats(TermId(t)).unwrap().coll_freq)
            .sum();
        prop_assert_eq!(total_cf, idx.stats().num_tokens);
    }
}

proptest! {
    /// MaxScore doc-at-a-time retrieval returns exactly the same ranked
    /// list as term-at-a-time under BM25, on arbitrary corpora/queries.
    #[test]
    fn maxscore_equals_taat(
        bodies in prop::collection::vec("[a-e]{1,4}( [a-e]{1,4}){0,10}", 1..25),
        qsel in prop::collection::vec(0usize..25, 1..4),
        k in 1usize..12,
    ) {
        let mut builder = IndexBuilder::new();
        for (i, body) in bodies.iter().enumerate() {
            builder.add(Document::new(i as u32, format!("u{i}"), "", body.clone()));
        }
        let idx = builder.build();
        // Query: words sampled from the corpus (guaranteed in-vocabulary).
        let query: String = qsel
            .iter()
            .map(|&i| {
                bodies[i % bodies.len()]
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .to_string()
            })
            .collect::<Vec<_>>()
            .join(" ");
        let taat = SearchEngine::with_model(&idx, Bm25::new()).search(&query, k);
        let daat = MaxScoreEngine::new(&idx, Bm25::new()).search(&query, k);
        prop_assert_eq!(taat.len(), daat.len());
        for (a, b) in taat.iter().zip(&daat) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    /// Index persistence: serialization round-trips arbitrary corpora and
    /// preserves retrieval behaviour.
    #[test]
    fn serialization_roundtrip(
        bodies in prop::collection::vec("[a-e]{1,4}( [a-e]{1,4}){0,8}", 0..15),
    ) {
        let mut builder = IndexBuilder::new();
        for (i, body) in bodies.iter().enumerate() {
            builder.add(Document::new(i as u32, format!("u{i}"), "", body.clone()));
        }
        let idx = builder.build();
        let restored = serpdiv_index::InvertedIndex::from_bytes(
            &idx.to_bytes(),
            Analyzer::english(),
        ).unwrap();
        prop_assert_eq!(restored.stats(), idx.stats());
        prop_assert_eq!(restored.num_terms(), idx.num_terms());
        if let Some(body) = bodies.first() {
            let a = SearchEngine::new(&idx).search(body, 10);
            let b = SearchEngine::new(&restored).search(body, 10);
            prop_assert_eq!(a.len(), b.len());
        }
    }
}
