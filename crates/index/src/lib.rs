//! IR-engine substrate for the `serpdiv` workspace.
//!
//! The paper indexes ClueWeb-B with "an ad-hoc modified version of the
//! Terrier IR platform" (§5): Porter stemming + stopword removal (provided by
//! [`serpdiv_text`]), the parameter-free **DPH Divergence-From-Randomness**
//! weighting model for retrieval, and short document summaries (snippets)
//! used as document surrogates by the diversification utility function.
//!
//! This crate rebuilds that stack from scratch:
//!
//! * [`document`] — documents, dense [`DocId`]s and the document store,
//! * [`postings`] — delta+varint compressed postings lists,
//! * [`builder`] — the index builder,
//! * [`index`] — the immutable inverted index and collection statistics,
//! * [`dph`] / [`bm25`] — ranking models,
//! * [`search`] — top-`k` query evaluation,
//! * [`retriever`] — the [`Retriever`] trait every evaluation strategy
//!   (TAAT DPH, MaxScore, sharded scatter-gather) implements,
//! * [`sharded`] — [`ShardedIndex`]: deploy-time document partitioning
//!   with parallel per-shard scoring and a bit-identical k-way merge,
//! * [`artifact`] — [`ShardArtifact`]: one shard serialized into a
//!   standalone scorer (postings slice + the global statistics), the boot
//!   image of an out-of-process fleet worker,
//! * [`executor`] — [`ScoringExecutor`]: the shared persistent pool of
//!   pinned-scratch workers the scatter step submits latched per-query
//!   task batches to (no per-query thread spawn),
//! * [`snippet`] — query-biased snippet extraction (document surrogates),
//! * [`forward`] — [`ForwardIndex`]: the deploy-time compiled forward
//!   index (per-document `TermId` streams + cached IDF) that emits
//!   snippet surrogates with zero string work on the request path,
//! * [`vector`] — sparse TF-IDF vectors and the cosine similarity that
//!   powers the paper's distance `δ(d₁,d₂) = 1 − cosine(d₁,d₂)` (Eq. 2),
//! * [`delta`] — [`DeltaIndex`] + [`DeltaRetriever`]: near-real-time
//!   ingest searched alongside the sealed collection, and
//!   [`merge_sealed`], the background fold that produces a new sealed
//!   index bit-identical to a from-scratch build.
//!
//! # Example
//!
//! ```
//! use serpdiv_index::{Document, IndexBuilder, SearchEngine};
//!
//! let mut builder = IndexBuilder::new();
//! builder.add(Document::new(0, "http://a", "apple iphone", "apple announces new iphone model"));
//! builder.add(Document::new(1, "http://b", "apple pie", "apple pie recipe with fresh apples"));
//! let index = builder.build();
//! let engine = SearchEngine::new(&index);
//! let hits = engine.search("apple iphone", 10);
//! assert_eq!(hits[0].doc.0, 0);
//! ```

pub mod artifact;
pub mod bm25;
pub mod builder;
pub mod cache;
pub mod delta;
pub mod document;
pub mod dph;
pub mod executor;
pub mod forward;
pub mod index;
pub mod maxscore;
pub mod positions;
pub mod postings;
pub mod retriever;
pub mod search;
pub mod serialize;
pub mod sharded;
pub mod snippet;
pub mod vector;

pub use artifact::ShardArtifact;
pub use builder::IndexBuilder;
pub use cache::CachingEngine;
pub use delta::{merge_sealed, DeltaIndex, DeltaRetriever};
pub use document::{DocId, Document, DocumentStore};
pub use dph::Dph;
pub use executor::{ScoringExecutor, TaskPanic};
pub use forward::ForwardIndex;
pub use index::{CollectionStats, InvertedIndex, StatsOverlay, TermStats};
pub use maxscore::MaxScoreEngine;
pub use positions::{phrase_search, PositionalIndex};
pub use retriever::{Retrieval, Retriever};
pub use search::{query_weights, RankingModel, ScoredDoc, SearchEngine};
pub use serialize::DecodeError;
pub use sharded::{merge_top_k, ScatterMode, ShardedIndex};
pub use snippet::SnippetGenerator;
pub use vector::{cosine, cosine64, SparseVector};
