//! Sparse TF-IDF document vectors and cosine similarity.
//!
//! The paper's distance function (Eq. 2) is `δ(d₁,d₂) = 1 − cosine(d₁,d₂)`,
//! computed over document *surrogates* (snippets). A [`SparseVector`] stores
//! `(TermId, weight)` pairs sorted by term id with a cached L2 norm, so the
//! dot product is a linear merge and cosine is two multiplies away.
//!
//! Weights are the standard `(1 + ln tf) · ln(1 + N/df)` TF-IDF, which is
//! non-negative — hence `cosine ∈ [0, 1]` and `δ ∈ [0, 1]` as Definition 2
//! requires.

use crate::index::InvertedIndex;
use serde::{Deserialize, Serialize};
use serpdiv_text::TermId;
use std::collections::HashMap;

/// A sparse vector over the term space with cached norm.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    /// `(term, weight)` pairs sorted by term id, weights ≥ 0.
    entries: Vec<(TermId, f32)>,
    norm: f32,
}

impl SparseVector {
    /// Build from unsorted `(term, weight)` pairs; duplicate terms are
    /// summed, non-finite or negative weights rejected.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TermId, f32)>) -> Self {
        let mut map: HashMap<TermId, f32> = HashMap::new();
        for (t, w) in pairs {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and ≥ 0");
            *map.entry(t).or_insert(0.0) += w;
        }
        let mut entries: Vec<(TermId, f32)> = map.into_iter().filter(|&(_, w)| w > 0.0).collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        let norm = entries.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
        SparseVector { entries, norm }
    }

    /// Build from `(term, weight)` pairs already sorted by strictly
    /// ascending term id (no duplicates). The zero-allocation-overhead
    /// constructor of the compiled forward-index path: it skips the
    /// aggregation map of [`from_pairs`](Self::from_pairs) but applies the
    /// same contract — zero weights are dropped, and the cached norm is
    /// accumulated over the retained entries in the same (sorted) order,
    /// so the result is bit-identical to the `from_pairs` equivalent.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite, or if terms are
    /// not strictly ascending.
    pub fn from_sorted_pairs(pairs: impl IntoIterator<Item = (TermId, f32)>) -> Self {
        let mut entries: Vec<(TermId, f32)> = Vec::new();
        for (t, w) in pairs {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and ≥ 0");
            if let Some(&(last, _)) = entries.last() {
                assert!(last < t, "terms must be strictly ascending");
            }
            if w > 0.0 {
                entries.push((t, w));
            }
        }
        let norm = entries.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
        SparseVector { entries, norm }
    }

    /// TF-IDF vector of a text under `index`'s analyzer and statistics.
    ///
    /// This is how snippet surrogates are vectorized: analyze the snippet,
    /// weight each term by `(1 + ln tf) · ln(1 + N/df)`.
    pub fn from_text(text: &str, index: &InvertedIndex) -> Self {
        let terms = index.analyze_query(text);
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        for t in terms {
            *tf.entry(t).or_insert(0) += 1;
        }
        let n = index.stats().num_docs as f32;
        Self::from_pairs(tf.into_iter().map(|(t, f)| {
            let df = index
                .term_stats(t)
                .map(|s| s.doc_freq as f32)
                .unwrap_or(0.0)
                .max(1.0);
            let w = (1.0 + (f as f32).ln()) * (1.0 + n / df).ln();
            (t, w)
        }))
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when the vector is all-zero.
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cached L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(TermId, f32)] {
        &self.entries
    }

    /// Dot product by sorted merge — `O(nnz(a) + nnz(b))`.
    pub fn dot(&self, other: &SparseVector) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0f32;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Dot product accumulated in `f64` — same merge as [`dot`](Self::dot)
    /// but each product and the running sum are double precision, so
    /// utility computations that fold many dot products stay comparable
    /// across algebraically equivalent evaluation orders.
    pub fn dot64(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0f64;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += f64::from(a[i].1) * f64::from(b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Approximate in-memory footprint in bytes (for the §4.1 memory
    /// feasibility experiment).
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.len() * std::mem::size_of::<(TermId, f32)>()
    }
}

/// Cosine similarity in `[0, 1]`; zero vectors have similarity 0 with
/// everything (a zero snippet carries no evidence of relatedness).
pub fn cosine(a: &SparseVector, b: &SparseVector) -> f32 {
    if a.is_zero() || b.is_zero() {
        return 0.0;
    }
    let c = a.dot(b) / (a.norm() * b.norm());
    // Guard floating error so callers can rely on the [0,1] contract.
    c.clamp(0.0, 1.0)
}

/// Double-precision cosine in `[0, 1]` — the reference similarity for the
/// utility stage, where the compiled fast path re-associates the same sum
/// and the two must agree to ~1e-12 rather than f32's ~1e-7.
pub fn cosine64(a: &SparseVector, b: &SparseVector) -> f64 {
    if a.is_zero() || b.is_zero() {
        return 0.0;
    }
    let c = a.dot64(b) / (f64::from(a.norm()) * f64::from(b.norm()));
    c.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn identical_vectors_have_cosine_one() {
        let a = v(&[(1, 2.0), (5, 3.0)]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_vectors_have_cosine_zero() {
        let a = v(&[(1, 2.0)]);
        let b = v(&[(2, 2.0)]);
        assert_eq!(cosine(&a, &b), 0.0);
    }

    #[test]
    fn cosine_is_symmetric() {
        let a = v(&[(1, 1.0), (2, 2.0), (9, 0.5)]);
        let b = v(&[(2, 1.5), (9, 4.0)]);
        assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let z = SparseVector::default();
        let a = v(&[(1, 1.0)]);
        assert_eq!(cosine(&z, &a), 0.0);
        assert_eq!(cosine(&z, &z), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = SparseVector::from_pairs(vec![(TermId(3), 1.0), (TermId(3), 2.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.entries()[0].1, 3.0);
    }

    #[test]
    fn zero_weights_dropped() {
        let a = SparseVector::from_pairs(vec![(TermId(3), 0.0), (TermId(4), 1.0)]);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        let _ = SparseVector::from_pairs(vec![(TermId(1), -1.0)]);
    }

    #[test]
    fn dot_merge_matches_naive() {
        let a = v(&[(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = v(&[(1, 5.0), (2, 7.0), (4, 0.5)]);
        assert!((a.dot(&b) - (2.0 * 7.0 + 3.0 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn dot64_and_cosine64_match_f32_versions() {
        let a = v(&[(0, 1.5), (2, 2.0), (7, 3.0)]);
        let b = v(&[(2, 7.0), (7, 0.5), (9, 4.0)]);
        assert!((a.dot64(&b) - f64::from(a.dot(&b))).abs() < 1e-5);
        assert!((cosine64(&a, &b) - f64::from(cosine(&a, &b))).abs() < 1e-6);
        // The cached norm is f32, so self-similarity is 1 up to f32 eps.
        assert!((cosine64(&a, &a) - 1.0).abs() < 1e-6);
        let z = SparseVector::default();
        assert_eq!(cosine64(&z, &a), 0.0);
    }

    #[test]
    fn from_sorted_pairs_matches_from_pairs_bitwise() {
        let pairs = [(TermId(1), 0.25f32), (TermId(4), 3.5), (TermId(9), 0.125)];
        let a = SparseVector::from_pairs(pairs);
        let b = SparseVector::from_sorted_pairs(pairs);
        assert_eq!(a, b);
        assert_eq!(a.norm().to_bits(), b.norm().to_bits());
        // Zero weights are dropped by both constructors.
        let z = SparseVector::from_sorted_pairs([(TermId(0), 0.0), (TermId(2), 1.0)]);
        assert_eq!(z.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_sorted_pairs_rejects_unsorted() {
        let _ = SparseVector::from_sorted_pairs([(TermId(4), 1.0), (TermId(1), 1.0)]);
    }

    #[test]
    fn from_text_uses_index_statistics() {
        use crate::builder::IndexBuilder;
        use crate::document::Document;
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u0", "", "apple banana apple"));
        b.add(Document::new(1, "u1", "", "banana cherry"));
        let idx = b.build();
        let va = SparseVector::from_text("apple banana apple", &idx);
        let vb = SparseVector::from_text("banana cherry", &idx);
        let sim = cosine(&va, &vb);
        assert!(sim > 0.0 && sim < 1.0);
        // apple (df=1) must outweigh banana (df=2) at the same tf.
        let vap = SparseVector::from_text("apple", &idx);
        let vba = SparseVector::from_text("banana", &idx);
        assert!(vap.entries()[0].1 > vba.entries()[0].1);
    }
}
