//! Top-`k` query evaluation.
//!
//! Term-at-a-time evaluation: each query term's postings are decoded once and
//! scores accumulated per document, then the top `k` accumulators are
//! selected with a bounded binary heap — `O(matches · log k)` selection, the
//! same discipline OptSelect later applies to diversification.

use crate::document::DocId;
use crate::index::{CollectionStats, InvertedIndex, StatsOverlay, TermStats};
use serpdiv_text::TermId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A retrieval scoring function (DPH, BM25, …).
pub trait RankingModel {
    /// Score the contribution of one query term occurring `tf` times in a
    /// document of length `doc_len`.
    fn score(&self, tf: u32, doc_len: u32, term: TermStats, coll: CollectionStats) -> f64;
}

/// One ranked result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocId,
    /// Its retrieval score (higher is better).
    pub score: f64,
}

/// Min-heap entry ordered by `(score, doc)` so the heap root is the weakest
/// kept result; doc id breaks ties deterministically.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    score: f64,
    doc: DocId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on score; ties broken by *larger* doc id
        // first so smaller ids survive eviction (stable, deterministic).
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Query evaluator over an [`InvertedIndex`] with a pluggable model.
pub struct SearchEngine<'a> {
    index: &'a InvertedIndex,
    model: Box<dyn RankingModel + Send + Sync + 'a>,
}

impl<'a> SearchEngine<'a> {
    /// Engine with the paper's DPH model.
    pub fn new(index: &'a InvertedIndex) -> Self {
        Self::with_model(index, crate::dph::Dph::new())
    }

    /// Engine with a custom ranking model.
    pub fn with_model(
        index: &'a InvertedIndex,
        model: impl RankingModel + Send + Sync + 'a,
    ) -> Self {
        SearchEngine {
            index,
            model: Box::new(model),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &'a InvertedIndex {
        self.index
    }

    /// Retrieve the top `k` documents for a raw query string.
    pub fn search(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        let terms = self.index.analyze_query(query);
        self.search_terms(&terms, k)
    }

    /// Retrieve the top `k` documents for pre-analyzed query terms.
    ///
    /// Duplicate query terms contribute multiplicatively (bag-of-words), as
    /// in Terrier: the per-term score is weighted by the query-term count.
    /// Terms are processed in ascending [`TermId`] order, so per-document
    /// floating-point accumulation is bit-for-bit reproducible — the
    /// property the sharded scatter-gather path
    /// ([`ShardedIndex`](crate::sharded::ShardedIndex)) relies on to be
    /// bit-identical to this engine.
    pub fn search_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        // Term-at-a-time accumulation in deterministic term order.
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        accumulate_term_contributions(
            self.index.stats(),
            |t| self.index.term_stats(t),
            |t| self.index.postings(t),
            |doc| self.index.doc_len(doc).unwrap_or(0),
            &query_weights(terms),
            &*self.model,
            |doc, s| *acc.entry(doc).or_insert(0.0) += s,
        );
        top_k(
            acc.into_iter().map(|(doc, score)| ScoredDoc { doc, score }),
            k,
        )
    }

    /// Like [`search_terms`](Self::search_terms), but every model call
    /// reads statistics through `overlay`: the overlay's collection stats
    /// replace the index's own, and per-term overrides take precedence
    /// (terms without an override keep the index's statistics).
    ///
    /// This is the sealed half of the NRT union-statistics contract: a
    /// sealed index scored under the delta's union overlay produces, for
    /// every sealed document, the exact `f64` bits a from-scratch build
    /// over the union corpus would — same stats, same ascending-term
    /// accumulation order.
    pub fn search_terms_overlaid(
        &self,
        terms: &[TermId],
        k: usize,
        overlay: &StatsOverlay,
    ) -> Vec<ScoredDoc> {
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        accumulate_term_contributions(
            overlay.coll(),
            |t| overlay.term_stats(t).or_else(|| self.index.term_stats(t)),
            |t| self.index.postings(t),
            |doc| self.index.doc_len(doc).unwrap_or(0),
            &query_weights(terms),
            &*self.model,
            |doc, s| *acc.entry(doc).or_insert(0.0) += s,
        );
        top_k(
            acc.into_iter().map(|(doc, score)| ScoredDoc { doc, score }),
            k,
        )
    }
}

/// The term-at-a-time scoring loop: feed the weighted model contribution
/// of every posting of every query term into `sink`, in the order given
/// by `weights` (canonically ascending term id, see [`query_weights`]).
///
/// This is the **single definition** of per-document score accumulation —
/// the unsharded engine, both per-shard scorer forms
/// ([`ShardedIndex`](crate::sharded::ShardedIndex)) and the out-of-process
/// [`ShardArtifact`](crate::artifact::ShardArtifact) scorer call it with
/// different statistics/postings sources and accumulator sinks; the
/// bit-identical scatter-gather guarantee (in-process *and* across the
/// fleet's process boundary) depends on them sharing this loop. The
/// statistics closures must serve **global** collection quantities even
/// when the postings are shard-local — that is what makes a document's
/// score independent of where it is scored.
pub(crate) fn accumulate_term_contributions<'p>(
    coll: CollectionStats,
    term_stats_of: impl Fn(TermId) -> Option<TermStats>,
    mut postings_of: impl FnMut(TermId) -> Option<&'p crate::postings::PostingsList>,
    doc_len_of: impl Fn(DocId) -> u32,
    weights: &[(TermId, u32)],
    model: &dyn RankingModel,
    mut sink: impl FnMut(DocId, f64),
) {
    for &(term, weight) in weights {
        let (Some(postings), Some(ts)) = (postings_of(term), term_stats_of(term)) else {
            continue;
        };
        for posting in postings.iter() {
            let s = model.score(posting.tf, doc_len_of(posting.doc), ts, coll) * f64::from(weight);
            sink(posting.doc, s);
        }
    }
}

/// Collapse analyzed query terms into `(term, multiplicity)` pairs sorted
/// by ascending term id — the canonical term-processing order shared by
/// the TAAT engine and the per-shard scorers, so both accumulate each
/// document's score in the same floating-point order.
pub fn query_weights(terms: &[TermId]) -> Vec<(TermId, u32)> {
    let mut qtf: HashMap<TermId, u32> = HashMap::with_capacity(terms.len());
    for &t in terms {
        *qtf.entry(t).or_insert(0) += 1;
    }
    let mut weights: Vec<(TermId, u32)> = qtf.into_iter().collect();
    weights.sort_unstable_by_key(|&(t, _)| t);
    weights
}

/// Select the `k` highest-scoring entries, ordered by decreasing score
/// (ties by increasing doc id), using a bounded min-heap.
pub fn top_k(items: impl Iterator<Item = ScoredDoc>, k: usize) -> Vec<ScoredDoc> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for item in items {
        heap.push(HeapEntry {
            score: item.score,
            doc: item.doc,
        });
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<ScoredDoc> = heap
        .into_iter()
        .map(|e| ScoredDoc {
            doc: e.doc,
            score: e.score,
        })
        .collect();
    out.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::document::Document;

    fn index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add(Document::new(
            0,
            "http://apple.com",
            "apple iphone",
            "apple announces the new iphone with a faster chip",
        ));
        b.add(Document::new(
            1,
            "http://fruit.example",
            "apple fruit",
            "the apple is a sweet edible fruit grown on apple trees",
        ));
        b.add(Document::new(
            2,
            "http://pie.example",
            "apple pie recipe",
            "bake an apple pie with cinnamon and fresh apples",
        ));
        b.add(Document::new(
            3,
            "http://cars.example",
            "electric cars",
            "electric cars and their batteries",
        ));
        b.build()
    }

    #[test]
    fn relevant_documents_rank_first() {
        let idx = index();
        let engine = SearchEngine::new(&idx);
        let hits = engine.search("apple iphone", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc, DocId(0));
        // The unrelated car document must not appear.
        assert!(hits.iter().all(|h| h.doc != DocId(3)));
    }

    #[test]
    fn k_limits_results() {
        let idx = index();
        let engine = SearchEngine::new(&idx);
        let hits = engine.search("apple", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let idx = index();
        let engine = SearchEngine::new(&idx);
        let hits = engine.search("apple fruit pie", 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn empty_query_and_zero_k() {
        let idx = index();
        let engine = SearchEngine::new(&idx);
        assert!(engine.search("", 10).is_empty());
        assert!(engine.search("the of", 10).is_empty(), "stopwords only");
        assert!(engine.search("apple", 0).is_empty());
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let idx = index();
        let engine = SearchEngine::new(&idx);
        assert!(engine.search("zeppelin dirigible", 10).is_empty());
    }

    #[test]
    fn bm25_engine_also_works() {
        let idx = index();
        let engine = SearchEngine::with_model(&idx, crate::bm25::Bm25::new());
        let hits = engine.search("electric cars", 10);
        assert_eq!(hits[0].doc, DocId(3));
    }

    #[test]
    fn top_k_ties_break_by_doc_id() {
        let items = vec![
            ScoredDoc {
                doc: DocId(5),
                score: 1.0,
            },
            ScoredDoc {
                doc: DocId(1),
                score: 1.0,
            },
            ScoredDoc {
                doc: DocId(3),
                score: 1.0,
            },
        ];
        let out = top_k(items.into_iter(), 2);
        assert_eq!(out[0].doc, DocId(1));
        assert_eq!(out[1].doc, DocId(3));
    }

    #[test]
    fn top_k_selects_true_maxima() {
        let items: Vec<ScoredDoc> = (0..1000)
            .map(|i| ScoredDoc {
                doc: DocId(i),
                score: f64::from((i * 7919) % 1000),
            })
            .collect();
        let mut reference = items.clone();
        reference.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        let out = top_k(items.into_iter(), 10);
        assert_eq!(out, reference[..10].to_vec());
    }
}
