//! The immutable inverted index and its collection statistics.
//!
//! Built by [`IndexBuilder`](crate::builder::IndexBuilder); queried by the
//! ranking models ([`Dph`](crate::dph::Dph), [`Bm25`](crate::bm25::Bm25))
//! through [`CollectionStats`] / [`TermStats`] and by the
//! [`SearchEngine`](crate::search::SearchEngine) through the postings.

use crate::document::{DocId, DocumentStore};
use crate::postings::PostingsList;
use serpdiv_text::{Analyzer, TermId, Vocabulary};

/// Global statistics of the indexed collection, needed by DFR/BM25 models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of documents in the collection.
    pub num_docs: u64,
    /// Total number of (post-analysis) token occurrences.
    pub num_tokens: u64,
    /// Average document length in tokens.
    pub avg_doc_len: f64,
}

/// Per-term statistics, needed by the ranking models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermStats {
    /// Document frequency: number of documents containing the term.
    pub doc_freq: u64,
    /// Collection frequency: total occurrences across the collection.
    pub coll_freq: u64,
}

/// Statistics to score against *instead of* an index's own: replacement
/// collection-wide quantities plus per-term overrides for the terms whose
/// statistics differ.
///
/// This is how the NRT delta path keeps ranking score-honest: the overlay
/// carries the **union** (sealed + delta) collection stats and the union
/// [`TermStats`] of every term the delta touches, and both the sealed
/// retrieval side and the delta side score against it. Terms the overlay
/// does not carry fall back to the scored index's own statistics — for a
/// term absent from the delta, sealed statistics *are* the union
/// statistics, so the fallback is exact, not approximate.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsOverlay {
    coll: CollectionStats,
    /// Overridden per-term statistics, sorted by ascending [`TermId`].
    terms: Vec<(TermId, TermStats)>,
}

impl StatsOverlay {
    /// Overlay with replacement collection stats and per-term overrides
    /// (any order; sorted internally).
    pub fn new(coll: CollectionStats, mut terms: Vec<(TermId, TermStats)>) -> Self {
        terms.sort_unstable_by_key(|&(t, _)| t);
        StatsOverlay { coll, terms }
    }

    /// The replacement collection-wide statistics.
    pub fn coll(&self) -> CollectionStats {
        self.coll
    }

    /// The overridden statistics of `term`, when the overlay carries them
    /// (`None` ⇒ the scored index's own statistics are already correct).
    pub fn term_stats(&self, term: TermId) -> Option<TermStats> {
        self.terms
            .binary_search_by_key(&term, |&(t, _)| t)
            .ok()
            .map(|i| self.terms[i].1)
    }

    /// Number of per-term overrides.
    pub fn num_overrides(&self) -> usize {
        self.terms.len()
    }
}

/// Immutable inverted index over a [`DocumentStore`].
#[derive(Debug)]
pub struct InvertedIndex {
    pub(crate) vocab: Vocabulary,
    pub(crate) postings: Vec<PostingsList>,
    pub(crate) term_stats: Vec<TermStats>,
    pub(crate) doc_lens: Vec<u32>,
    pub(crate) max_tfs: Vec<u32>,
    pub(crate) min_doc_len: u32,
    pub(crate) store: DocumentStore,
    pub(crate) analyzer: Analyzer,
    pub(crate) stats: CollectionStats,
}

impl InvertedIndex {
    /// Collection-wide statistics.
    pub fn stats(&self) -> CollectionStats {
        self.stats
    }

    /// The analyzer the index was built with (use it for queries too).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The term dictionary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The underlying document store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// Statistics of `term`, if it occurs in the collection.
    pub fn term_stats(&self, term: TermId) -> Option<TermStats> {
        self.term_stats.get(term.index()).copied()
    }

    /// The compressed postings of `term`.
    pub fn postings(&self, term: TermId) -> Option<&PostingsList> {
        self.postings.get(term.index())
    }

    /// Length (in analyzed tokens) of document `doc`.
    pub fn doc_len(&self, doc: DocId) -> Option<u32> {
        self.doc_lens.get(doc.index()).copied()
    }

    /// Analyze raw query text into term ids known to this index.
    pub fn analyze_query(&self, query: &str) -> Vec<TermId> {
        self.analyzer.analyze_known(query, &self.vocab)
    }

    /// Largest term frequency of `term` in any single document (0 for
    /// unknown terms) — the MaxScore upper-bound ingredient.
    pub fn max_tf(&self, term: TermId) -> u32 {
        self.max_tfs.get(term.index()).copied().unwrap_or(0)
    }

    /// Length of the shortest *non-empty* document (0 when the collection
    /// is empty or all-empty).
    pub fn min_doc_len(&self) -> u32 {
        self.min_doc_len
    }

    /// Total compressed size of all postings, in bytes.
    pub fn postings_byte_size(&self) -> usize {
        self.postings.iter().map(|p| p.byte_size()).sum()
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::IndexBuilder;
    use crate::document::Document;

    fn tiny_index() -> super::InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u0", "apple", "apple apple banana"));
        b.add(Document::new(1, "u1", "banana", "banana cherry"));
        b.add(Document::new(2, "u2", "", "cherry cherry cherry"));
        b.build()
    }

    #[test]
    fn collection_stats() {
        let idx = tiny_index();
        let s = idx.stats();
        assert_eq!(s.num_docs, 3);
        // doc0: apple apple apple banana (title+body) = 4 tokens,
        // doc1: banana banana cherry = 3, doc2: cherry x3 = 3.
        assert_eq!(s.num_tokens, 10);
        assert!((s.avg_doc_len - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn term_stats_and_postings() {
        let idx = tiny_index();
        let apple = idx.vocab().id("appl").expect("stemmed apple");
        let ts = idx.term_stats(apple).unwrap();
        assert_eq!(ts.doc_freq, 1);
        assert_eq!(ts.coll_freq, 3);
        let postings: Vec<_> = idx.postings(apple).unwrap().iter().collect();
        assert_eq!(postings.len(), 1);
        assert_eq!(postings[0].tf, 3);
    }

    #[test]
    fn doc_lengths() {
        let idx = tiny_index();
        assert_eq!(idx.doc_len(crate::DocId(0)), Some(4));
        assert_eq!(idx.doc_len(crate::DocId(2)), Some(3));
        assert_eq!(idx.doc_len(crate::DocId(9)), None);
    }

    #[test]
    fn analyze_query_drops_unknown_terms() {
        let idx = tiny_index();
        assert_eq!(idx.analyze_query("apple zeppelin").len(), 1);
        assert!(idx.analyze_query("zeppelin").is_empty());
    }
}
