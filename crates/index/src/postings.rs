//! Compressed postings lists.
//!
//! A postings list stores, for one term, the sequence of `(doc id, term
//! frequency)` pairs in increasing doc-id order. Doc ids are delta-encoded
//! and both deltas and frequencies are LEB128-varint encoded into a single
//! byte buffer ([`bytes::Bytes`]), the standard layout of disk-resident
//! search indexes. Decoding is streaming — no intermediate allocation.

use crate::document::DocId;
use bytes::{BufMut, Bytes, BytesMut};

/// One `(document, term frequency)` entry of a postings list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The document containing the term.
    pub doc: DocId,
    /// Number of occurrences of the term in the document.
    pub tf: u32,
}

/// Append `v` as a LEB128 varint.
fn put_varint(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode a LEB128 varint starting at `pos`, returning `(value, new_pos)`.
fn get_varint(data: &[u8], mut pos: usize) -> (u32, usize) {
    let mut value: u32 = 0;
    let mut shift = 0;
    loop {
        let byte = data[pos];
        pos += 1;
        value |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return (value, pos);
        }
        shift += 7;
        debug_assert!(shift < 35, "varint too long");
    }
}

/// Incremental encoder for one term's postings.
#[derive(Debug, Default)]
pub struct PostingsBuilder {
    buf: BytesMut,
    last_doc: Option<u32>,
    len: u32,
}

impl PostingsBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a posting. Documents must arrive in strictly increasing
    /// doc-id order and `tf` must be ≥ 1.
    ///
    /// # Panics
    /// Panics on out-of-order doc ids or zero frequency.
    pub fn push(&mut self, doc: DocId, tf: u32) {
        assert!(tf >= 1, "term frequency must be positive");
        let delta = match self.last_doc {
            None => doc.0,
            Some(last) => {
                assert!(doc.0 > last, "postings must be in increasing doc order");
                doc.0 - last
            }
        };
        self.last_doc = Some(doc.0);
        put_varint(&mut self.buf, delta);
        put_varint(&mut self.buf, tf);
        self.len += 1;
    }

    /// Finish encoding, producing an immutable [`PostingsList`].
    pub fn build(self) -> PostingsList {
        PostingsList {
            data: self.buf.freeze(),
            len: self.len,
        }
    }
}

/// Immutable compressed postings list for one term.
#[derive(Debug, Clone, Default)]
pub struct PostingsList {
    data: Bytes,
    len: u32,
}

impl PostingsList {
    /// Number of postings (the term's document frequency).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no document contains the term.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes of the compressed representation.
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// The raw compressed byte payload (for persistence).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Rebuild a list from a raw payload produced by [`PostingsBuilder`]
    /// (e.g. read back from disk) and its posting count.
    pub fn from_raw(data: Bytes, len: u32) -> Self {
        PostingsList { data, len }
    }

    /// Streaming decoder over the postings.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            data: &self.data,
            pos: 0,
            remaining: self.len,
            last_doc: 0,
            first: true,
        }
    }
}

/// Streaming decoder returned by [`PostingsList::iter`].
#[derive(Debug)]
pub struct PostingsIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
    last_doc: u32,
    first: bool,
}

impl Iterator for PostingsIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        let (delta, pos) = get_varint(self.data, self.pos);
        let (tf, pos) = get_varint(self.data, pos);
        self.pos = pos;
        self.last_doc = if self.first {
            self.first = false;
            delta
        } else {
            self.last_doc + delta
        };
        self.remaining -= 1;
        Some(Posting {
            doc: DocId(self.last_doc),
            tf,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entries: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut b = PostingsBuilder::new();
        for &(doc, tf) in entries {
            b.push(DocId(doc), tf);
        }
        b.build().iter().map(|p| (p.doc.0, p.tf)).collect()
    }

    #[test]
    fn empty_list() {
        let list = PostingsBuilder::new().build();
        assert!(list.is_empty());
        assert_eq!(list.iter().count(), 0);
    }

    #[test]
    fn simple_roundtrip() {
        let entries = vec![(0, 1), (1, 3), (7, 2), (1000, 1)];
        assert_eq!(roundtrip(&entries), entries);
    }

    #[test]
    fn first_doc_nonzero() {
        let entries = vec![(42, 9)];
        assert_eq!(roundtrip(&entries), entries);
    }

    #[test]
    fn large_values() {
        let entries = vec![(0, 1), (u32::MAX - 1, 300_000)];
        assert_eq!(roundtrip(&entries), entries);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn out_of_order_panics() {
        let mut b = PostingsBuilder::new();
        b.push(DocId(5), 1);
        b.push(DocId(5), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tf_panics() {
        let mut b = PostingsBuilder::new();
        b.push(DocId(0), 0);
    }

    #[test]
    fn compression_beats_naive_for_dense_lists() {
        let mut b = PostingsBuilder::new();
        for doc in 0..10_000u32 {
            b.push(DocId(doc), 1);
        }
        let list = b.build();
        // Naive layout would use 8 bytes per posting; dense deltas with
        // small tfs take 2 bytes.
        assert!(list.byte_size() <= 2 * 10_000);
        assert_eq!(list.len(), 10_000);
    }

    #[test]
    fn exact_size_iterator() {
        let mut b = PostingsBuilder::new();
        b.push(DocId(1), 1);
        b.push(DocId(2), 1);
        let list = b.build();
        let mut it = list.iter();
        assert_eq!(it.len(), 2);
        it.next();
        assert_eq!(it.len(), 1);
    }
}
