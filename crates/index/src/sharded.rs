//! Deploy-time document partitioning with scatter-gather retrieval.
//!
//! Horizontal partitioning is the standard route to serving large
//! collections "as fast as the hardware allows": split the documents into
//! `N` shards, score every shard in parallel, and merge the per-shard
//! top-`k` lists. [`ShardedIndex`] implements that over an existing
//! [`InvertedIndex`] without re-analyzing anything — at build time each
//! term's postings are split into per-shard compressed lists covering
//! contiguous global doc-id ranges, while the vocabulary, the document
//! store, the per-document lengths and (crucially) the **collection-wide
//! statistics stay global and shared**.
//!
//! # Bit-identical ranking
//!
//! Scoring a document only reads global quantities — its own length, the
//! term's global [`TermStats`](crate::index::TermStats) and the global
//! [`CollectionStats`](crate::index::CollectionStats) — so a document's
//! score is the same no matter which shard scores it. Both the unsharded
//! [`SearchEngine`](crate::search::SearchEngine) and the per-shard scorers
//! accumulate query terms in ascending term-id order
//! ([`query_weights`]), so even the floating-point summation order is
//! identical. The scatter-gather merge is a k-way heap merge ordered by
//! `(score desc, doc id asc)` — the same total order as the unsharded
//! bounded-heap selection — which makes the final ranking **bit-identical**
//! to the single-shard result for every shard count (asserted by the
//! `sharded_equivalence` suite for shard counts 1/2/4/7).

use crate::document::DocId;
use crate::dph::Dph;
use crate::executor::ScoringExecutor;
use crate::index::{InvertedIndex, StatsOverlay};
use crate::postings::{PostingsBuilder, PostingsList};
use crate::retriever::{Retrieval, Retriever};
use crate::search::{accumulate_term_contributions, query_weights, top_k, RankingModel, ScoredDoc};
use serpdiv_text::TermId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

/// One document partition: the shard-local slice of every term's postings.
#[derive(Debug)]
struct Shard {
    /// Indexed by [`TermId`]; list `t` holds exactly the postings of term
    /// `t` whose doc ids fall in this shard's range.
    postings: Vec<PostingsList>,
    /// First global doc id of this shard's contiguous range.
    base: u32,
    /// Number of doc ids in the range (the last shard may cover fewer
    /// real documents).
    len: usize,
}

/// Largest shard doc-range for which scoring uses a dense accumulator
/// array instead of a hash map (512 KiB of `f64` per scoring pass). A
/// *contiguous* shard range is what makes the dense form affordable — the
/// per-query array is `N/num_shards` slots, not `N` — and it removes all
/// per-posting hashing from the hot loop.
const DENSE_ACCUMULATOR_LIMIT: usize = 1 << 16;

/// How the scatter step schedules shard scoring — the production
/// heuristic plus the forced modes the equivalence suites use to pit the
/// executor path against the sequential and scoped-thread oracles on
/// identical inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterMode {
    /// Production policy: sequential below the postings threshold; above
    /// it, the attached [`ScoringExecutor`] when one is present,
    /// otherwise per-query scoped threads (when more than one worker is
    /// available).
    Auto,
    /// Force shard-after-shard scoring on the calling thread.
    Sequential,
    /// Force the per-query scoped-thread path (the pre-executor parallel
    /// implementation, kept as an oracle).
    ScopedThreads,
    /// Force batch submission through the attached executor; panics if
    /// none was attached via [`ShardedIndex::with_executor`].
    Executor,
}

/// A horizontally partitioned view of an [`InvertedIndex`] with parallel
/// scatter-gather retrieval.
///
/// Built once at deploy time; immutable and `Sync` afterwards, so one
/// instance serves arbitrary concurrency. Large queries are scored shard-
/// parallel — through the shared persistent [`ScoringExecutor`] when one
/// is attached ([`Self::with_executor`]), through per-query scoped
/// threads otherwise.
pub struct ShardedIndex {
    index: Arc<InvertedIndex>,
    shards: Vec<Shard>,
    /// Documents per shard: shard of `doc` = `doc.index() / chunk`.
    chunk: usize,
    /// Minimum estimated matching postings before a query is worth
    /// scoring in parallel (see [`Self::with_parallel_threshold`]).
    parallel_threshold: u64,
    /// Scoped-thread scatter worker cap, resolved at build time (one per
    /// hardware thread by default); superseded by the executor's pool
    /// size when one is attached.
    scoring_workers: usize,
    /// Largest shard range scored with the dense accumulator.
    dense_limit: usize,
    /// The shared persistent scoring pool, when deployed with one.
    executor: Option<Arc<ScoringExecutor>>,
    /// Test instrumentation: called with the shard number right before
    /// each shard is scored (see [`Self::with_fault_injection`]).
    fault_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.shards.len())
            .field("chunk", &self.chunk)
            .field("parallel_threshold", &self.parallel_threshold)
            .field("scoring_workers", &self.scoring_workers)
            .field("dense_limit", &self.dense_limit)
            .field("executor", &self.executor)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| ".."))
            .finish()
    }
}

impl ShardedIndex {
    /// Partition `index` into `num_shards` contiguous doc-id ranges,
    /// scored with the paper's DPH model (`num_shards` is clamped to at
    /// least 1; shards beyond the document count stay empty and cost
    /// nothing at query time).
    pub fn build(index: Arc<InvertedIndex>, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let num_docs = index.stats().num_docs as usize;
        let chunk = num_docs.div_ceil(num_shards).max(1);
        let num_terms = index.num_terms();
        let mut shard_postings: Vec<Vec<PostingsList>> = (0..num_shards)
            .map(|_| Vec::with_capacity(num_terms))
            .collect();
        // Global postings are in increasing doc order, so each shard's
        // slice arrives in increasing order too and re-compresses cleanly.
        let mut builders: Vec<PostingsBuilder> = Vec::new();
        for t in 0..num_terms {
            builders.clear();
            builders.resize_with(num_shards, PostingsBuilder::new);
            if let Some(postings) = index.postings(TermId(t as u32)) {
                for p in postings.iter() {
                    builders[(p.doc.index() / chunk).min(num_shards - 1)].push(p.doc, p.tf);
                }
            }
            for (s, b) in builders.drain(..).enumerate() {
                shard_postings[s].push(b.build());
            }
        }
        ShardedIndex {
            index,
            shards: shard_postings
                .into_iter()
                .enumerate()
                .map(|(s, postings)| {
                    let base = (s * chunk) as u32;
                    Shard {
                        postings,
                        base,
                        len: num_docs.saturating_sub(s * chunk).min(chunk),
                    }
                })
                .collect(),
            chunk,
            parallel_threshold: 16_384,
            // Resolved once: available_parallelism is a syscall, far too
            // expensive for the per-query path.
            scoring_workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
            dense_limit: DENSE_ACCUMULATOR_LIMIT,
            executor: None,
            fault_hook: None,
        }
    }

    /// Attach a shared, long-lived [`ScoringExecutor`]: parallel scatter
    /// submits its shard tasks to the pool as one latched batch instead
    /// of spawning scoped threads per query.
    ///
    /// This also **overrides the build-time `available_parallelism`
    /// worker resolution coherently**: the parallel path now occupies the
    /// executor's threads (plus the submitting thread, which helps drain
    /// only its own batch while it would otherwise block), so a serving
    /// deployment that sizes the executor once bounds scoring threads at
    /// `request_workers + executor_threads` process-wide — not a silent
    /// `request_workers × cores` oversubscription of per-query spawns.
    /// [`Self::effective_scoring_workers`] reports the resolved count.
    pub fn with_executor(mut self, executor: Arc<ScoringExecutor>) -> Self {
        self.scoring_workers = executor.num_threads();
        self.executor = Some(executor);
        self
    }

    /// The attached persistent scoring pool, if any.
    pub fn executor(&self) -> Option<&Arc<ScoringExecutor>> {
        self.executor.as_ref()
    }

    /// Test instrumentation: run `hook(shard)` immediately before each
    /// shard-scoring task. A hook that panics exercises the executor's
    /// panic containment through the full retrieval path — the panic is
    /// re-raised on the *querying* thread, and the pool stays healthy for
    /// the next query (see the fault-containment tests).
    pub fn with_fault_injection(mut self, hook: impl Fn(usize) + Send + Sync + 'static) -> Self {
        self.fault_hook = Some(Arc::new(hook));
        self
    }

    /// The number of scoring threads the parallel scatter path can
    /// occupy: the shared executor's pool size when one is attached
    /// (whatever `available_parallelism` said at build time — and
    /// whatever [`Self::with_scoring_workers`] set — no longer applies),
    /// otherwise the scoped-thread worker cap bounded by the shard count.
    pub fn effective_scoring_workers(&self) -> usize {
        match &self.executor {
            Some(executor) => executor.num_threads(),
            None => self.scoring_workers.min(self.shards.len().max(1)),
        }
    }

    /// Override the dense-accumulator cutoff (default
    /// [`DENSE_ACCUMULATOR_LIMIT`]): shards whose doc range exceeds it are
    /// scored with the hash-map fallback. `0` forces the sparse form
    /// everywhere. The ranking is identical either way.
    pub fn with_dense_accumulator_limit(mut self, limit: usize) -> Self {
        self.dense_limit = limit;
        self
    }

    /// Override the **scoped-thread** scatter worker count (default: one
    /// per hardware thread, capped at the shard count). Useful when the
    /// process runs under a CPU quota the runtime cannot see, or to force
    /// the scoped parallel path in tests. Irrelevant once an executor is
    /// attached — [`Self::with_executor`] supersedes it.
    pub fn with_scoring_workers(mut self, workers: usize) -> Self {
        self.scoring_workers = workers.max(1);
        self
    }

    /// Tune when scatter scoring goes parallel: queries whose estimated
    /// matching-postings count (Σ document frequency over query terms)
    /// falls below `threshold` are scored shard-after-shard on the calling
    /// thread — for small collections or selective queries, per-request
    /// thread hand-off costs more than the scoring it saves. `0` forces
    /// parallel scoring whenever more than one hardware thread is
    /// available; `u64::MAX` forces sequential. The ranking is identical
    /// either way.
    ///
    /// With a [`ScoringExecutor`] attached the parallel path is a batch
    /// submission to the shared pool (no spawn), so the threshold only
    /// has to beat the queue hand-off; without one it spawns scoped
    /// threads per query, and under a serving pool that already saturates
    /// every core the threshold should stay high enough that only queries
    /// whose traversal dwarfs thread start-up go parallel.
    pub fn with_parallel_threshold(mut self, threshold: u64) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// The shared underlying index (global statistics, vocabulary,
    /// document store).
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// Number of document partitions.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Documents assigned to each shard (the last shard may hold fewer).
    pub fn docs_per_shard(&self) -> usize {
        self.chunk
    }

    /// Total compressed size of the partitioned postings, in bytes
    /// (compare with [`InvertedIndex::postings_byte_size`]; partitioning
    /// costs a few bytes of delta-restart overhead per shard boundary).
    pub fn postings_byte_size(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.postings.iter())
            .map(|p| p.byte_size())
            .sum()
    }

    /// Score one shard: term-at-a-time accumulation over the shard-local
    /// postings with **global** statistics, in the canonical ascending
    /// term order — bit-identical per-document scores to the unsharded
    /// engine — then the shard-local top `k`.
    ///
    /// Accumulation is dense (an `f64` array plus a touched bitmap over
    /// the shard's contiguous doc range — zero hashing in the hot loop)
    /// whenever the range fits [`DENSE_ACCUMULATOR_LIMIT`]; giant shards
    /// fall back to the hash-map form. Both accumulate each document's
    /// term contributions in the same order, so scores are bit-identical.
    fn score_shard(
        &self,
        shard: &Shard,
        weights: &[(TermId, u32)],
        model: &(dyn RankingModel + Send + Sync),
        k: usize,
        overlay: Option<&StatsOverlay>,
    ) -> Vec<ScoredDoc> {
        if shard.len <= self.dense_limit {
            self.score_shard_dense(shard, weights, model, k, overlay)
        } else {
            self.score_shard_sparse(shard, weights, model, k, overlay)
        }
    }

    /// Dense accumulation over the shard's contiguous doc-id range (see
    /// [`score_range_dense`], which also serves the fleet's out-of-process
    /// [`ShardArtifact`](crate::artifact::ShardArtifact) scorer).
    fn score_shard_dense(
        &self,
        shard: &Shard,
        weights: &[(TermId, u32)],
        model: &(dyn RankingModel + Send + Sync),
        k: usize,
        overlay: Option<&StatsOverlay>,
    ) -> Vec<ScoredDoc> {
        score_range_dense(
            &ShardView {
                index: &self.index,
                shard,
                overlay,
            },
            weights,
            model,
            k,
        )
    }

    /// Hash-map accumulation for shards whose doc range is too large for
    /// a per-query dense array.
    fn score_shard_sparse(
        &self,
        shard: &Shard,
        weights: &[(TermId, u32)],
        model: &(dyn RankingModel + Send + Sync),
        k: usize,
        overlay: Option<&StatsOverlay>,
    ) -> Vec<ScoredDoc> {
        score_range_sparse(
            &ShardView {
                index: &self.index,
                shard,
                overlay,
            },
            weights,
            model,
            k,
        )
    }

    /// Serialize shard `s` into a standalone artifact a fleet worker
    /// process can boot from: the shard-local postings slice plus every
    /// **global** statistic scoring reads (collection stats, per-term
    /// stats, the range's document lengths), so the worker's scores are
    /// bit-identical to scoring the same shard in-process. Decoded by
    /// [`ShardArtifact::from_bytes`](crate::artifact::ShardArtifact).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn export_shard(&self, s: usize) -> Vec<u8> {
        let shard = &self.shards[s];
        crate::artifact::encode_shard(
            &self.index,
            s as u32,
            self.shards.len() as u32,
            shard.base,
            shard.len,
            &shard.postings,
        )
    }

    /// Run the fault-injection hook for `shard`, if one is installed.
    #[inline]
    fn fault(&self, shard: usize) {
        if let Some(hook) = &self.fault_hook {
            hook(shard);
        }
    }

    /// Scatter: score every shard — through the persistent executor, the
    /// scoped-thread oracle, or inline, per `mode` — then gather: k-way
    /// merge of the per-shard top-`k` lists. Every mode produces the same
    /// `f64` bits in the same order. When an `overlay` is given, every
    /// shard scores against its statistics (the NRT union contract)
    /// instead of the shared index's own.
    fn scatter_gather(
        &self,
        terms: &[TermId],
        k: usize,
        mode: ScatterMode,
        overlay: Option<&StatsOverlay>,
    ) -> Vec<ScoredDoc> {
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let weights = query_weights(terms);
        let model = Dph::new();
        let mode = match mode {
            ScatterMode::Auto => {
                // Estimated matching postings: Σ doc_freq over the terms.
                let estimated: u64 = weights
                    .iter()
                    .filter_map(|&(t, _)| self.index.term_stats(t))
                    .map(|ts| ts.doc_freq)
                    .sum();
                if self.shards.len() <= 1 || estimated < self.parallel_threshold {
                    // Sequential scatter: no hand-off at all — the right
                    // call when the postings traversal is cheaper than
                    // reaching another thread.
                    ScatterMode::Sequential
                } else if self.executor.is_some() {
                    ScatterMode::Executor
                } else if self.scoring_workers.min(self.shards.len()) > 1 {
                    ScatterMode::ScopedThreads
                } else {
                    ScatterMode::Sequential
                }
            }
            forced => forced,
        };
        let per_shard: Vec<Vec<ScoredDoc>> = match mode {
            ScatterMode::Sequential => self
                .shards
                .iter()
                .enumerate()
                .map(|(s, shard)| {
                    self.fault(s);
                    self.score_shard(shard, &weights, &model, k, overlay)
                })
                .collect(),
            ScatterMode::Executor => {
                let executor = self
                    .executor
                    .as_ref()
                    .expect("ScatterMode::Executor requires with_executor");
                // One latched batch, one shard-scoring task per shard; the
                // pool's pinned workers (and this thread, which helps)
                // reuse their thread-local scratch — nothing is spawned.
                match executor.scope_run(self.shards.len(), &|s| {
                    self.fault(s);
                    self.score_shard(&self.shards[s], &weights, &model, k, overlay)
                }) {
                    Ok(per_shard) => per_shard,
                    // A panicked task poisons only this query: re-raise on
                    // the querying thread; the pool keeps serving others.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            ScatterMode::ScopedThreads => {
                let workers = self.scoring_workers.min(self.shards.len()).max(1);
                let next = AtomicUsize::new(0);
                let mut gathered: Vec<(usize, Vec<ScoredDoc>)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            let (next, weights, model) = (&next, &weights, &model);
                            scope.spawn(move || {
                                let mut mine = Vec::new();
                                loop {
                                    let s = next.fetch_add(1, AtomicOrdering::Relaxed);
                                    let Some(shard) = self.shards.get(s) else {
                                        break;
                                    };
                                    self.fault(s);
                                    mine.push((
                                        s,
                                        self.score_shard(shard, weights, model, k, overlay),
                                    ));
                                }
                                mine
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("shard scoring worker panicked"))
                        .collect()
                });
                gathered.sort_unstable_by_key(|&(s, _)| s);
                gathered.into_iter().map(|(_, hits)| hits).collect()
            }
            ScatterMode::Auto => unreachable!("Auto was resolved above"),
        };
        merge_top_k(per_shard, k)
    }

    /// Retrieval with an explicit [`ScatterMode`] — the test hook the
    /// `executor_equivalence` suite uses to pit the executor path against
    /// the sequential and scoped-thread oracles on identical inputs.
    pub fn retrieve_terms_with_mode(
        &self,
        terms: &[TermId],
        k: usize,
        mode: ScatterMode,
    ) -> Vec<ScoredDoc> {
        self.scatter_gather(terms, k, mode, None)
    }
}

impl Retriever for ShardedIndex {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        let terms = self.index.analyze_query(query);
        self.scatter_gather(&terms, k, ScatterMode::Auto, None)
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        self.scatter_gather(terms, k, ScatterMode::Auto, None)
    }

    fn retrieve_terms_overlaid(
        &self,
        terms: &[TermId],
        k: usize,
        overlay: &StatsOverlay,
    ) -> Retrieval {
        Retrieval::complete(self.scatter_gather(terms, k, ScatterMode::Auto, Some(overlay)))
    }
}

/// What a contiguous-doc-range scoring pass reads: the range's postings
/// slice plus the **global** statistics that make a document's score
/// independent of where it is scored. Implemented by the in-process
/// [`ShardedIndex`] shard view and by the fleet's out-of-process
/// [`ShardArtifact`](crate::artifact::ShardArtifact), so both score
/// through the same [`score_range_dense`]/[`score_range_sparse`] code and
/// stay bit-identical.
pub(crate) trait RangeSource {
    /// Global collection statistics.
    fn coll(&self) -> crate::index::CollectionStats;
    /// Global per-term statistics.
    fn term_stats(&self, t: TermId) -> Option<crate::index::TermStats>;
    /// The range-local postings of term `t`.
    fn range_postings(&self, t: TermId) -> Option<&PostingsList>;
    /// Global length of `doc` (which lies inside this range).
    fn doc_len(&self, doc: DocId) -> u32;
    /// First global doc id of the contiguous range.
    fn base(&self) -> u32;
    /// Number of doc ids in the range.
    fn range_len(&self) -> usize;
}

/// [`RangeSource`] over one in-process shard: postings from the shard,
/// every statistic from the shared global index — or, under the NRT
/// union contract, from the overlay first (with the index's own
/// statistics as the exact fallback for terms the overlay leaves alone).
struct ShardView<'a> {
    index: &'a InvertedIndex,
    shard: &'a Shard,
    overlay: Option<&'a StatsOverlay>,
}

impl RangeSource for ShardView<'_> {
    fn coll(&self) -> crate::index::CollectionStats {
        self.overlay
            .map_or_else(|| self.index.stats(), |o| o.coll())
    }

    fn term_stats(&self, t: TermId) -> Option<crate::index::TermStats> {
        self.overlay
            .and_then(|o| o.term_stats(t))
            .or_else(|| self.index.term_stats(t))
    }

    fn range_postings(&self, t: TermId) -> Option<&PostingsList> {
        self.shard.postings.get(t.index())
    }

    fn doc_len(&self, doc: DocId) -> u32 {
        self.index.doc_len(doc).unwrap_or(0)
    }

    fn base(&self) -> u32 {
        self.shard.base
    }

    fn range_len(&self) -> usize {
        self.shard.len
    }
}

/// Dense accumulation over a contiguous doc-id range.
///
/// The accumulator array and touched bitmap live in a thread-local
/// scratch that is cleaned (touched entries only) and reused across
/// ranges and requests — on the sequential path, on the persistent
/// executor's pinned workers, and in a fleet worker's connection loop,
/// steady-state scoring allocates nothing but the returned top-`k`. Only
/// the legacy scoped-thread path (kept as an oracle) still pays one
/// scratch allocation per worker per query, amortized against the large
/// traversals it is gated on.
pub(crate) fn score_range_dense<S: RangeSource>(
    src: &S,
    weights: &[(TermId, u32)],
    model: &(dyn RankingModel + Send + Sync),
    k: usize,
) -> Vec<ScoredDoc> {
    thread_local! {
        /// (accumulator, touched bitmap); invariant: all-zero between
        /// uses.
        static SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<u64>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }
    let (base, len) = (src.base(), src.range_len());
    SCRATCH.with(|cell| {
        let (acc, touched) = &mut *cell.borrow_mut();
        if acc.len() < len {
            acc.resize(len, 0.0);
        }
        let words = len.div_ceil(64);
        if touched.len() < words {
            touched.resize(words, 0);
        }
        // Score under `catch_unwind` so a panic mid-accumulation (a
        // faulting model, injected test faults) cannot leave dirty
        // slots behind on a long-lived worker: every dirty slot has
        // its touched bit set by the time anything can unwind, so the
        // cleanup below restores the invariant on both exits.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            accumulate_term_contributions(
                src.coll(),
                |t| src.term_stats(t),
                |t| src.range_postings(t),
                |doc| src.doc_len(doc),
                weights,
                model,
                |doc, s| {
                    let i = doc.index() - base as usize;
                    acc[i] += s;
                    touched[i / 64] |= 1 << (i % 64);
                },
            );
            top_k(
                touched[..words].iter().enumerate().flat_map(|(w, &bits)| {
                    let acc = &*acc;
                    let mut bits = bits;
                    std::iter::from_fn(move || {
                        if bits == 0 {
                            return None;
                        }
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let i = w * 64 + b;
                        Some(ScoredDoc {
                            doc: DocId(base + i as u32),
                            score: acc[i],
                        })
                    })
                }),
                k,
            )
        }));
        // Restore the all-zero invariant, touching only dirty slots.
        for w in 0..words {
            let mut bits = touched[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                acc[w * 64 + b] = 0.0;
            }
            touched[w] = 0;
        }
        match result {
            Ok(hits) => hits,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Hash-map accumulation for ranges too large for a per-query dense
/// array.
pub(crate) fn score_range_sparse<S: RangeSource>(
    src: &S,
    weights: &[(TermId, u32)],
    model: &(dyn RankingModel + Send + Sync),
    k: usize,
) -> Vec<ScoredDoc> {
    let mut acc: HashMap<DocId, f64> = HashMap::new();
    accumulate_term_contributions(
        src.coll(),
        |t| src.term_stats(t),
        |t| src.range_postings(t),
        |doc| src.doc_len(doc),
        weights,
        model,
        |doc, s| *acc.entry(doc).or_insert(0.0) += s,
    );
    top_k(
        acc.into_iter().map(|(doc, score)| ScoredDoc { doc, score }),
        k,
    )
}

/// Head of one per-shard list inside the gather heap, ordered so the
/// max-heap pops by `(score desc, doc id asc)` — the exact total order of
/// [`top_k`].
struct MergeEntry {
    score: f64,
    doc: DocId,
    list: usize,
    pos: usize,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeEntry {}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Gather step: k-way merge of per-shard rankings (each already sorted by
/// `(score desc, doc asc)`) into the global top `k` in the same order.
/// Each shard holds its global-top-k members in its local top-k, so
/// merging the heads is exhaustive.
///
/// Public because it is **the** gather: the fleet router merges per-shard
/// responses from worker processes through this exact function, which is
/// what keeps multi-process pages bit-identical to in-process ones (a
/// partial gather over the shards that answered is still this merge,
/// just over fewer lists).
pub fn merge_top_k(lists: Vec<Vec<ScoredDoc>>, k: usize) -> Vec<ScoredDoc> {
    let mut heap: BinaryHeap<MergeEntry> = lists
        .iter()
        .enumerate()
        .filter_map(|(list, hits)| {
            hits.first().map(|h| MergeEntry {
                score: h.score,
                doc: h.doc,
                list,
                pos: 0,
            })
        })
        .collect();
    let mut out = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(ScoredDoc {
            doc: head.doc,
            score: head.score,
        });
        if let Some(next) = lists[head.list].get(head.pos + 1) {
            heap.push(MergeEntry {
                score: next.score,
                doc: next.doc,
                list: head.list,
                pos: head.pos + 1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::document::Document;
    use crate::search::SearchEngine;

    /// 30 docs over a small shared vocabulary, including exact duplicates
    /// (score ties) spread across shard boundaries.
    fn index() -> Arc<InvertedIndex> {
        let texts = [
            "apple iphone smartphone chip",
            "apple fruit orchard sweet",
            "apple pie cinnamon recipe",
            "weather storm rain wind",
            "apple iphone smartphone chip", // duplicate of 0 → tie
        ];
        let mut b = IndexBuilder::new();
        for i in 0..30u32 {
            b.add(Document::new(
                i,
                format!("http://d/{i}"),
                "",
                texts[i as usize % texts.len()],
            ));
        }
        Arc::new(b.build())
    }

    #[test]
    fn matches_unsharded_oracle_exactly() {
        let idx = index();
        let oracle = SearchEngine::new(&idx);
        for shards in [1, 2, 4, 7, 30, 64] {
            let sharded = ShardedIndex::build(idx.clone(), shards);
            for query in ["apple", "apple iphone", "weather storm", "apple apple pie"] {
                for k in [1, 3, 10, 100] {
                    let expect = oracle.search(query, k);
                    let got = sharded.retrieve(query, k);
                    assert_eq!(expect.len(), got.len(), "{query} k={k} shards={shards}");
                    for (e, g) in expect.iter().zip(&got) {
                        assert_eq!(e.doc, g.doc, "{query} k={k} shards={shards}");
                        assert_eq!(
                            e.score.to_bits(),
                            g.score.to_bits(),
                            "{query} k={k} shards={shards}: {} vs {}",
                            e.score,
                            g.score
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let idx = index();
        let sharded = ShardedIndex::build(idx, 4);
        assert!(sharded.retrieve("", 10).is_empty());
        assert!(sharded.retrieve("apple", 0).is_empty());
        assert!(sharded.retrieve("zeppelin", 10).is_empty());
        assert_eq!(sharded.num_shards(), 4);
    }

    #[test]
    fn sparse_fallback_is_bit_identical_to_dense() {
        let idx = index();
        let dense = ShardedIndex::build(idx.clone(), 3);
        let sparse = ShardedIndex::build(idx.clone(), 3).with_dense_accumulator_limit(0);
        let oracle = SearchEngine::new(&idx);
        for query in ["apple", "apple iphone chip", "weather storm rain"] {
            let expect = oracle.search(query, 12);
            for (label, got) in [
                ("dense", dense.retrieve(query, 12)),
                ("sparse", sparse.retrieve(query, 12)),
            ] {
                assert_eq!(expect.len(), got.len(), "{label} {query}");
                for (e, g) in expect.iter().zip(&got) {
                    assert_eq!(e.doc, g.doc, "{label} {query}");
                    assert_eq!(e.score.to_bits(), g.score.to_bits(), "{label} {query}");
                }
            }
        }
    }

    #[test]
    fn forced_parallel_path_is_still_bit_identical() {
        let idx = index();
        let oracle = SearchEngine::new(&idx);
        // Force the scoped-thread scatter path regardless of the host's
        // core count or the query's size.
        let sharded = ShardedIndex::build(idx.clone(), 4)
            .with_scoring_workers(3)
            .with_parallel_threshold(0);
        for query in ["apple", "apple iphone smartphone", "storm"] {
            let expect = oracle.search(query, 10);
            let got = sharded.retrieve(query, 10);
            assert_eq!(expect.len(), got.len(), "{query}");
            for (e, g) in expect.iter().zip(&got) {
                assert_eq!(e.doc, g.doc, "{query}");
                assert_eq!(e.score.to_bits(), g.score.to_bits(), "{query}");
            }
        }
    }

    #[test]
    fn executor_path_is_bit_identical_to_oracle() {
        let idx = index();
        let oracle = SearchEngine::new(&idx);
        let executor = Arc::new(ScoringExecutor::new(2));
        // Threshold 0: every query goes through the executor batch path.
        let sharded = ShardedIndex::build(idx.clone(), 4)
            .with_executor(executor)
            .with_parallel_threshold(0);
        for query in [
            "apple",
            "apple iphone smartphone",
            "storm",
            "apple apple pie",
        ] {
            let expect = oracle.search(query, 10);
            let got = sharded.retrieve(query, 10);
            assert_eq!(expect.len(), got.len(), "{query}");
            for (e, g) in expect.iter().zip(&got) {
                assert_eq!(e.doc, g.doc, "{query}");
                assert_eq!(e.score.to_bits(), g.score.to_bits(), "{query}");
            }
        }
    }

    #[test]
    fn executor_overrides_worker_count_coherently() {
        let idx = index();
        // No executor: the build-time resolution applies, capped at the
        // shard count; with_scoring_workers overrides it.
        let plain = ShardedIndex::build(idx.clone(), 4).with_scoring_workers(6);
        assert_eq!(plain.effective_scoring_workers(), 4, "capped at shards");
        let narrow = ShardedIndex::build(idx.clone(), 4).with_scoring_workers(2);
        assert_eq!(narrow.effective_scoring_workers(), 2);
        // With an executor: the pool size wins — even over an earlier
        // with_scoring_workers — so a deployment sizing the executor gets
        // exactly that many scoring threads, not a silent 2×.
        let executor = Arc::new(ScoringExecutor::new(3));
        let pooled = ShardedIndex::build(idx.clone(), 4)
            .with_scoring_workers(16)
            .with_executor(executor.clone());
        assert_eq!(pooled.effective_scoring_workers(), 3);
        assert!(pooled.executor().is_some());
        // The shared pool is not capped per index: a 2-shard index on the
        // same executor still reports the pool size.
        let small = ShardedIndex::build(idx, 2).with_executor(executor);
        assert_eq!(small.effective_scoring_workers(), 3);
    }

    #[test]
    fn injected_fault_poisons_one_query_not_the_pool() {
        use std::sync::atomic::AtomicBool;
        let idx = index();
        let oracle = SearchEngine::new(&idx);
        let executor = Arc::new(ScoringExecutor::new(1));
        let arm = Arc::new(AtomicBool::new(true));
        let hook_arm = arm.clone();
        let sharded = ShardedIndex::build(idx.clone(), 4)
            .with_executor(executor)
            .with_parallel_threshold(0)
            .with_fault_injection(move |shard| {
                if shard == 2 && hook_arm.load(AtomicOrdering::Relaxed) {
                    panic!("injected fault in shard {shard}");
                }
            });
        // First query: the fault fires inside the executor and must
        // surface on *this* thread as a panic.
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sharded.retrieve("apple", 10)
        }));
        assert!(poisoned.is_err(), "the injected fault must surface");
        // Disarm and retry: the same executor worker serves the next
        // query with bit-identical results — the pool is not wedged.
        // (The hook fires before scoring dirties any scratch; the
        // mid-accumulation unwind case is covered by
        // `mid_accumulation_panic_leaves_the_dense_scratch_clean`.)
        arm.store(false, AtomicOrdering::Relaxed);
        let expect = oracle.search("apple", 10);
        let got = sharded.retrieve("apple", 10);
        assert_eq!(expect.len(), got.len());
        for (e, g) in expect.iter().zip(&got) {
            assert_eq!(e.doc, g.doc);
            assert_eq!(e.score.to_bits(), g.score.to_bits());
        }
    }

    #[test]
    fn mid_accumulation_panic_leaves_the_dense_scratch_clean() {
        use crate::index::{CollectionStats, TermStats};
        use std::sync::atomic::AtomicU32;

        /// DPH until the fuse burns down, then a panic *between* sink
        /// calls — i.e. after accumulator slots are already dirty.
        struct FusedModel {
            inner: Dph,
            fuse: AtomicU32,
        }
        impl RankingModel for FusedModel {
            fn score(&self, tf: u32, doc_len: u32, term: TermStats, coll: CollectionStats) -> f64 {
                if self.fuse.fetch_sub(1, AtomicOrdering::Relaxed) == 0 {
                    panic!("model fault mid-accumulation");
                }
                self.inner.score(tf, doc_len, term, coll)
            }
        }

        let idx = index();
        let sharded = ShardedIndex::build(idx.clone(), 1);
        let shard = &sharded.shards[0];
        let weights = query_weights(&idx.analyze_query("apple iphone chip"));
        // Sanity: the query touches enough postings that a fuse of 3
        // burns after some slots are dirty but before the pass finishes.
        let clean = sharded.score_shard_dense(shard, &weights, &Dph::new(), 30, None);
        assert!(clean.len() > 3);
        let faulty = FusedModel {
            inner: Dph::new(),
            fuse: AtomicU32::new(3),
        };
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sharded.score_shard_dense(shard, &weights, &faulty, 30, None)
        }));
        assert!(unwound.is_err(), "the fused model must panic mid-pass");
        // The unwind path must have restored the all-zero invariant on
        // this thread's scratch: an immediate re-score is bit-identical.
        let rescored = sharded.score_shard_dense(shard, &weights, &Dph::new(), 30, None);
        assert_eq!(clean.len(), rescored.len());
        for (a, b) in clean.iter().zip(&rescored) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let idx = index();
        let sharded = ShardedIndex::build(idx, 0);
        assert_eq!(sharded.num_shards(), 1);
        assert_eq!(sharded.retrieve("apple", 5).len(), 5);
    }

    #[test]
    fn empty_collection() {
        let idx = Arc::new(IndexBuilder::new().build());
        let sharded = ShardedIndex::build(idx, 3);
        assert!(sharded.retrieve("apple", 5).is_empty());
    }

    #[test]
    fn partition_covers_all_postings() {
        let idx = index();
        let sharded = ShardedIndex::build(idx.clone(), 4);
        // Every posting of every term lands in exactly one shard.
        for t in 0..idx.num_terms() {
            let term = TermId(t as u32);
            let global: Vec<_> = idx.postings(term).unwrap().iter().collect();
            let mut scattered: Vec<_> = sharded
                .shards
                .iter()
                .flat_map(|s| s.postings[term.index()].iter())
                .collect();
            scattered.sort_by_key(|p| p.doc);
            assert_eq!(global, scattered);
        }
    }

    #[test]
    fn merge_handles_ties_across_lists() {
        let d = |id, score| ScoredDoc {
            doc: DocId(id),
            score,
        };
        let merged = merge_top_k(vec![vec![d(3, 1.0), d(1, 0.5)], vec![d(2, 1.0)], vec![]], 3);
        assert_eq!(
            merged.iter().map(|h| h.doc.0).collect::<Vec<_>>(),
            vec![2, 3, 1],
            "equal scores must order by ascending doc id"
        );
    }
}
