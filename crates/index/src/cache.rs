//! A result cache in front of the search engine.
//!
//! §6 of the paper points at "a search architecture performing the
//! diversification task in parallel with the document scoring phase"; in
//! any such architecture the specialization result lists `R_q′` are served
//! from a cache (they are few, popular, and change slowly — §4.1). This
//! wrapper memoizes `(query, k)` → results behind a [`parking_lot::Mutex`]
//! so concurrent diversification workers share retrieval work.

use crate::search::{ScoredDoc, SearchEngine};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A memoizing wrapper around [`SearchEngine`]. Cheap to share by
/// reference across threads.
pub struct CachingEngine<'a> {
    engine: &'a SearchEngine<'a>,
    cache: Mutex<HashMap<(String, usize), Vec<ScoredDoc>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl<'a> CachingEngine<'a> {
    /// Wrap `engine` with an empty cache.
    pub fn new(engine: &'a SearchEngine<'a>) -> Self {
        CachingEngine {
            engine,
            cache: Mutex::new(HashMap::new()),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
        }
    }

    /// Top-`k` search, served from the cache when possible.
    pub fn search(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        let key = (query.to_string(), k);
        if let Some(hit) = self.cache.lock().get(&key) {
            *self.hits.lock() += 1;
            return hit.clone();
        }
        let results = self.engine.search(query, k);
        *self.misses.lock() += 1;
        self.cache.lock().insert(key, results.clone());
        results
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Number of cached `(query, k)` entries.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.lock().is_empty()
    }

    /// Drop every cached entry.
    pub fn clear(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::document::Document;

    fn engine_fixture() -> crate::index::InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u0", "", "apple banana"));
        b.add(Document::new(1, "u1", "", "apple cherry"));
        b.build()
    }

    #[test]
    fn cache_returns_identical_results() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let cached = CachingEngine::new(&engine);
        let a = cached.search("apple", 10);
        let b = cached.search("apple", 10);
        assert_eq!(a, b);
        assert_eq!(cached.stats(), (1, 1));
        assert_eq!(cached.len(), 1);
    }

    #[test]
    fn different_k_is_a_different_entry() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let cached = CachingEngine::new(&engine);
        cached.search("apple", 1);
        cached.search("apple", 2);
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats(), (0, 2));
    }

    #[test]
    fn clear_resets_entries() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let cached = CachingEngine::new(&engine);
        cached.search("apple", 5);
        assert!(!cached.is_empty());
        cached.clear();
        assert!(cached.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let cached = CachingEngine::new(&engine);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let r = cached.search("apple banana", 10);
                        assert!(!r.is_empty());
                    }
                });
            }
        });
        let (hits, misses) = cached.stats();
        assert_eq!(hits + misses, 200);
        assert!(misses >= 1);
    }
}
