//! Okapi BM25 — an alternative ranking model.
//!
//! The paper uses DPH; BM25 is provided as the standard comparison point for
//! ablations (the framework is model-agnostic: any [`RankingModel`] yields a
//! baseline ranking the diversifiers re-rank).

use crate::index::{CollectionStats, TermStats};
use crate::search::RankingModel;

/// Okapi BM25 with the usual `k1`/`b` parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    /// Term-frequency saturation (default 1.2).
    pub k1: f64,
    /// Length normalization (default 0.75).
    pub b: f64,
}

impl Default for Bm25 {
    fn default() -> Self {
        Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl Bm25 {
    /// BM25 with the conventional defaults `k1 = 1.2`, `b = 0.75`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RankingModel for Bm25 {
    fn score(&self, tf: u32, doc_len: u32, term: TermStats, coll: CollectionStats) -> f64 {
        if tf == 0 || term.doc_freq == 0 || coll.num_docs == 0 {
            return 0.0;
        }
        let n = coll.num_docs as f64;
        let df = term.doc_freq as f64;
        // Robertson-Spärck Jones idf with the +0.5 smoothing; never negative
        // thanks to the +1 inside the log.
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        let tf = f64::from(tf);
        let dl = f64::from(doc_len);
        let avg = if coll.avg_doc_len > 0.0 {
            coll.avg_doc_len
        } else {
            1.0
        };
        let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avg);
        idf * tf * (self.k1 + 1.0) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::RankingModel;

    fn coll() -> CollectionStats {
        CollectionStats {
            num_docs: 1_000,
            num_tokens: 100_000,
            avg_doc_len: 100.0,
        }
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let rare = TermStats {
            doc_freq: 2,
            coll_freq: 2,
        };
        let common = TermStats {
            doc_freq: 900,
            coll_freq: 5_000,
        };
        let m = Bm25::new();
        assert!(m.score(2, 100, rare, coll()) > m.score(2, 100, common, coll()));
    }

    #[test]
    fn tf_saturates() {
        let ts = TermStats {
            doc_freq: 10,
            coll_freq: 30,
        };
        let m = Bm25::new();
        let s1 = m.score(1, 100, ts, coll());
        let s2 = m.score(2, 100, ts, coll());
        let s20 = m.score(20, 100, ts, coll());
        let s40 = m.score(40, 100, ts, coll());
        assert!(s2 - s1 > s40 - s20, "marginal gain must shrink");
    }

    #[test]
    fn score_is_nonnegative() {
        let ts = TermStats {
            doc_freq: 999,
            coll_freq: 99_999,
        };
        assert!(Bm25::new().score(5, 10, ts, coll()) >= 0.0);
    }

    #[test]
    fn zero_cases() {
        let ts = TermStats {
            doc_freq: 0,
            coll_freq: 0,
        };
        assert_eq!(Bm25::new().score(3, 100, ts, coll()), 0.0);
        let ts2 = TermStats {
            doc_freq: 5,
            coll_freq: 9,
        };
        assert_eq!(Bm25::new().score(0, 100, ts2, coll()), 0.0);
    }
}
