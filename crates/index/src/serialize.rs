//! Binary persistence of the inverted index.
//!
//! A deployable search system builds its index offline and loads it at
//! serving time; this module provides the corresponding on-disk format —
//! a single length-prefixed binary buffer:
//!
//! ```text
//! [magic u32][version u32]
//! [num_docs u64][num_tokens u64]
//! [doc_lens: u32 count + raw u32s]
//! [vocab: u32 count + (u32 len + utf8)*]
//! [postings: u32 count + (doc_freq u32, coll_freq u64,
//!                          byte_len u32 + compressed bytes)*]
//! [documents: u32 count + (url, title, body as length-prefixed utf8)*]
//! ```
//!
//! Postings buffers are written verbatim (they are already delta+varint
//! compressed), so save/load is a straight memory copy of the hot data.

use crate::document::{Document, DocumentStore};
use crate::index::{CollectionStats, InvertedIndex, TermStats};
use crate::postings::{PostingsBuilder, PostingsList};
use bytes::{Buf, BufMut, BytesMut};
use serpdiv_text::{Analyzer, Vocabulary};

const MAGIC: u32 = 0x5E9D_1F01;
const VERSION: u32 = 1;

/// Errors raised while decoding a serialized index.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic number.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended prematurely or a length field is inconsistent.
    Truncated,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The buffer framed correctly but its contents are structurally
    /// invalid (non-monotone offsets, out-of-range term ids, …); the
    /// payload names the failed check.
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a serpdiv index (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            DecodeError::Truncated => write!(f, "truncated index buffer"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in index buffer"),
            DecodeError::Corrupt(what) => write!(f, "corrupt index buffer ({what})"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
}

impl InvertedIndex {
    /// Serialize the index (with its document store) to a binary buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.stats.num_docs);
        buf.put_u64_le(self.stats.num_tokens);

        buf.put_u32_le(self.doc_lens.len() as u32);
        for &dl in &self.doc_lens {
            buf.put_u32_le(dl);
        }

        buf.put_u32_le(self.vocab.len() as u32);
        for (_, term) in self.vocab.iter() {
            put_str(&mut buf, term);
        }

        buf.put_u32_le(self.postings.len() as u32);
        for (list, stats) in self.postings.iter().zip(&self.term_stats) {
            buf.put_u32_le(stats.doc_freq as u32);
            buf.put_u64_le(stats.coll_freq);
            // Re-encode through the iterator: the list knows its bytes but
            // exposes postings; round-tripping through the builder keeps
            // the format independent of the in-memory layout.
            let mut pb = PostingsBuilder::new();
            for p in list.iter() {
                pb.push(p.doc, p.tf);
            }
            let encoded = pb.build();
            let payload = encoded.raw_bytes();
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
        }

        buf.put_u32_le(self.store.len() as u32);
        for doc in self.store.iter() {
            put_str(&mut buf, &doc.url);
            put_str(&mut buf, &doc.title);
            put_str(&mut buf, &doc.body);
        }
        buf.to_vec()
    }

    /// Decode an index serialized by [`InvertedIndex::to_bytes`]. The
    /// analyzer is not persisted (it is code, not data): pass the same
    /// analyzer the index was built with.
    pub fn from_bytes(data: &[u8], analyzer: Analyzer) -> Result<Self, DecodeError> {
        let mut buf = data;
        if buf.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        if buf.get_u32_le() != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        if buf.remaining() < 16 {
            return Err(DecodeError::Truncated);
        }
        let num_docs = buf.get_u64_le();
        let num_tokens = buf.get_u64_le();

        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_lens = buf.get_u32_le() as usize;
        if buf.remaining() < n_lens * 4 {
            return Err(DecodeError::Truncated);
        }
        let mut doc_lens = Vec::with_capacity(n_lens);
        for _ in 0..n_lens {
            doc_lens.push(buf.get_u32_le());
        }

        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_terms = buf.get_u32_le() as usize;
        let mut vocab = Vocabulary::new();
        for _ in 0..n_terms {
            let term = get_str(&mut buf)?;
            vocab.intern(&term);
        }

        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_postings = buf.get_u32_le() as usize;
        let mut postings = Vec::with_capacity(n_postings);
        let mut term_stats = Vec::with_capacity(n_postings);
        for _ in 0..n_postings {
            if buf.remaining() < 16 {
                return Err(DecodeError::Truncated);
            }
            let doc_freq = buf.get_u32_le() as u64;
            let coll_freq = buf.get_u64_le();
            let byte_len = buf.get_u32_le() as usize;
            if buf.remaining() < byte_len {
                return Err(DecodeError::Truncated);
            }
            let payload = buf[..byte_len].to_vec();
            buf.advance(byte_len);
            postings.push(PostingsList::from_raw(payload.into(), doc_freq as u32));
            term_stats.push(TermStats {
                doc_freq,
                coll_freq,
            });
        }

        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_docs = buf.get_u32_le() as usize;
        let mut store = DocumentStore::new();
        for id in 0..n_docs {
            let url = get_str(&mut buf)?;
            let title = get_str(&mut buf)?;
            let body = get_str(&mut buf)?;
            store.push(Document::new(id as u32, url, title, body));
        }

        let avg_doc_len = if num_docs == 0 {
            0.0
        } else {
            num_tokens as f64 / num_docs as f64
        };
        let max_tfs: Vec<u32> = postings
            .iter()
            .map(|l| l.iter().map(|p| p.tf).max().unwrap_or(0))
            .collect();
        let min_doc_len = doc_lens
            .iter()
            .copied()
            .filter(|&l| l > 0)
            .min()
            .unwrap_or(0);
        Ok(InvertedIndex {
            vocab,
            postings,
            term_stats,
            doc_lens,
            max_tfs,
            min_doc_len,
            store,
            analyzer,
            stats: CollectionStats {
                num_docs,
                num_tokens,
                avg_doc_len,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::search::SearchEngine;

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add(Document::new(
            0,
            "http://a",
            "apple iphone",
            "apple announces new iphone chip",
        ));
        b.add(Document::new(
            1,
            "http://b",
            "apple pie",
            "bake an apple pie with cinnamon",
        ));
        b.add(Document::new(
            2,
            "http://c",
            "",
            "unrelated text about sailing boats",
        ));
        b.build()
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let idx = sample_index();
        let bytes = idx.to_bytes();
        let restored = InvertedIndex::from_bytes(&bytes, Analyzer::english()).unwrap();
        for query in ["apple", "apple pie", "sailing", "iphone chip"] {
            let a: Vec<_> = SearchEngine::new(&idx).search(query, 10);
            let b: Vec<_> = SearchEngine::new(&restored).search(query, 10);
            assert_eq!(a.len(), b.len(), "query {query}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn roundtrip_preserves_stats_and_store() {
        let idx = sample_index();
        let restored = InvertedIndex::from_bytes(&idx.to_bytes(), Analyzer::english()).unwrap();
        assert_eq!(restored.stats(), idx.stats());
        assert_eq!(restored.num_terms(), idx.num_terms());
        assert_eq!(restored.store().len(), 3);
        assert_eq!(
            restored.store().get(crate::DocId(1)).unwrap().title,
            "apple pie"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = InvertedIndex::from_bytes(&[0u8; 64], Analyzer::english()).unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let idx = sample_index();
        let bytes = idx.to_bytes();
        for cut in [0, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = InvertedIndex::from_bytes(&bytes[..cut], Analyzer::english());
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let idx = sample_index();
        let mut bytes = idx.to_bytes();
        bytes[4] = 99; // bump the version field
        let err = InvertedIndex::from_bytes(&bytes, Analyzer::english()).unwrap_err();
        assert_eq!(err, DecodeError::BadVersion(99));
    }

    #[test]
    fn empty_index_roundtrips() {
        let idx = IndexBuilder::new().build();
        let restored = InvertedIndex::from_bytes(&idx.to_bytes(), Analyzer::english()).unwrap();
        assert_eq!(restored.stats().num_docs, 0);
        assert_eq!(restored.num_terms(), 0);
    }
}
