//! Positional index and phrase matching.
//!
//! Specializations are multi-word reformulations ("leopard mac os x");
//! treating them as *phrases* rather than bags of words is the standard
//! precision upgrade for the specialization retrievals `R_q′`. This module
//! adds term positions on top of the frequency index:
//!
//! * [`PositionalIndex`] — per-(term, document) position lists over the
//!   *analyzed* token stream (positions count post-stopword, post-stemming
//!   tokens; a phrase therefore matches across removed stopwords, e.g.
//!   "university of pisa" matches the phrase "university pisa"),
//! * [`PositionalIndex::phrase_docs`] — documents containing the exact
//!   consecutive term sequence, by sorted position-list intersection,
//! * [`phrase_search`] — DPH-ranked retrieval restricted to phrase
//!   matches.

use crate::document::DocId;
use crate::index::InvertedIndex;
use crate::search::{ScoredDoc, SearchEngine};
use serpdiv_text::TermId;

/// Per-term, per-document token positions.
#[derive(Debug, Default)]
pub struct PositionalIndex {
    /// `positions[term][i] = (doc, sorted positions)`, docs ascending.
    positions: Vec<Vec<(DocId, Vec<u32>)>>,
}

impl PositionalIndex {
    /// Build the positional data by re-analyzing the documents of `index`
    /// (the frequency index stores no positions; this pays the analysis
    /// cost once, offline).
    pub fn build(index: &InvertedIndex) -> Self {
        let mut positions: Vec<Vec<(DocId, Vec<u32>)>> = vec![Vec::new(); index.num_terms()];
        for doc in index.store().iter() {
            let terms = index
                .analyzer()
                .analyze_known(&doc.full_text(), index.vocab());
            for (pos, term) in terms.iter().enumerate() {
                let list = &mut positions[term.index()];
                match list.last_mut() {
                    Some((d, ps)) if *d == doc.id => ps.push(pos as u32),
                    _ => list.push((doc.id, vec![pos as u32])),
                }
            }
        }
        PositionalIndex { positions }
    }

    /// The `(doc, positions)` list of `term`.
    pub fn term_positions(&self, term: TermId) -> &[(DocId, Vec<u32>)] {
        self.positions
            .get(term.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Documents containing `terms` as a consecutive phrase, ascending.
    /// An empty phrase matches nothing; a single term degenerates to
    /// containment.
    pub fn phrase_docs(&self, terms: &[TermId]) -> Vec<DocId> {
        let Some((first, rest)) = terms.split_first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        'docs: for (doc, first_positions) in self.term_positions(*first) {
            // Candidate start positions; narrow through each next term.
            let mut starts: Vec<u32> = first_positions.clone();
            for (offset, term) in rest.iter().enumerate() {
                let needed_offset = (offset + 1) as u32;
                let Some(positions) = self
                    .term_positions(*term)
                    .iter()
                    .find(|(d, _)| d == doc)
                    .map(|(_, ps)| ps)
                else {
                    continue 'docs;
                };
                starts.retain(|&s| positions.binary_search(&(s + needed_offset)).is_ok());
                if starts.is_empty() {
                    continue 'docs;
                }
            }
            out.push(*doc);
        }
        out
    }

    /// Approximate memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.positions
            .iter()
            .flatten()
            .map(|(_, ps)| std::mem::size_of::<(DocId, Vec<u32>)>() + ps.len() * 4)
            .sum()
    }
}

/// Top-`k` DPH retrieval restricted to documents containing `phrase` as a
/// consecutive analyzed-term sequence.
pub fn phrase_search(
    engine: &SearchEngine<'_>,
    positional: &PositionalIndex,
    phrase: &str,
    k: usize,
) -> Vec<ScoredDoc> {
    let terms = engine.index().analyze_query(phrase);
    if terms.is_empty() {
        return Vec::new();
    }
    let allowed = positional.phrase_docs(&terms);
    engine
        .search_terms(&terms, engine.index().stats().num_docs as usize)
        .into_iter()
        .filter(|h| allowed.binary_search(&h.doc).is_ok())
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::document::Document;

    fn fixture() -> (InvertedIndex, PositionalIndex) {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u0", "", "apple pie recipe with cinnamon"));
        b.add(Document::new(
            1,
            "u1",
            "",
            "pie apple is not a phrase match",
        ));
        b.add(Document::new(
            2,
            "u2",
            "",
            "the apple pie and another apple pie",
        ));
        b.add(Document::new(3, "u3", "", "apple sauce and pecan pie"));
        let idx = b.build();
        let pos = PositionalIndex::build(&idx);
        (idx, pos)
    }

    #[test]
    fn phrase_requires_adjacency_in_order() {
        let (idx, pos) = fixture();
        let terms = idx.analyze_query("apple pie");
        let docs = pos.phrase_docs(&terms);
        assert_eq!(docs, vec![DocId(0), DocId(2)]);
    }

    #[test]
    fn single_term_phrase_is_containment() {
        let (idx, pos) = fixture();
        let terms = idx.analyze_query("apple");
        assert_eq!(
            pos.phrase_docs(&terms),
            vec![DocId(0), DocId(1), DocId(2), DocId(3)]
        );
    }

    #[test]
    fn empty_and_unknown_phrases() {
        let (idx, pos) = fixture();
        assert!(pos.phrase_docs(&[]).is_empty());
        assert!(pos
            .phrase_docs(&idx.analyze_query("zeppelin ride"))
            .is_empty());
    }

    #[test]
    fn stopwords_are_transparent() {
        // "apple pie and another" — the stopwords vanish at analysis, so
        // the phrase "pie another" matches doc 2 ("...pie and another...").
        let (idx, pos) = fixture();
        let terms = idx.analyze_query("pie and another");
        assert_eq!(pos.phrase_docs(&terms), vec![DocId(2)]);
    }

    #[test]
    fn repeated_phrase_counts_once() {
        let (idx, pos) = fixture();
        let terms = idx.analyze_query("apple pie");
        let docs = pos.phrase_docs(&terms);
        assert_eq!(docs.iter().filter(|&&d| d == DocId(2)).count(), 1);
    }

    #[test]
    fn phrase_search_ranks_with_dph() {
        let (idx, pos) = fixture();
        let engine = SearchEngine::new(&idx);
        let hits = phrase_search(&engine, &pos, "apple pie", 10);
        let docs: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&DocId(0)) && docs.contains(&DocId(2)));
        assert!(
            !docs.contains(&DocId(1)),
            "bag-of-words match must be excluded"
        );
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn three_term_phrase() {
        let (idx, pos) = fixture();
        let terms = idx.analyze_query("apple pie recipe");
        assert_eq!(pos.phrase_docs(&terms), vec![DocId(0)]);
    }

    #[test]
    fn footprint_positive() {
        let (_idx, pos) = fixture();
        assert!(pos.byte_size() > 0);
    }
}
