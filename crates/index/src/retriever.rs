//! The retrieval abstraction of the serving stack.
//!
//! Everything above the index layer (the diversification pipeline, the
//! serving engine, the benches) needs exactly one capability from it:
//! *top-`k` documents for a query*. [`Retriever`] names that capability so
//! callers can swap evaluation strategies — term-at-a-time DPH
//! ([`SearchEngine`]), document-at-a-time MaxScore pruning
//! ([`MaxScoreEngine`]), or the deploy-time partitioned
//! [`ShardedIndex`](crate::sharded::ShardedIndex) that scores shards in
//! parallel and scatter-gathers the union top-`k` — without touching the
//! call sites.
//!
//! # Example
//!
//! ```
//! use serpdiv_index::{Document, IndexBuilder, Retriever, ShardedIndex};
//! use std::sync::Arc;
//!
//! let mut builder = IndexBuilder::new();
//! builder.add(Document::new(0, "http://a", "apple iphone", "apple announces a new iphone"));
//! builder.add(Document::new(1, "http://b", "apple pie", "apple pie recipe with apples"));
//! let index = Arc::new(builder.build());
//!
//! // The plain index retrieves with DPH; a sharded deployment partitions
//! // the documents and merges per-shard top-k — same trait, same results.
//! let unsharded: &dyn Retriever = index.as_ref();
//! let sharded = ShardedIndex::build(index.clone(), 2);
//! assert_eq!(unsharded.retrieve("apple", 2), sharded.retrieve("apple", 2));
//! ```

use crate::index::{InvertedIndex, StatsOverlay};
use crate::maxscore::MaxScoreEngine;
use crate::search::{RankingModel, ScoredDoc, SearchEngine};
use serpdiv_text::TermId;

/// The outcome of one retrieval together with its completeness status.
///
/// In-process retrievers always see the whole collection, so their
/// results are always [`complete`](Self::complete). A distributed
/// retriever (the fleet router) can lose a shard to a timeout or a dead
/// worker and still serve the gather over the shards that answered; it
/// reports `complete: false` so the serving layer can degrade the
/// response honestly instead of presenting a partial ranking as the real
/// one.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieval {
    /// The ranked hits (gathered over whichever shards answered).
    pub hits: Vec<ScoredDoc>,
    /// Whether every shard of the collection contributed.
    pub complete: bool,
}

impl Retrieval {
    /// A retrieval that saw the whole collection.
    pub fn complete(hits: Vec<ScoredDoc>) -> Self {
        Retrieval {
            hits,
            complete: true,
        }
    }

    /// A retrieval that lost at least one shard.
    pub fn partial(hits: Vec<ScoredDoc>) -> Self {
        Retrieval {
            hits,
            complete: false,
        }
    }
}

/// A top-`k` retrieval strategy over an indexed collection.
///
/// Implementations must be deterministic: equal queries return equal
/// rankings, with ties broken by ascending document id. `Send + Sync` is a
/// supertrait because retrievers are shared by reference across serving
/// worker threads.
pub trait Retriever: Send + Sync {
    /// Top-`k` documents for a raw query string (analysis included).
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc>;

    /// Top-`k` documents for pre-analyzed query terms.
    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc>;

    /// Like [`retrieve`](Self::retrieve), with a completeness flag.
    ///
    /// The default forwards to `retrieve` and reports complete — correct
    /// for every in-process strategy. Distributed retrievers override it
    /// to surface partial gathers (see [`Retrieval`]).
    fn retrieve_with_status(&self, query: &str, k: usize) -> Retrieval {
        Retrieval::complete(self.retrieve(query, k))
    }

    /// Like [`retrieve_with_status`](Self::retrieve_with_status), bounded
    /// by the caller's remaining per-request budget in microseconds
    /// (`None` ⇒ unbounded).
    ///
    /// The default ignores the budget — in-process strategies have no
    /// useful cancellation point, and an in-flight retrieval is always
    /// cheaper to finish than to abandon. Distributed retrievers override
    /// it to clamp their per-shard wire deadlines to
    /// `min(configured, remaining)`, so a request that has nearly
    /// exhausted its budget stops paying full shard timeouts for slow
    /// workers (see `FleetRouter` in the fleet crate).
    fn retrieve_with_status_within(
        &self,
        query: &str,
        k: usize,
        budget_us: Option<u64>,
    ) -> Retrieval {
        let _ = budget_us;
        self.retrieve_with_status(query, k)
    }

    /// Like [`retrieve_terms`](Self::retrieve_terms), but scored against
    /// the statistics in `overlay` instead of the retriever's own — the
    /// sealed half of the NRT union-statistics contract (see
    /// [`DeltaRetriever`](crate::delta::DeltaRetriever)).
    ///
    /// The default **ignores the overlay** and scores with the
    /// retriever's own statistics. That is only acceptable for strategies
    /// that never serve underneath a [`DeltaIndex`](crate::delta::DeltaIndex)
    /// (MaxScore, the fleet router); the retrievers the serving engine
    /// actually seals a delta over — [`InvertedIndex`] and
    /// [`ShardedIndex`](crate::sharded::ShardedIndex) — override it
    /// honestly, which is what makes a pre-merge `DeltaRetriever` page
    /// `f64`-bit-identical to a from-scratch union build.
    fn retrieve_terms_overlaid(
        &self,
        terms: &[TermId],
        k: usize,
        overlay: &StatsOverlay,
    ) -> Retrieval {
        let _ = overlay;
        Retrieval::complete(self.retrieve_terms(terms, k))
    }
}

/// The default retriever: term-at-a-time DPH over the whole collection
/// (one logical shard).
impl Retriever for InvertedIndex {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        SearchEngine::new(self).search(query, k)
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        SearchEngine::new(self).search_terms(terms, k)
    }

    fn retrieve_terms_overlaid(
        &self,
        terms: &[TermId],
        k: usize,
        overlay: &StatsOverlay,
    ) -> Retrieval {
        Retrieval::complete(SearchEngine::new(self).search_terms_overlaid(terms, k, overlay))
    }
}

impl Retriever for SearchEngine<'_> {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        self.search(query, k)
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        self.search_terms(terms, k)
    }
}

impl<M: RankingModel + Send + Sync> Retriever for MaxScoreEngine<'_, M> {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        self.search(query, k)
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        self.search_terms(terms, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::document::Document;

    fn index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u0", "apple iphone", "apple iphone chip"));
        b.add(Document::new(1, "u1", "apple fruit", "apple fruit sweet"));
        b.add(Document::new(2, "u2", "pie", "apple pie cinnamon"));
        b.build()
    }

    #[test]
    fn index_and_engine_retrievers_agree() {
        let idx = index();
        let engine = SearchEngine::new(&idx);
        let a = Retriever::retrieve(&idx, "apple", 3);
        let b = Retriever::retrieve(&engine, "apple", 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn maxscore_is_a_retriever() {
        let idx = index();
        let engine = MaxScoreEngine::new(&idx, crate::bm25::Bm25::new());
        let hits = Retriever::retrieve(&engine, "apple pie", 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc.0, 2);
    }

    #[test]
    fn trait_object_usable() {
        let idx = index();
        let dyn_ret: &dyn Retriever = &idx;
        assert_eq!(dyn_ret.retrieve("apple", 10).len(), 3);
        assert!(dyn_ret.retrieve("zeppelin", 10).is_empty());
    }
}
