//! DPH Divergence-From-Randomness weighting model.
//!
//! The paper retrieves the candidate sets with "a probabilistic document
//! weighting model: DPH Divergence From Randomness" (§5, citing Amati et
//! al., TREC 2007). DPH is the hypergeometric DFR model with Popper
//! normalization; it is *parameter-free*, which is why the paper (and TREC
//! Web-track participants generally) favour it — there is nothing to tune.
//!
//! Per query-term score for a document (Terrier's formulation):
//!
//! ```text
//! f    = tf / dl                         (relative within-document frequency)
//! norm = (1 − f)² / (tf + 1)
//! score = norm · [ tf · log₂( (tf · avg_dl / dl) · (N / CF) )
//!                  + 0.5 · log₂( 2π · tf · (1 − f) ) ]
//! ```
//!
//! where `dl` is the document length, `avg_dl` the average document length,
//! `N` the number of documents and `CF` the term's collection frequency.
//! Scores of a document are summed over the query terms (bag of words).

use crate::index::{CollectionStats, TermStats};
use crate::search::RankingModel;

/// The parameter-free DPH DFR model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dph;

impl Dph {
    /// Create the model (no parameters).
    pub fn new() -> Self {
        Dph
    }
}

impl RankingModel for Dph {
    fn score(&self, tf: u32, doc_len: u32, term: TermStats, coll: CollectionStats) -> f64 {
        if tf == 0 || doc_len == 0 || term.coll_freq == 0 || coll.num_docs == 0 {
            return 0.0;
        }
        let tf = f64::from(tf);
        let dl = f64::from(doc_len);
        // Clamp the relative frequency strictly below 1 so the Popper
        // normalization and the log term stay finite for documents that
        // consist solely of the query term (tf == dl).
        let f = (tf / dl).min(1.0 - 1e-9);
        let norm = (1.0 - f) * (1.0 - f) / (tf + 1.0);
        let ratio = (tf * coll.avg_doc_len / dl) * (coll.num_docs as f64 / term.coll_freq as f64);
        let score =
            norm * (tf * ratio.log2() + 0.5 * (2.0 * std::f64::consts::PI * tf * (1.0 - f)).log2());
        // A term can score negative when it is *more* frequent in the
        // collection than chance would predict; Terrier keeps negative
        // contributions, and so do we — they matter for ranking stability.
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{CollectionStats, TermStats};
    use crate::search::RankingModel;

    fn coll() -> CollectionStats {
        CollectionStats {
            num_docs: 10_000,
            num_tokens: 1_000_000,
            avg_doc_len: 100.0,
        }
    }

    fn rare() -> TermStats {
        TermStats {
            doc_freq: 10,
            coll_freq: 15,
        }
    }

    fn common() -> TermStats {
        TermStats {
            doc_freq: 8_000,
            coll_freq: 200_000,
        }
    }

    #[test]
    fn zero_tf_scores_zero() {
        assert_eq!(Dph.score(0, 100, rare(), coll()), 0.0);
    }

    #[test]
    fn rare_terms_beat_common_terms() {
        let r = Dph.score(3, 100, rare(), coll());
        let c = Dph.score(3, 100, common(), coll());
        assert!(r > c, "rare {r} should exceed common {c}");
        assert!(r > 0.0);
    }

    #[test]
    fn higher_tf_scores_higher_for_rare_terms() {
        let s1 = Dph.score(1, 100, rare(), coll());
        let s3 = Dph.score(3, 100, rare(), coll());
        let s6 = Dph.score(6, 100, rare(), coll());
        assert!(s3 > s1);
        assert!(s6 > s3);
    }

    #[test]
    fn longer_documents_score_lower_at_equal_tf() {
        let short = Dph.score(3, 50, rare(), coll());
        let long = Dph.score(3, 500, rare(), coll());
        assert!(short > long);
    }

    #[test]
    fn degenerate_single_term_document_is_finite() {
        // tf == dl: the clamp must keep the score finite.
        let s = Dph.score(5, 5, rare(), coll());
        assert!(s.is_finite());
    }

    #[test]
    fn empty_collection_scores_zero() {
        let empty = CollectionStats {
            num_docs: 0,
            num_tokens: 0,
            avg_doc_len: 0.0,
        };
        assert_eq!(Dph.score(3, 100, rare(), empty), 0.0);
    }
}
