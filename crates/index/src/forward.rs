//! The compiled forward index: zero-string snippet surrogates.
//!
//! §4 of the paper puts every expensive text operation in the *offline*
//! deployment phase so the serving loop only touches precompiled integer
//! data. The snippet-surrogate stage was the last place the request path
//! still ran the full analysis pipeline: every cache miss re-tokenized and
//! re-stemmed the whole document body, rescanned each candidate window
//! with linear probes, joined the winner back into a `String` and then
//! tokenized *that* a second time to vectorize it.
//!
//! [`ForwardIndex`] moves all of it to build time. Each document body is
//! tokenized and analyzed **once** into a compact per-document stream of
//! [`TermId`]s in which stopword/out-of-vocabulary positions are kept as a
//! sentinel ([`STOP`]) — raw-token positions are preserved, so the
//! query-biased window semantics of
//! [`SnippetGenerator`](crate::snippet::SnippetGenerator) are unchanged.
//! Alongside the stream the index precomputes each document's title
//! term-frequency vector and caches the per-term IDF weight
//! `ln(1 + N/df)` used by [`SparseVector::from_text`].
//!
//! At request time, [`ForwardIndex::surrogate`] selects the best window
//! with an incremental O(n) slide (counts added/removed at the edges, a
//! tiny per-query-term counter array instead of `Vec::contains` rescans)
//! and emits the surrogate [`SparseVector`] straight from `TermId`s and
//! cached IDF weights — no snippet `String`, no re-tokenization, no
//! re-stemming anywhere on the hot path. The result is **bit-identical**
//! to the text oracle (`SnippetGenerator::snippet` +
//! `SparseVector::from_text`); `tests/surrogate_equivalence.rs` proves it.
//!
//! # Example
//!
//! ```
//! use serpdiv_index::{Document, ForwardIndex, IndexBuilder, SnippetGenerator, SparseVector};
//!
//! let mut builder = IndexBuilder::new();
//! builder.add(Document::new(0, "http://a", "Apple iPhone", "apple announces the new iphone"));
//! let index = builder.build();
//! let forward = ForwardIndex::build(&index);
//!
//! let qterms = index.analyze_query("iphone");
//! let compiled = forward.surrogate(serpdiv_index::DocId(0), &qterms, 30);
//! // Identical to the offline text path:
//! let snippets = SnippetGenerator::with_window(30);
//! let doc = index.store().get(serpdiv_index::DocId(0)).unwrap();
//! let snippet = snippets.snippet(doc, &qterms, index.vocab());
//! assert_eq!(compiled, SparseVector::from_text(&snippet, &index));
//! ```

use crate::document::DocId;
use crate::index::InvertedIndex;
use crate::serialize::DecodeError;
use crate::vector::SparseVector;
use bytes::{Buf, BufMut, BytesMut};
use serpdiv_text::TermId;

/// Sentinel marking a body position whose raw token analyzed to nothing
/// usable (stopword, or out-of-vocabulary). Kept in the stream so window
/// offsets still count *raw* tokens, exactly like the text path.
pub const STOP: u32 = u32::MAX;

const MAGIC: u32 = 0x5E9D_F0D1;
const VERSION: u32 = 1;

/// Deploy-time compiled forward index over a collection's documents.
///
/// One flat `TermId` stream holds every document body (offset-indexed),
/// one flat `(term, tf)` list holds every title vector, and a dense table
/// caches the per-term IDF weight. Built once from an [`InvertedIndex`]
/// (whose analyzer must match the snippet generator's — both default to
/// the English pipeline everywhere in this workspace), then shared
/// immutably by all serving threads.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardIndex {
    /// Concatenated per-document body token streams ([`STOP`] sentinels
    /// preserve raw positions).
    tokens: Vec<u32>,
    /// Per-document offsets into `tokens`; `len = num_docs + 1`.
    offsets: Vec<u32>,
    /// Concatenated per-document title `(term, tf)` entries, sorted by
    /// term id within each document.
    title_terms: Vec<(u32, u32)>,
    /// Per-document offsets into `title_terms`; `len = num_docs + 1`.
    title_offsets: Vec<u32>,
    /// `ln(1 + N/df)` per term id — the exact `f32` factor
    /// [`SparseVector::from_text`] computes from the index statistics.
    idf: Vec<f32>,
}

impl ForwardIndex {
    /// Compile the forward index from `index`: tokenize + analyze each
    /// document body once, precompute title term frequencies and per-term
    /// IDF weights. This is an offline deployment step (one full pass
    /// over the document store).
    pub fn build(index: &InvertedIndex) -> Self {
        let vocab = index.vocab();
        let analyzer = index.analyzer();
        assert!(
            (vocab.len() as u64) < u64::from(u32::MAX),
            "vocabulary too large for the u32 sentinel encoding"
        );
        let store = index.store();
        let mut tokens: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = Vec::with_capacity(store.len() + 1);
        let mut title_terms: Vec<(u32, u32)> = Vec::new();
        let mut title_offsets: Vec<u32> = Vec::with_capacity(store.len() + 1);
        offsets.push(0);
        title_offsets.push(0);
        let mut title_scratch: Vec<u32> = Vec::new();
        for doc in store.iter() {
            // Body stream: the same per-raw-token normalization the text
            // oracle applies (analyze the token, keep the first produced
            // term if the vocabulary knows it).
            for raw in serpdiv_text::tokenize(&doc.body) {
                let norm = analyzer
                    .analyze(&raw)
                    .first()
                    .and_then(|term| vocab.id(term));
                tokens.push(norm.map_or(STOP, |t| t.0));
            }
            offsets.push(u32::try_from(tokens.len()).expect("forward stream exceeds u32 offsets"));

            // Title tf vector: full analysis of the raw title, unknown
            // terms dropped — what `from_text` sees for the title prefix.
            title_scratch.clear();
            title_scratch.extend(
                analyzer
                    .analyze_known(&doc.title, vocab)
                    .iter()
                    .map(|t| t.0),
            );
            title_scratch.sort_unstable();
            let mut i = 0;
            while i < title_scratch.len() {
                let term = title_scratch[i];
                let mut tf = 0u32;
                while i < title_scratch.len() && title_scratch[i] == term {
                    tf += 1;
                    i += 1;
                }
                title_terms.push((term, tf));
            }
            title_offsets
                .push(u32::try_from(title_terms.len()).expect("title entries exceed u32 offsets"));
        }

        // Cached IDF factors, computed with the exact `f32` expression of
        // `SparseVector::from_text` so weights stay bit-identical.
        let n = index.stats().num_docs as f32;
        let idf = (0..vocab.len())
            .map(|t| {
                let df = index
                    .term_stats(TermId(t as u32))
                    .map(|s| s.doc_freq as f32)
                    .unwrap_or(0.0)
                    .max(1.0);
                (1.0 + n / df).ln()
            })
            .collect();

        ForwardIndex {
            tokens,
            offsets,
            title_terms,
            title_offsets,
            idf,
        }
    }

    /// Number of compiled documents.
    pub fn num_docs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The compiled body token stream of `doc` (empty for unknown docs).
    pub fn doc_tokens(&self, doc: DocId) -> &[u32] {
        let i = doc.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.tokens[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The precomputed title `(term, tf)` entries of `doc`, sorted by
    /// term id (empty for unknown docs).
    pub fn title_tf(&self, doc: DocId) -> &[(u32, u32)] {
        let i = doc.index();
        if i + 1 >= self.title_offsets.len() {
            return &[];
        }
        &self.title_terms[self.title_offsets[i] as usize..self.title_offsets[i + 1] as usize]
    }

    /// The cached IDF weight `ln(1 + N/df)` of `term` (0 for unknown
    /// terms — they cannot occur in a compiled stream anyway).
    pub fn idf(&self, term: TermId) -> f32 {
        self.idf.get(term.index()).copied().unwrap_or(0.0)
    }

    /// The whole cached IDF table, indexed by term id. A surrogate is a
    /// pure function of `(doc token stream, title tf entries, idf table,
    /// numeric query-term ids)`, so two forward indexes with bit-equal
    /// idf tables and bit-equal per-document entries emit bit-identical
    /// surrogates — the cross-generation cache carry-over check.
    pub fn idf_table(&self) -> &[f32] {
        &self.idf
    }

    /// Select the query-biased window of `doc`'s body: the `(start, len)`
    /// raw-token span (in the same coordinates as the text path) covering
    /// the most distinct query terms, ties broken by total query-term
    /// occurrences, then by earliest position. `len` is
    /// `min(window, body len)` — `(0, 0)` for an empty body.
    ///
    /// One incremental O(n) slide: entering/leaving edge tokens update a
    /// small per-query-term counter array; no window is ever rescanned.
    pub fn best_window(&self, doc: DocId, query_terms: &[TermId], window: usize) -> (usize, usize) {
        best_window_over(self.doc_tokens(doc), query_terms, window)
    }

    /// The snippet-surrogate TF-IDF vector of `doc` for `query_terms`,
    /// computed entirely over compiled data: best window selection on the
    /// `TermId` stream, term frequencies merged with the precomputed
    /// title vector, weights from the cached IDF table. Bit-identical to
    /// `SparseVector::from_text(SnippetGenerator::snippet(..), index)`;
    /// unknown documents yield the zero vector.
    pub fn surrogate(&self, doc: DocId, query_terms: &[TermId], window: usize) -> SparseVector {
        if doc.index() >= self.num_docs() {
            return SparseVector::default();
        }
        let tokens = self.doc_tokens(doc);
        let (start, len) = best_window_over(tokens, query_terms, window);

        // Term frequencies of the window: sort the (few) window terms and
        // count runs — no hashing.
        let mut win: Vec<u32> = tokens[start..start + len]
            .iter()
            .copied()
            .filter(|&t| t != STOP)
            .collect();
        win.sort_unstable();

        // Merge window counts with the sorted title tf entries.
        let title = self.title_tf(doc);
        let mut pairs: Vec<(TermId, f32)> = Vec::with_capacity(win.len() + title.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < win.len() || j < title.len() {
            let wt = win.get(i).copied();
            let tt = title.get(j).map(|&(t, _)| t);
            let term = match (wt, tt) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!(),
            };
            let mut tf = 0u32;
            while i < win.len() && win[i] == term {
                tf += 1;
                i += 1;
            }
            if j < title.len() && title[j].0 == term {
                tf += title[j].1;
                j += 1;
            }
            // The exact weight expression of `SparseVector::from_text`.
            let w = (1.0 + (tf as f32).ln()) * self.idf[term as usize];
            pairs.push((TermId(term), w));
        }
        SparseVector::from_sorted_pairs(pairs)
    }

    /// Approximate in-memory footprint in bytes (reported by the benches
    /// next to the index and compiled-store footprints).
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tokens.len() * std::mem::size_of::<u32>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.title_terms.len() * std::mem::size_of::<(u32, u32)>()
            + self.title_offsets.len() * std::mem::size_of::<u32>()
            + self.idf.len() * std::mem::size_of::<f32>()
    }

    /// Serialize to a binary buffer (deploy-time artifact, loaded next to
    /// the inverted index — see [`crate::serialize`] for the index side).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.num_docs() as u32);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        buf.put_u32_le(self.tokens.len() as u32);
        for &t in &self.tokens {
            buf.put_u32_le(t);
        }
        for &o in &self.title_offsets {
            buf.put_u32_le(o);
        }
        buf.put_u32_le(self.title_terms.len() as u32);
        for &(t, tf) in &self.title_terms {
            buf.put_u32_le(t);
            buf.put_u32_le(tf);
        }
        buf.put_u32_le(self.idf.len() as u32);
        for &w in &self.idf {
            buf.put_u32_le(w.to_bits());
        }
        buf.to_vec()
    }

    /// Decode a buffer produced by [`ForwardIndex::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        let mut buf = data;
        let need = |buf: &&[u8], n: usize| -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };
        need(&buf, 12)?;
        if buf.get_u32_le() != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let num_docs = buf.get_u32_le() as usize;
        let read_u32s = |buf: &mut &[u8], n: usize| -> Result<Vec<u32>, DecodeError> {
            if buf.remaining() < n * 4 {
                return Err(DecodeError::Truncated);
            }
            Ok((0..n).map(|_| buf.get_u32_le()).collect())
        };
        let offsets = read_u32s(&mut buf, num_docs + 1)?;
        need(&buf, 4)?;
        let n_tokens = buf.get_u32_le() as usize;
        let tokens = read_u32s(&mut buf, n_tokens)?;
        let title_offsets = read_u32s(&mut buf, num_docs + 1)?;
        need(&buf, 4)?;
        let n_title = buf.get_u32_le() as usize;
        if buf.remaining() < n_title * 8 {
            return Err(DecodeError::Truncated);
        }
        let title_terms: Vec<(u32, u32)> = (0..n_title)
            .map(|_| (buf.get_u32_le(), buf.get_u32_le()))
            .collect();
        need(&buf, 4)?;
        let n_idf = buf.get_u32_le() as usize;
        if buf.remaining() < n_idf * 4 {
            return Err(DecodeError::Truncated);
        }
        let idf: Vec<f32> = (0..n_idf)
            .map(|_| f32::from_bits(buf.get_u32_le()))
            .collect();

        // Structural validation: a well-framed but corrupt artifact must
        // fail here, not panic a serving worker on its first request.
        let check = |ok: bool, what: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(DecodeError::Corrupt(what))
            }
        };
        let monotone_to = |offs: &[u32], end: usize| {
            offs.first() == Some(&0)
                && offs.windows(2).all(|w| w[0] <= w[1])
                && offs.last().is_some_and(|&l| l as usize == end)
        };
        check(monotone_to(&offsets, tokens.len()), "body offsets")?;
        check(
            monotone_to(&title_offsets, title_terms.len()),
            "title offsets",
        )?;
        check(
            tokens
                .iter()
                .all(|&t| t == STOP || (t as usize) < idf.len()),
            "body term ids",
        )?;
        check(
            title_terms
                .iter()
                .all(|&(t, tf)| (t as usize) < idf.len() && tf > 0),
            "title entries",
        )?;
        check(idf.iter().all(|w| w.is_finite() && *w >= 0.0), "idf table")?;

        Ok(ForwardIndex {
            tokens,
            offsets,
            title_terms,
            title_offsets,
            idf,
        })
    }
}

/// The incremental sliding-window scan over one compiled token stream.
/// Same selection rule as the text oracle: maximize
/// `(distinct query terms, total query-term hits)`, earliest start wins
/// ties (strict-greater updates while scanning left to right).
fn best_window_over(tokens: &[u32], query_terms: &[TermId], window: usize) -> (usize, usize) {
    if tokens.is_empty() {
        return (0, 0);
    }
    // No .max(1): the oracle lets a zero window collapse the snippet to
    // the title alone, and bit-identity matters more than a lower bound
    // (SnippetGenerator construction clamps its window to ≥ 1 anyway).
    let w = window.min(tokens.len());
    if w == 0 || query_terms.is_empty() {
        // Every zero-width window scores (0, 0): earliest start wins.
        return (0, w);
    }
    // Deduplicate the (few) query terms so `distinct` counts term ids,
    // exactly like the oracle's scratch list.
    let mut q: Vec<u32> = Vec::with_capacity(query_terms.len());
    for t in query_terms {
        if !q.contains(&t.0) {
            q.push(t.0);
        }
    }
    let mut counts = vec![0u32; q.len()];
    let mut distinct = 0usize;
    let mut total = 0usize;
    macro_rules! edge {
        ($tok:expr, add) => {
            if $tok != STOP {
                if let Some(i) = q.iter().position(|&t| t == $tok) {
                    counts[i] += 1;
                    total += 1;
                    if counts[i] == 1 {
                        distinct += 1;
                    }
                }
            }
        };
        ($tok:expr, remove) => {
            if $tok != STOP {
                if let Some(i) = q.iter().position(|&t| t == $tok) {
                    counts[i] -= 1;
                    total -= 1;
                    if counts[i] == 0 {
                        distinct -= 1;
                    }
                }
            }
        };
    }
    for &tok in &tokens[..w] {
        edge!(tok, add);
    }
    let mut best = (distinct, total);
    let mut best_start = 0usize;
    for start in 1..=(tokens.len() - w) {
        edge!(tokens[start - 1], remove);
        edge!(tokens[start + w - 1], add);
        if (distinct, total) > best {
            best = (distinct, total);
            best_start = start;
        }
    }
    (best_start, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::document::Document;
    use crate::snippet::SnippetGenerator;

    fn build_world() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add(Document::new(
            0,
            "http://a",
            "Apple iPhone",
            "the apple iphone is announced today with a new chip and the camera",
        ));
        b.add(Document::new(1, "http://b", "Empty body", ""));
        b.add(Document::new(
            2,
            "http://c",
            "",
            "orchard harvest apple cider",
        ));
        b.add(Document::new(3, "http://d", "Stopwords", "the of and is"));
        b.build()
    }

    #[test]
    fn stream_preserves_raw_positions_with_sentinels() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        assert_eq!(f.num_docs(), 4);
        // Raw body of doc 0 has 13 tokens; stopwords become sentinels.
        let tokens = f.doc_tokens(DocId(0));
        assert_eq!(tokens.len(), 13);
        assert_eq!(tokens[0], STOP); // "the"
        let appl = index.vocab().id("appl").unwrap();
        assert_eq!(tokens[1], appl.0);
        // All-stopword body: all sentinels, positions intact.
        assert!(f.doc_tokens(DocId(3)).iter().all(|&t| t == STOP));
        assert_eq!(f.doc_tokens(DocId(3)).len(), 4);
        // Empty body / unknown doc.
        assert!(f.doc_tokens(DocId(1)).is_empty());
        assert!(f.doc_tokens(DocId(99)).is_empty());
    }

    #[test]
    fn title_tf_matches_full_analysis() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        let title = f.title_tf(DocId(0));
        let appl = index.vocab().id("appl").unwrap();
        let iphon = index.vocab().id("iphon").unwrap();
        let mut expected = vec![(appl.0, 1), (iphon.0, 1)];
        expected.sort_unstable();
        assert_eq!(title, expected.as_slice());
        assert!(f.title_tf(DocId(2)).is_empty());
    }

    #[test]
    fn surrogate_matches_text_oracle() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        let snippets = SnippetGenerator::with_window(5);
        for query in ["apple", "apple camera", "chip", "orchard cider", ""] {
            let qterms = index.analyze_query(query);
            for doc in 0..4u32 {
                let doc = DocId(doc);
                let d = index.store().get(doc).unwrap();
                let naive =
                    SparseVector::from_text(&snippets.snippet(d, &qterms, index.vocab()), &index);
                let compiled = f.surrogate(doc, &qterms, 5);
                assert_eq!(compiled, naive, "doc {doc:?} query {query:?}");
            }
        }
    }

    #[test]
    fn unknown_doc_yields_zero_vector() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        assert!(f.surrogate(DocId(77), &[], 30).is_zero());
    }

    #[test]
    fn incremental_window_matches_bruteforce() {
        // Direct check of the slide against a per-start rescan.
        let q = [TermId(1), TermId(2)];
        let tokens = [STOP, 1, STOP, 1, 2, STOP, 2, 2, 1, STOP, 1];
        for w in 1..=tokens.len() + 2 {
            let (fast_start, fast_len) = best_window_over(&tokens, &q, w);
            // Brute force.
            let eff = w.min(tokens.len());
            let mut best = (0usize, 0usize);
            let mut best_start = 0usize;
            for start in 0..=(tokens.len() - eff) {
                let mut distinct: Vec<u32> = Vec::new();
                let mut total = 0;
                for &t in &tokens[start..start + eff] {
                    if q.iter().any(|&x| x.0 == t) {
                        total += 1;
                        if !distinct.contains(&t) {
                            distinct.push(t);
                        }
                    }
                }
                if (distinct.len(), total) > best {
                    best = (distinct.len(), total);
                    best_start = start;
                }
            }
            assert_eq!((fast_start, fast_len), (best_start, eff), "window {w}");
        }
    }

    #[test]
    fn roundtrip_serialization() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        let bytes = f.to_bytes();
        let restored = ForwardIndex::from_bytes(&bytes).unwrap();
        assert_eq!(restored, f);
        // Decoding garbage fails cleanly.
        assert_eq!(
            ForwardIndex::from_bytes(&[0u8; 16]).unwrap_err(),
            DecodeError::BadMagic
        );
        for cut in [0, 6, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ForwardIndex::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert_eq!(
            ForwardIndex::from_bytes(&bad).unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    #[test]
    fn structurally_corrupt_buffers_fail_at_decode() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        let bytes = f.to_bytes();
        // First offset (right after magic/version/num_docs) made
        // non-zero: offsets no longer start at 0.
        let mut bad = bytes.clone();
        bad[12] = 0xff;
        assert_eq!(
            ForwardIndex::from_bytes(&bad).unwrap_err(),
            DecodeError::Corrupt("body offsets")
        );
        // A token patched to a term id outside the idf table (but not
        // the STOP sentinel): the stream references a term that does
        // not exist.
        let token_base = 12 + (f.num_docs() + 1) * 4 + 4;
        let mut bad = bytes.clone();
        bad[token_base..token_base + 4].copy_from_slice(&0x7fff_ffffu32.to_le_bytes());
        assert_eq!(
            ForwardIndex::from_bytes(&bad).unwrap_err(),
            DecodeError::Corrupt("body term ids")
        );
    }

    #[test]
    fn zero_window_collapses_to_title_like_the_oracle() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        let qterms = index.analyze_query("apple");
        // Oracle with window 0: empty body part, title-only vector.
        assert_eq!(f.best_window(DocId(0), &qterms, 0), (0, 0));
        assert_eq!(
            f.surrogate(DocId(0), &qterms, 0),
            SparseVector::from_text("Apple iPhone", &index)
        );
        assert_eq!(f.best_window(DocId(0), &[], 0), (0, 0));
    }

    #[test]
    fn byte_size_is_positive_and_grows() {
        let index = build_world();
        let f = ForwardIndex::build(&index);
        assert!(f.byte_size() > 0);
        let empty = ForwardIndex::build(&IndexBuilder::new().build());
        assert!(empty.byte_size() < f.byte_size());
        assert_eq!(empty.num_docs(), 0);
    }
}
