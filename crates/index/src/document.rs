//! Documents and the document store.
//!
//! A [`Document`] models one web page of the collection: a URL, a title and
//! a body. The [`DocumentStore`] owns all documents of a collection and is
//! shared by the index (for statistics), the snippet generator (for raw
//! text) and the evaluation harness (for qrels lookups by URL).

use serde::{Deserialize, Serialize};

/// Dense identifier of a document within a collection.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One document of the collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    /// Dense document id; must equal the document's position in the store.
    pub id: DocId,
    /// URL of the document (the query-log click sets `Cᵢ` reference URLs).
    pub url: String,
    /// Title text, indexed together with the body.
    pub title: String,
    /// Body text.
    pub body: String,
}

impl Document {
    /// Convenience constructor.
    pub fn new(
        id: u32,
        url: impl Into<String>,
        title: impl Into<String>,
        body: impl Into<String>,
    ) -> Self {
        Document {
            id: DocId(id),
            url: url.into(),
            title: title.into(),
            body: body.into(),
        }
    }

    /// Title and body joined — the text that gets indexed.
    pub fn full_text(&self) -> String {
        if self.title.is_empty() {
            self.body.clone()
        } else {
            format!("{} {}", self.title, self.body)
        }
    }
}

/// Owning container of a collection's documents, addressable by [`DocId`].
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct DocumentStore {
    docs: Vec<Document>,
}

impl DocumentStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a document; its `id` must equal the current length.
    ///
    /// # Panics
    /// Panics when the id is out of sequence — ids are dense by contract.
    pub fn push(&mut self, doc: Document) {
        assert_eq!(
            doc.id.index(),
            self.docs.len(),
            "document ids must be dense and in insertion order"
        );
        self.docs.push(doc);
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Get a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.index())
    }

    /// Iterate over all documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut store = DocumentStore::new();
        store.push(Document::new(0, "http://x", "t", "b"));
        store.push(Document::new(1, "http://y", "t2", "b2"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(DocId(1)).unwrap().url, "http://y");
        assert!(store.get(DocId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn out_of_order_id_panics() {
        let mut store = DocumentStore::new();
        store.push(Document::new(5, "http://x", "t", "b"));
    }

    #[test]
    fn full_text_joins_title_and_body() {
        let d = Document::new(0, "u", "apple pie", "recipe");
        assert_eq!(d.full_text(), "apple pie recipe");
        let no_title = Document::new(0, "u", "", "recipe");
        assert_eq!(no_title.full_text(), "recipe");
    }
}
