//! Standalone per-shard serving artifacts for out-of-process workers.
//!
//! A fleet worker process serves exactly one shard of a
//! [`ShardedIndex`](crate::sharded::ShardedIndex). It must not need the
//! global index at boot — that would defeat the point of partitioning —
//! so [`ShardedIndex::export_shard`](crate::sharded::ShardedIndex::export_shard)
//! captures everything shard scoring reads into one self-contained binary
//! buffer: the shard-local postings slice **plus the global statistics**
//! (collection stats, per-term stats, the range's document lengths) that
//! make a document's score independent of where it is scored.
//!
//! ```text
//! [magic u32][version u32]
//! [shard_id u32][num_shards u32]
//! [base u32][range_len u32]
//! [num_docs u64][num_tokens u64][avg_doc_len f64-bits u64]
//! [doc_lens: u32 count (== range_len) + raw u32s]
//! [terms: u32 count + (doc_freq u32, coll_freq u64,
//!                      local_len u32, byte_len u32 + compressed bytes)*]
//! ```
//!
//! `avg_doc_len` is persisted as raw `f64` bits rather than recomputed so
//! the worker scores with the exact same collection statistics as the
//! router's process — bit-identity is the contract, not approximation.
//!
//! Decoding follows the same validate-on-decode discipline as
//! [`InvertedIndex::from_bytes`](crate::index::InvertedIndex) and
//! [`ForwardIndex::from_bytes`](crate::forward::ForwardIndex): framing
//! errors are [`DecodeError::Truncated`]/[`BadMagic`]/[`BadVersion`], and
//! structural violations — postings out of the shard's range, non-monotone
//! doc ids, zero frequencies, undecodable varints — are
//! [`DecodeError::Corrupt`] naming the failed check. A worker never boots
//! from an artifact that could panic the scoring loop.
//!
//! [`BadMagic`]: DecodeError::BadMagic
//! [`BadVersion`]: DecodeError::BadVersion

use crate::document::DocId;
use crate::dph::Dph;
use crate::index::{CollectionStats, InvertedIndex, TermStats};
use crate::postings::PostingsList;
use crate::search::{query_weights, ScoredDoc};
use crate::serialize::DecodeError;
use crate::sharded::{score_range_dense, score_range_sparse, RangeSource};
use bytes::{Buf, BufMut, BytesMut};
use serpdiv_text::TermId;

const MAGIC: u32 = 0x5E9D_1F05;
const VERSION: u32 = 1;

/// Largest artifact doc-range scored with the dense accumulator (same
/// default as the in-process scatter path).
const DENSE_ACCUMULATOR_LIMIT: usize = 1 << 16;

/// Encode one shard into the artifact format (called by
/// [`ShardedIndex::export_shard`](crate::sharded::ShardedIndex::export_shard)).
pub(crate) fn encode_shard(
    index: &InvertedIndex,
    shard_id: u32,
    num_shards: u32,
    base: u32,
    range_len: usize,
    postings: &[PostingsList],
) -> Vec<u8> {
    let coll = index.stats();
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(shard_id);
    buf.put_u32_le(num_shards);
    buf.put_u32_le(base);
    buf.put_u32_le(range_len as u32);
    buf.put_u64_le(coll.num_docs);
    buf.put_u64_le(coll.num_tokens);
    buf.put_u64_le(coll.avg_doc_len.to_bits());

    buf.put_u32_le(range_len as u32);
    for i in 0..range_len {
        buf.put_u32_le(index.doc_len(DocId(base + i as u32)).unwrap_or(0));
    }

    buf.put_u32_le(postings.len() as u32);
    for (t, list) in postings.iter().enumerate() {
        let stats = index.term_stats(TermId(t as u32)).unwrap_or(TermStats {
            doc_freq: 0,
            coll_freq: 0,
        });
        buf.put_u32_le(stats.doc_freq as u32);
        buf.put_u64_le(stats.coll_freq);
        buf.put_u32_le(list.len() as u32);
        let payload = list.raw_bytes();
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(payload);
    }
    buf.to_vec()
}

/// One shard of a [`ShardedIndex`](crate::sharded::ShardedIndex), decoded
/// into a standalone scorer a worker process boots from.
///
/// Scoring goes through the exact dense/sparse range-accumulation code
/// the in-process scatter path uses, with the global statistics the
/// artifact carries — per-document scores (and therefore the per-shard
/// top-`k` a worker returns) are bit-identical to scoring the same shard
/// inside the router's process.
#[derive(Debug)]
pub struct ShardArtifact {
    shard_id: u32,
    num_shards: u32,
    base: u32,
    doc_lens: Vec<u32>,
    coll: CollectionStats,
    term_stats: Vec<TermStats>,
    postings: Vec<PostingsList>,
    dense_limit: usize,
}

/// Decode one LEB128 varint without panicking on truncated or overlong
/// input (the trusted in-memory decoder in `postings` indexes directly
/// and would panic — fine after validation, unacceptable during it).
fn checked_varint(data: &[u8], mut pos: usize) -> Option<(u32, usize)> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(pos)?;
        pos += 1;
        let chunk = u32::from(byte & 0x7f);
        if shift > 28 || (shift == 28 && chunk > 0x0f) {
            return None; // would overflow u32
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Some((value, pos));
        }
        shift += 7;
    }
}

/// Walk one compressed postings payload, checking it decodes to exactly
/// `count` `(doc, tf)` pairs with strictly increasing doc ids inside
/// `[base, base + range_len)`, positive frequencies, and no trailing
/// bytes. Returns the failed check, if any.
fn validate_payload(
    payload: &[u8],
    count: usize,
    base: u32,
    range_len: usize,
) -> Result<(), &'static str> {
    let mut pos = 0;
    let mut last_doc: Option<u32> = None;
    for _ in 0..count {
        let Some((delta, p)) = checked_varint(payload, pos) else {
            return Err("undecodable postings varint");
        };
        let Some((tf, p)) = checked_varint(payload, p) else {
            return Err("undecodable postings varint");
        };
        pos = p;
        let doc = match last_doc {
            None => delta,
            Some(last) => {
                if delta == 0 {
                    return Err("non-increasing doc ids in postings");
                }
                match last.checked_add(delta) {
                    Some(doc) => doc,
                    None => return Err("doc id overflow in postings"),
                }
            }
        };
        if u64::from(doc) < u64::from(base) || u64::from(doc) >= u64::from(base) + range_len as u64
        {
            return Err("posting outside shard range");
        }
        if tf == 0 {
            return Err("zero term frequency in postings");
        }
        last_doc = Some(doc);
    }
    if pos != payload.len() {
        return Err("trailing bytes in postings payload");
    }
    Ok(())
}

impl ShardArtifact {
    /// Decode an artifact produced by
    /// [`ShardedIndex::export_shard`](crate::sharded::ShardedIndex::export_shard),
    /// validating every structural invariant the scoring loop relies on.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        let mut buf = data;
        if buf.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        if buf.get_u32_le() != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        if buf.remaining() < 16 + 24 {
            return Err(DecodeError::Truncated);
        }
        let shard_id = buf.get_u32_le();
        let num_shards = buf.get_u32_le();
        let base = buf.get_u32_le();
        let range_len = buf.get_u32_le() as usize;
        let num_docs = buf.get_u64_le();
        let num_tokens = buf.get_u64_le();
        let avg_doc_len = f64::from_bits(buf.get_u64_le());

        if num_shards == 0 || shard_id >= num_shards {
            return Err(DecodeError::Corrupt("shard id out of range"));
        }
        if u64::from(base) + range_len as u64 > num_docs {
            return Err(DecodeError::Corrupt("shard range exceeds collection"));
        }
        if !avg_doc_len.is_finite() || avg_doc_len < 0.0 {
            return Err(DecodeError::Corrupt("non-finite average document length"));
        }

        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_lens = buf.get_u32_le() as usize;
        if n_lens != range_len {
            return Err(DecodeError::Corrupt("doc_lens count differs from range"));
        }
        if buf.remaining() < n_lens * 4 {
            return Err(DecodeError::Truncated);
        }
        let mut doc_lens = Vec::with_capacity(n_lens);
        for _ in 0..n_lens {
            doc_lens.push(buf.get_u32_le());
        }

        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_terms = buf.get_u32_le() as usize;
        let mut term_stats = Vec::with_capacity(n_terms);
        let mut postings = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            if buf.remaining() < 20 {
                return Err(DecodeError::Truncated);
            }
            let doc_freq = buf.get_u32_le() as u64;
            let coll_freq = buf.get_u64_le();
            let local_len = buf.get_u32_le();
            let byte_len = buf.get_u32_le() as usize;
            if buf.remaining() < byte_len {
                return Err(DecodeError::Truncated);
            }
            if u64::from(local_len) > doc_freq {
                return Err(DecodeError::Corrupt(
                    "shard postings exceed global doc freq",
                ));
            }
            let payload = &buf[..byte_len];
            validate_payload(payload, local_len as usize, base, range_len)
                .map_err(DecodeError::Corrupt)?;
            postings.push(PostingsList::from_raw(payload.to_vec().into(), local_len));
            buf.advance(byte_len);
            term_stats.push(TermStats {
                doc_freq,
                coll_freq,
            });
        }

        Ok(ShardArtifact {
            shard_id,
            num_shards,
            base,
            doc_lens,
            coll: CollectionStats {
                num_docs,
                num_tokens,
                avg_doc_len,
            },
            term_stats,
            postings,
            dense_limit: DENSE_ACCUMULATOR_LIMIT,
        })
    }

    /// Which shard of the partition this artifact holds.
    pub fn shard_id(&self) -> u32 {
        self.shard_id
    }

    /// How many shards the source partition has in total.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// First global doc id of the shard's contiguous range.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of doc ids in the shard's range.
    pub fn range_len(&self) -> usize {
        self.doc_lens.len()
    }

    /// The global collection statistics the artifact carries.
    pub fn collection_stats(&self) -> CollectionStats {
        self.coll
    }

    /// Override the dense-accumulator cutoff (mirrors
    /// [`ShardedIndex::with_dense_accumulator_limit`](crate::sharded::ShardedIndex::with_dense_accumulator_limit);
    /// the ranking is identical either way).
    pub fn with_dense_accumulator_limit(mut self, limit: usize) -> Self {
        self.dense_limit = limit;
        self
    }

    /// The shard-local top `k` for pre-analyzed query terms: exactly what
    /// this shard would contribute to an in-process scatter — same
    /// accumulation order, same `f64` bits, same `(score desc, doc asc)`
    /// ordering — ready for the router's k-way gather.
    pub fn score_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let weights = query_weights(terms);
        let model = Dph::new();
        if self.range_len() <= self.dense_limit {
            score_range_dense(self, &weights, &model, k)
        } else {
            score_range_sparse(self, &weights, &model, k)
        }
    }
}

impl RangeSource for ShardArtifact {
    fn coll(&self) -> CollectionStats {
        self.coll
    }

    fn term_stats(&self, t: TermId) -> Option<TermStats> {
        self.term_stats.get(t.index()).copied()
    }

    fn range_postings(&self, t: TermId) -> Option<&PostingsList> {
        self.postings.get(t.index())
    }

    fn doc_len(&self, doc: DocId) -> u32 {
        doc.index()
            .checked_sub(self.base as usize)
            .and_then(|i| self.doc_lens.get(i))
            .copied()
            .unwrap_or(0)
    }

    fn base(&self) -> u32 {
        self.base
    }

    fn range_len(&self) -> usize {
        self.doc_lens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::document::Document;
    use crate::search::SearchEngine;
    use crate::sharded::{merge_top_k, ShardedIndex};
    use std::sync::Arc;

    fn index() -> Arc<InvertedIndex> {
        let texts = [
            "apple iphone smartphone chip",
            "apple fruit orchard sweet",
            "apple pie cinnamon recipe",
            "weather storm rain wind",
            "apple iphone smartphone chip", // duplicate → score tie
        ];
        let mut b = IndexBuilder::new();
        for i in 0..30u32 {
            b.add(Document::new(
                i,
                format!("http://d/{i}"),
                "",
                texts[i as usize % texts.len()],
            ));
        }
        Arc::new(b.build())
    }

    fn artifacts(idx: &Arc<InvertedIndex>, shards: usize) -> Vec<ShardArtifact> {
        let sharded = ShardedIndex::build(idx.clone(), shards);
        (0..sharded.num_shards())
            .map(|s| ShardArtifact::from_bytes(&sharded.export_shard(s)).expect("valid artifact"))
            .collect()
    }

    #[test]
    fn exported_shards_score_bit_identically() {
        let idx = index();
        let oracle = SearchEngine::new(&idx);
        for shards in [1, 2, 4, 7] {
            let arts = artifacts(&idx, shards);
            for query in ["apple", "apple iphone", "weather storm", "apple apple pie"] {
                let terms = idx.analyze_query(query);
                for k in [1, 3, 10, 100] {
                    let expect = oracle.search(query, k);
                    let per_shard: Vec<_> = arts.iter().map(|a| a.score_terms(&terms, k)).collect();
                    let got = merge_top_k(per_shard, k);
                    assert_eq!(expect.len(), got.len(), "{query} k={k} shards={shards}");
                    for (e, g) in expect.iter().zip(&got) {
                        assert_eq!(e.doc, g.doc, "{query} k={k} shards={shards}");
                        assert_eq!(
                            e.score.to_bits(),
                            g.score.to_bits(),
                            "{query} k={k} shards={shards}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_fallback_matches_dense() {
        let idx = index();
        let sharded = ShardedIndex::build(idx.clone(), 3);
        let terms = idx.analyze_query("apple iphone chip");
        for s in 0..3 {
            let bytes = sharded.export_shard(s);
            let dense = ShardArtifact::from_bytes(&bytes).unwrap();
            let sparse = ShardArtifact::from_bytes(&bytes)
                .unwrap()
                .with_dense_accumulator_limit(0);
            let a = dense.score_terms(&terms, 12);
            let b = sparse.score_terms(&terms, 12);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn metadata_round_trips() {
        let idx = index();
        let sharded = ShardedIndex::build(idx.clone(), 4);
        let art = ShardArtifact::from_bytes(&sharded.export_shard(2)).unwrap();
        assert_eq!(art.shard_id(), 2);
        assert_eq!(art.num_shards(), 4);
        assert_eq!(art.base(), 16);
        assert_eq!(art.range_len(), 8);
        assert_eq!(art.collection_stats(), idx.stats());
    }

    #[test]
    fn empty_terms_and_zero_k() {
        let idx = index();
        let art = artifacts(&idx, 2).remove(0);
        assert!(art.score_terms(&[], 10).is_empty());
        assert!(art.score_terms(&idx.analyze_query("apple"), 0).is_empty());
        assert!(
            art.score_terms(&[TermId(u32::MAX)], 10).is_empty(),
            "unknown term ids score nothing"
        );
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let idx = index();
        let mut bytes = ShardedIndex::build(idx, 2).export_shard(0);
        assert_eq!(
            ShardArtifact::from_bytes(&[0u8; 64]).unwrap_err(),
            DecodeError::BadMagic
        );
        bytes[4] = 9; // version field
        assert_eq!(
            ShardArtifact::from_bytes(&bytes).unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    #[test]
    fn every_truncation_point_rejected() {
        let idx = index();
        let bytes = ShardedIndex::build(idx, 2).export_shard(1);
        for cut in 0..bytes.len() {
            assert!(
                ShardArtifact::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_postings_rejected_not_panicking() {
        let idx = index();
        let sharded = ShardedIndex::build(idx, 2);
        let clean = sharded.export_shard(0);
        // Flip every byte past the fixed header one at a time: decoding
        // must return an error or a structurally valid artifact — never
        // panic. (Flipped doc-len bytes stay valid; flipped postings
        // bytes are the dangerous case for the scoring loop.)
        let header = 4 * 6 + 8 * 3 + 4;
        let mut rejected = 0;
        for i in header..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0xFF;
            if ShardArtifact::from_bytes(&bytes).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "some corruptions must be caught");
    }

    #[test]
    fn out_of_range_posting_is_corrupt() {
        // Hand-build an artifact whose posting doc id falls outside the
        // declared shard range.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(0); // shard_id
        buf.put_u32_le(1); // num_shards
        buf.put_u32_le(0); // base
        buf.put_u32_le(2); // range_len
        buf.put_u64_le(2); // num_docs
        buf.put_u64_le(4); // num_tokens
        buf.put_u64_le(2.0f64.to_bits());
        buf.put_u32_le(2); // doc_lens
        buf.put_u32_le(2);
        buf.put_u32_le(2);
        buf.put_u32_le(1); // one term
        buf.put_u32_le(1); // doc_freq
        buf.put_u64_le(1); // coll_freq
        buf.put_u32_le(1); // local_len
        buf.put_u32_le(2); // byte_len
        buf.put_slice(&[5u8, 1u8]); // doc 5 (out of range), tf 1
        assert_eq!(
            ShardArtifact::from_bytes(&buf.to_vec()).unwrap_err(),
            DecodeError::Corrupt("posting outside shard range")
        );
    }
}
