//! Near-real-time ingest: the delta index and the sealed merge.
//!
//! The serving stack is built on immutable, deploy-time-compiled
//! artifacts; this module is what keeps that strength while documents
//! keep arriving. Freshly ingested documents land in a small immutable
//! [`DeltaIndex`] — its own analyzed mini-index over just the new
//! documents — and are searched *alongside* the sealed collection through
//! [`DeltaRetriever`], which gathers the sealed and delta rankings with
//! the same bit-identical k-way merge the sharded scatter path uses
//! ([`merge_top_k`]). In the background, [`merge_sealed`] folds the delta
//! into a new sealed [`InvertedIndex`] whose bytes are **identical to a
//! from-scratch build** over the concatenated corpus — analysis runs only
//! over the delta documents; the sealed postings are re-encoded, never
//! re-tokenized.
//!
//! Scoring honesty: the delta carries a **union statistics overlay**
//! ([`StatsOverlay`]) — the union document count, token count, average
//! length and the union per-term frequencies of every term the delta
//! touches, computed with the exact integer additions [`merge_sealed`]
//! performs — and *both* sides score against it: the sealed retrieval
//! layer through [`Retriever::retrieve_terms_overlaid`], the delta
//! through [`DeltaIndex::retrieve_union`]. Query terms are analyzed into
//! the **union** term-id space (the sealed vocabulary extended by the
//! delta's new terms in first-occurrence order, exactly the ids the merge
//! will assign), so even terms the sealed collection has never seen
//! contribute their df. A [`DeltaRetriever`] page is therefore
//! `f64`-bit-identical to a from-scratch build over the union corpus at
//! every instant — the same oracle discipline every other retrieval path
//! in this workspace holds — not merely after the background merge.

use crate::document::{DocId, Document};
use crate::dph::Dph;
use crate::index::{CollectionStats, InvertedIndex, StatsOverlay, TermStats};
use crate::postings::PostingsBuilder;
use crate::retriever::{Retrieval, Retriever};
use crate::search::{accumulate_term_contributions, query_weights, top_k, ScoredDoc};
use crate::sharded::merge_top_k;
use serpdiv_text::{TermId, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable index over documents ingested since the collection was
/// last sealed.
///
/// Document ids are **global**: the delta continues the sealed
/// collection's dense id space (`base_docs..base_docs + len`). Internally
/// the documents are re-addressed to a dense local id space and indexed
/// with the base collection's analyzer, so query analysis matches the
/// sealed index's token for token. Term ids are bridged into the
/// **union** id space (sealed ids, then delta-new terms in
/// first-occurrence order — the ids [`merge_sealed`] will assign), and a
/// union [`StatsOverlay`] is maintained so both the sealed and the delta
/// side rank with post-merge statistics before the merge happens.
#[derive(Debug)]
pub struct DeltaIndex {
    /// Documents in the sealed collection the delta extends (== the
    /// global id of the delta's first document).
    base_docs: u32,
    /// The ingested documents, global ids, in id order — kept verbatim so
    /// [`merge_sealed`] can re-analyze exactly what was ingested.
    docs: Vec<Document>,
    /// Local mini-index over the delta documents (local ids `0..len`).
    local: InvertedIndex,
    /// Union term id of each local term, indexed by local [`TermId`]:
    /// the sealed id when the base vocabulary knows the term, otherwise
    /// `base_vocab_len + n` in first-occurrence order — exactly the id
    /// the merge's re-interning will assign.
    local_to_union: Vec<TermId>,
    /// The inverse bridge, for scoring union-space query terms against
    /// the local postings.
    union_to_local: HashMap<TermId, TermId>,
    /// Union (sealed + delta) collection stats plus the union per-term
    /// stats of every term occurring in the delta. Terms the delta never
    /// touches keep their sealed statistics, which *are* the union
    /// statistics — the overlay's fallback is exact.
    overlay: StatsOverlay,
}

impl DeltaIndex {
    /// Build a delta over `docs`, extending a sealed `base` collection.
    ///
    /// # Panics
    /// Panics unless the document ids are dense and continue the base
    /// collection exactly (`base.num_docs, base.num_docs + 1, …`) — a gap
    /// or overlap would silently corrupt the global id space every layer
    /// above relies on.
    pub fn build(base: &InvertedIndex, docs: Vec<Document>) -> Self {
        let base_docs = u32::try_from(base.stats().num_docs).expect("corpus fits u32 ids");
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(
                doc.id.0,
                base_docs + i as u32,
                "delta documents must continue the sealed id space densely"
            );
        }
        let mut builder = crate::builder::IndexBuilder::with_analyzer(base.analyzer().clone());
        for (i, doc) in docs.iter().enumerate() {
            builder.add(Document::new(
                i as u32,
                doc.url.clone(),
                doc.title.clone(),
                doc.body.clone(),
            ));
        }
        let local = builder.build();

        // Bridge local term ids into the union space. Local ids are
        // assigned by first occurrence over the delta token stream; the
        // merge interns the same stream into a copy of the base
        // vocabulary, so among terms the base does not know, ascending
        // local id *is* the merge's assignment order.
        let base_vocab_len = base.vocab().len();
        let mut local_to_union = Vec::with_capacity(local.vocab().len());
        let mut next_new = u32::try_from(base_vocab_len).expect("vocabulary fits u32 ids");
        for lt in 0..local.vocab().len() {
            let term = local
                .vocab()
                .term(TermId(lt as u32))
                .expect("local vocabulary is dense");
            let union = base.vocab().id(term).unwrap_or_else(|| {
                let t = TermId(next_new);
                next_new += 1;
                t
            });
            local_to_union.push(union);
        }
        let union_to_local: HashMap<TermId, TermId> = local_to_union
            .iter()
            .enumerate()
            .map(|(lt, &u)| (u, TermId(lt as u32)))
            .collect();

        // Union statistics, with the merge's exact integer arithmetic:
        // the merge adds each delta document's token count to the sealed
        // total and divides once at the end, and sums df/cf over base
        // postings plus the delta extension runs.
        let (bs, ls) = (base.stats(), local.stats());
        let num_docs = bs.num_docs + ls.num_docs;
        let num_tokens = bs.num_tokens + ls.num_tokens;
        let avg_doc_len = if num_docs == 0 {
            0.0
        } else {
            num_tokens as f64 / num_docs as f64
        };
        let overrides = local_to_union
            .iter()
            .enumerate()
            .map(|(lt, &u)| {
                let lts = local
                    .term_stats(TermId(lt as u32))
                    .expect("local term stats are dense");
                let bts = base.term_stats(u).unwrap_or(TermStats {
                    doc_freq: 0,
                    coll_freq: 0,
                });
                (
                    u,
                    TermStats {
                        doc_freq: bts.doc_freq + lts.doc_freq,
                        coll_freq: bts.coll_freq + lts.coll_freq,
                    },
                )
            })
            .collect();
        let overlay = StatsOverlay::new(
            CollectionStats {
                num_docs,
                num_tokens,
                avg_doc_len,
            },
            overrides,
        );

        DeltaIndex {
            base_docs,
            docs,
            local,
            local_to_union,
            union_to_local,
            overlay,
        }
    }

    /// Number of documents in the sealed collection this delta extends.
    pub fn base_docs(&self) -> u32 {
        self.base_docs
    }

    /// Number of ingested documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The ingested documents (global ids, id order).
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The local mini-index (local ids `0..len`) — the substrate for
    /// delta-document snippet surrogates.
    pub fn local(&self) -> &InvertedIndex {
        &self.local
    }

    /// Map a global document id into the delta's local id space (`None`
    /// for documents outside the delta).
    pub fn local_id(&self, doc: DocId) -> Option<DocId> {
        let local = doc.0.checked_sub(self.base_docs)?;
        (usize::try_from(local).unwrap() < self.docs.len()).then_some(DocId(local))
    }

    /// The union statistics overlay: union collection stats plus the
    /// union per-term stats of every term the delta touches.
    pub fn overlay(&self) -> &StatsOverlay {
        &self.overlay
    }

    /// Union (sealed + delta) collection statistics — bit-identical to
    /// what [`merge_sealed`] will compute.
    pub fn union_stats(&self) -> CollectionStats {
        self.overlay.coll()
    }

    /// Analyze raw query text into **union** term ids: sealed ids for
    /// terms the base vocabulary knows, bridged delta ids for terms only
    /// the delta has seen. Terms unknown to both are dropped — exactly
    /// what the merged index's `analyze_query` will do.
    ///
    /// This is what lets a query term that arrived *with* the delta
    /// contribute its df before the merge; the sealed-vocabulary-only
    /// analysis the old path used silently dropped such terms.
    pub fn analyze_query_union(&self, base_vocab: &Vocabulary, query: &str) -> Vec<TermId> {
        self.local
            .analyzer()
            .analyze(query)
            .iter()
            .filter_map(|term| {
                base_vocab.id(term).or_else(|| {
                    self.local
                        .vocab()
                        .id(term)
                        .map(|lt| self.local_to_union[lt.index()])
                })
            })
            .collect()
    }

    /// Top-`k` delta documents for union-space query terms, scored with
    /// the **union** statistics overlay (DPH, ascending-union-id
    /// accumulation order), reported under **global** ids — the delta
    /// half of the bit-identity contract: every score equals, bit for
    /// bit, what a from-scratch build over the union corpus computes for
    /// the same document.
    pub fn retrieve_union(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let model = Dph::new();
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        accumulate_term_contributions(
            self.overlay.coll(),
            |t| self.overlay.term_stats(t),
            |t| {
                self.union_to_local
                    .get(&t)
                    .and_then(|&lt| self.local.postings(lt))
            },
            |doc| self.local.doc_len(doc).unwrap_or(0),
            &query_weights(terms),
            &model,
            |doc, s| *acc.entry(doc).or_insert(0.0) += s,
        );
        self.globalize(top_k(
            acc.into_iter().map(|(doc, score)| ScoredDoc { doc, score }),
            k,
        ))
    }

    /// Shift a local ranking into the global id space (a constant offset,
    /// so the `(score desc, doc asc)` order is preserved).
    fn globalize(&self, mut hits: Vec<ScoredDoc>) -> Vec<ScoredDoc> {
        for h in &mut hits {
            h.doc = DocId(h.doc.0 + self.base_docs);
        }
        hits
    }
}

/// A [`Retriever`] that searches a sealed collection and a [`DeltaIndex`]
/// side by side, gathering the union top-`k` with the same k-way merge
/// the sharded scatter path uses — the delta is just one more shard.
///
/// Queries are analyzed once into the union term-id space; the sealed
/// side scores through [`Retriever::retrieve_terms_overlaid`] under the
/// delta's union [`StatsOverlay`], the delta side through
/// [`DeltaIndex::retrieve_union`]. Because the two sides partition the
/// union document space, accumulate each document's terms in the same
/// ascending-union-id order against the same statistics, and merge under
/// [`top_k`]'s exact total order, the gathered page is `f64`-bit-identical
/// to a from-scratch build over the union corpus.
///
/// Completeness mirrors the sealed retriever's: the in-process delta can
/// never lose a shard, so a partial gather can only come from below.
pub struct DeltaRetriever {
    sealed: Arc<dyn Retriever>,
    base: Arc<InvertedIndex>,
    delta: Arc<DeltaIndex>,
}

impl DeltaRetriever {
    /// Combine `sealed` (the deployed retrieval layer over `base`) with a
    /// delta over freshly ingested documents.
    ///
    /// The bit-identity contract requires `sealed` to honor
    /// [`Retriever::retrieve_terms_overlaid`]; the retrievers the serving
    /// engine deploys ([`InvertedIndex`],
    /// [`ShardedIndex`](crate::sharded::ShardedIndex)) all do.
    pub fn new(
        sealed: Arc<dyn Retriever>,
        base: Arc<InvertedIndex>,
        delta: Arc<DeltaIndex>,
    ) -> Self {
        DeltaRetriever {
            sealed,
            base,
            delta,
        }
    }

    /// The delta being searched alongside the sealed collection.
    pub fn delta(&self) -> &Arc<DeltaIndex> {
        &self.delta
    }

    /// Score both sides of the union under the shared overlay and gather.
    /// Union-only term ids are harmless on the sealed side: the sealed
    /// postings simply do not have them, so they contribute nothing there
    /// — as in the merged index, where their postings hold only delta
    /// documents.
    fn gather(&self, terms: &[TermId], k: usize) -> Retrieval {
        let sealed = self
            .sealed
            .retrieve_terms_overlaid(terms, k, self.delta.overlay());
        let hits = merge_top_k(vec![sealed.hits, self.delta.retrieve_union(terms, k)], k);
        Retrieval {
            hits,
            complete: sealed.complete,
        }
    }
}

impl Retriever for DeltaRetriever {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        self.retrieve_with_status(query, k).hits
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        self.gather(terms, k).hits
    }

    fn retrieve_with_status(&self, query: &str, k: usize) -> Retrieval {
        let terms = self.delta.analyze_query_union(self.base.vocab(), query);
        self.gather(&terms, k)
    }

    fn retrieve_with_status_within(
        &self,
        query: &str,
        k: usize,
        budget_us: Option<u64>,
    ) -> Retrieval {
        // The retrievers a delta seals over are in-process and ignore
        // budgets (an in-flight retrieval is cheaper to finish than to
        // abandon), so there is nothing to forward the budget to.
        let _ = budget_us;
        self.retrieve_with_status(query, k)
    }
}

/// Fold a delta into its sealed base, producing a new sealed
/// [`InvertedIndex`] **bit-identical to a from-scratch build** over the
/// concatenated document stream (`IndexBuilder` over base docs then delta
/// docs): same vocabulary order, same postings bytes, same statistics —
/// so `merge_sealed(base, delta).to_bytes()` equals the from-scratch
/// `to_bytes()`.
///
/// Only the delta documents are analyzed here (they are re-interned
/// against a copy of the base vocabulary, which reproduces first-
/// occurrence term order exactly, because the delta documents come after
/// every base document); the base postings are decoded and re-encoded
/// with the delta's `(doc, tf)` extensions appended — delta ids are
/// strictly larger than every base id, so appending preserves the
/// ascending-doc postings invariant.
pub fn merge_sealed(base: &InvertedIndex, delta: &DeltaIndex) -> InvertedIndex {
    assert_eq!(
        u64::from(delta.base_docs()),
        base.stats().num_docs,
        "delta was built against a different sealed base"
    );
    let analyzer = base.analyzer.clone();
    let mut vocab = base.vocab.clone();
    let mut store = base.store.clone();
    let mut doc_lens = base.doc_lens.clone();
    let mut num_tokens = base.stats.num_tokens;

    // Analyze the delta docs against the extended vocabulary, collecting
    // per-term (doc, tf) extension runs in ascending doc order.
    let mut ext: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut tf_scratch: HashMap<TermId, u32> = HashMap::new();
    for doc in delta.docs() {
        let text = doc.full_text();
        let doc_id = doc.id.0;
        store.push(doc.clone());
        let terms = analyzer.analyze_interned(&text, &mut vocab);
        doc_lens.push(terms.len() as u32);
        num_tokens += terms.len() as u64;
        tf_scratch.clear();
        for term in terms {
            *tf_scratch.entry(term).or_insert(0) += 1;
        }
        if ext.len() < vocab.len() {
            ext.resize_with(vocab.len(), Vec::new);
        }
        let mut entries: Vec<(TermId, u32)> = tf_scratch.iter().map(|(&t, &tf)| (t, tf)).collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        for (term, tf) in entries {
            ext[term.index()].push((doc_id, tf));
        }
    }
    if ext.len() < vocab.len() {
        ext.resize_with(vocab.len(), Vec::new);
    }

    let n_terms = vocab.len();
    let mut postings = Vec::with_capacity(n_terms);
    let mut term_stats = Vec::with_capacity(n_terms);
    let mut max_tfs = Vec::with_capacity(n_terms);
    for (t, ext_list) in ext.iter().enumerate().take(n_terms) {
        let mut pb = PostingsBuilder::new();
        let mut doc_freq = 0u64;
        let mut coll_freq = 0u64;
        let mut max_tf = 0u32;
        if let Some(list) = base.postings.get(t) {
            for p in list.iter() {
                pb.push(p.doc, p.tf);
                doc_freq += 1;
                coll_freq += u64::from(p.tf);
                max_tf = max_tf.max(p.tf);
            }
        }
        for &(doc, tf) in ext_list {
            pb.push(DocId(doc), tf);
            doc_freq += 1;
            coll_freq += u64::from(tf);
            max_tf = max_tf.max(tf);
        }
        postings.push(pb.build());
        term_stats.push(TermStats {
            doc_freq,
            coll_freq,
        });
        max_tfs.push(max_tf);
    }

    let min_doc_len = doc_lens
        .iter()
        .copied()
        .filter(|&l| l > 0)
        .min()
        .unwrap_or(0);
    let num_docs = store.len() as u64;
    let avg_doc_len = if num_docs == 0 {
        0.0
    } else {
        num_tokens as f64 / num_docs as f64
    };
    InvertedIndex {
        vocab,
        postings,
        term_stats,
        doc_lens,
        max_tfs,
        min_doc_len,
        store,
        analyzer,
        stats: CollectionStats {
            num_docs,
            num_tokens,
            avg_doc_len,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn doc(i: u32, topic: &str) -> Document {
        let body = match topic {
            "tech" => "apple iphone smartphone review chip battery display",
            "food" => "apple fruit orchard sweet harvest vitamin juice",
            _ => "weather forecast rain cloud wind storm pressure",
        };
        Document::new(
            i,
            format!("http://{topic}/{i}"),
            format!("{topic} {i}"),
            body,
        )
    }

    fn base_corpus() -> Vec<Document> {
        (0..12u32)
            .map(|i| doc(i, ["tech", "food", "misc"][(i % 3) as usize]))
            .collect()
    }

    fn delta_corpus(base_docs: u32, n: u32) -> Vec<Document> {
        (0..n)
            .map(|i| doc(base_docs + i, ["food", "tech"][(i % 2) as usize]))
            .collect()
    }

    fn build(docs: &[Document]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add(d.clone());
        }
        b.build()
    }

    /// The union oracle: a from-scratch build over base + delta docs.
    fn union_build(base_docs: &[Document], fresh: &[Document]) -> InvertedIndex {
        let mut all = base_docs.to_vec();
        all.extend(fresh.iter().cloned());
        build(&all)
    }

    fn assert_bit_identical(got: &[ScoredDoc], expect: &[ScoredDoc], what: &str) {
        assert_eq!(got.len(), expect.len(), "{what}");
        for (g, e) in got.iter().zip(expect) {
            assert_eq!(g.doc, e.doc, "{what}");
            assert_eq!(
                g.score.to_bits(),
                e.score.to_bits(),
                "{what}: {} vs {}",
                g.score,
                e.score
            );
        }
    }

    #[test]
    fn merge_is_bit_identical_to_from_scratch() {
        let base_docs = base_corpus();
        let base = build(&base_docs);
        let fresh = delta_corpus(12, 6);
        let delta = DeltaIndex::build(&base, fresh.clone());
        let merged = merge_sealed(&base, &delta);

        let scratch = union_build(&base_docs, &fresh);

        // The strongest claim first: the serialized images are equal byte
        // for byte, so every downstream consumer (artifact export, shard
        // partitioning) sees a merge and a rebuild as the same index.
        assert_eq!(merged.to_bytes(), scratch.to_bytes());
        // And retrieval is bit-identical (f64 score bits).
        for query in ["apple", "apple iphone", "weather forecast", "orchard"] {
            let a = Retriever::retrieve(&merged, query, 10);
            let b = Retriever::retrieve(&scratch, query, 10);
            assert_bit_identical(&a, &b, query);
        }
    }

    #[test]
    fn merge_of_empty_delta_is_identity() {
        let base = build(&base_corpus());
        let delta = DeltaIndex::build(&base, Vec::new());
        assert!(delta.is_empty());
        let merged = merge_sealed(&base, &delta);
        assert_eq!(merged.to_bytes(), base.to_bytes());
    }

    #[test]
    fn union_overlay_matches_the_merged_statistics_exactly() {
        let base_docs = base_corpus();
        let base = build(&base_docs);
        let fresh = delta_corpus(12, 5);
        let delta = DeltaIndex::build(&base, fresh.clone());
        let merged = merge_sealed(&base, &delta);

        // Collection stats: the same integer sums and the same single
        // division, so even the f64 average is bit-equal.
        let (u, m) = (delta.union_stats(), merged.stats());
        assert_eq!(u.num_docs, m.num_docs);
        assert_eq!(u.num_tokens, m.num_tokens);
        assert_eq!(u.avg_doc_len.to_bits(), m.avg_doc_len.to_bits());

        // Every merged term's stats come out of the overlay (delta terms)
        // or the sealed index (untouched terms) — never a third value.
        for t in 0..merged.num_terms() {
            let term = TermId(t as u32);
            let expect = merged.term_stats(term).unwrap();
            let got = delta
                .overlay()
                .term_stats(term)
                .or_else(|| base.term_stats(term))
                .unwrap();
            assert_eq!(got, expect, "term {t}");
        }
    }

    #[test]
    fn delta_docs_are_searchable_under_global_ids() {
        let base = build(&base_corpus());
        let delta = DeltaIndex::build(&base, delta_corpus(12, 4));
        let terms = delta.analyze_query_union(base.vocab(), "apple fruit orchard");
        let hits = delta.retrieve_union(&terms, 10);
        assert!(!hits.is_empty());
        for h in &hits {
            assert!(h.doc.0 >= 12, "delta hits carry global ids: {:?}", h.doc);
        }
        assert_eq!(delta.local_id(DocId(12)), Some(DocId(0)));
        assert_eq!(delta.local_id(DocId(15)), Some(DocId(3)));
        assert_eq!(delta.local_id(DocId(16)), None);
        assert_eq!(delta.local_id(DocId(3)), None);
    }

    #[test]
    fn delta_retriever_merges_sealed_and_fresh() {
        let base = Arc::new(build(&base_corpus()));
        let delta = Arc::new(DeltaIndex::build(&base, delta_corpus(12, 4)));
        let retriever = DeltaRetriever::new(base.clone(), base.clone(), delta);
        let hits = retriever.retrieve("apple", 20);
        let sealed_hits = hits.iter().filter(|h| h.doc.0 < 12).count();
        let fresh_hits = hits.iter().filter(|h| h.doc.0 >= 12).count();
        assert!(
            sealed_hits > 0 && fresh_hits > 0,
            "{sealed_hits}/{fresh_hits}"
        );
        // Deterministic gather order: score desc, doc asc on ties.
        for w in hits.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].doc.0 < w[1].doc.0)
            );
        }
        let status = retriever.retrieve_with_status("apple", 20);
        assert!(status.complete);
        assert_eq!(status.hits, hits);
    }

    #[test]
    fn delta_retriever_is_bit_identical_to_from_scratch_union_build() {
        let base_docs = base_corpus();
        let fresh = delta_corpus(12, 4);
        let base = Arc::new(build(&base_docs));
        let delta = Arc::new(DeltaIndex::build(&base, fresh.clone()));
        let retriever = DeltaRetriever::new(base.clone(), base.clone(), delta);
        let scratch = union_build(&base_docs, &fresh);

        // Every page — sealed-heavy, delta-heavy, mixed, sealed-only —
        // must match the from-scratch union build bit for bit. This is
        // the contract that used to hold only *after* the merge.
        for query in [
            "apple",
            "apple iphone",
            "apple fruit orchard",
            "weather forecast",
            "orchard sweet harvest",
        ] {
            for k in [1, 3, 10, 30] {
                let got = retriever.retrieve(query, k);
                let expect = Retriever::retrieve(&scratch, query, k);
                assert_bit_identical(&got, &expect, &format!("{query} k={k}"));
            }
        }
    }

    #[test]
    fn sealed_only_queries_rank_with_union_statistics() {
        let base_docs = base_corpus();
        let fresh = delta_corpus(12, 4);
        let base = Arc::new(build(&base_docs));
        let delta = Arc::new(DeltaIndex::build(&base, fresh.clone()));
        let retriever = DeltaRetriever::new(base.clone(), base.clone(), delta);
        // No delta document mentions the weather vocabulary, so every hit
        // is sealed — but the *scores* must still be the union build's
        // (the delta changed num_docs and avg_doc_len for everyone), not
        // the sealed index's own.
        let scratch = union_build(&base_docs, &fresh);
        let got = retriever.retrieve("weather forecast", 10);
        let expect = Retriever::retrieve(&scratch, "weather forecast", 10);
        assert!(got.iter().all(|h| h.doc.0 < 12), "sealed-only query");
        assert_bit_identical(&got, &expect, "weather forecast");
    }

    #[test]
    fn delta_only_query_terms_contribute_df_before_the_merge() {
        // Regression for the silently-dropped-terms bug: "quantum" exists
        // only in the delta, so sealed-vocabulary analysis loses it and
        // the old path returned nothing for it. Union analysis must keep
        // it, rank the delta document, and agree with the from-scratch
        // union build bit for bit — including on a mixed query where the
        // term's df shifts every matching document's score.
        let base_docs = base_corpus();
        let mut fresh = delta_corpus(12, 2);
        fresh.push(Document::new(
            14,
            "http://tech/14",
            "quantum computer",
            "quantum computer qubit entanglement apple silicon",
        ));
        let base = Arc::new(build(&base_docs));
        let delta = Arc::new(DeltaIndex::build(&base, fresh.clone()));
        let retriever = DeltaRetriever::new(base.clone(), base.clone(), delta.clone());
        let scratch = union_build(&base_docs, &fresh);

        // The term is genuinely unknown to the sealed vocabulary…
        assert!(base.analyze_query("quantum").is_empty());
        // …but union analysis resolves it to the id the merge will assign.
        let union_terms = delta.analyze_query_union(base.vocab(), "quantum");
        assert_eq!(union_terms.len(), 1);
        assert!(union_terms[0].index() >= base.vocab().len());

        for query in ["quantum", "quantum apple", "qubit entanglement apple"] {
            let got = retriever.retrieve(query, 10);
            let expect = Retriever::retrieve(&scratch, query, 10);
            assert!(!got.is_empty(), "{query}: delta-only terms must match");
            assert_bit_identical(&got, &expect, query);
        }
    }

    #[test]
    fn retrieve_terms_accepts_base_vocabulary_ids() {
        let base = Arc::new(build(&base_corpus()));
        let delta = Arc::new(DeltaIndex::build(&base, delta_corpus(12, 4)));
        let terms = base.analyze_query("apple orchard");
        assert!(!terms.is_empty());
        // Base term ids are union term ids (the sealed vocabulary is a
        // prefix of the union vocabulary), so they address the delta's
        // postings directly.
        let hits = delta.retrieve_union(&terms, 10);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.doc.0 >= 12));
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn gapped_delta_ids_are_rejected() {
        let base = build(&base_corpus());
        let _ = DeltaIndex::build(&base, vec![doc(14, "tech")]);
    }
}
