//! Near-real-time ingest: the delta index and the sealed merge.
//!
//! The serving stack is built on immutable, deploy-time-compiled
//! artifacts; this module is what keeps that strength while documents
//! keep arriving. Freshly ingested documents land in a small immutable
//! [`DeltaIndex`] — its own analyzed mini-index over just the new
//! documents — and are searched *alongside* the sealed collection through
//! [`DeltaRetriever`], which gathers the sealed and delta rankings with
//! the same bit-identical k-way merge the sharded scatter path uses
//! ([`merge_top_k`]). In the background, [`merge_sealed`] folds the delta
//! into a new sealed [`InvertedIndex`] whose bytes are **identical to a
//! from-scratch build** over the concatenated corpus — analysis runs only
//! over the delta documents; the sealed postings are re-encoded, never
//! re-tokenized.
//!
//! Scoring honesty: while a document lives in the delta it is ranked with
//! the delta's *local* collection statistics (document frequency, average
//! length), not the merged globals — the classic NRT-segment
//! approximation. Rankings are still fully deterministic per
//! (sealed, delta) pair; once the background merge seals a new
//! generation, scores are bit-identical to a from-scratch build.

use crate::document::{DocId, Document};
use crate::index::{CollectionStats, InvertedIndex, TermStats};
use crate::postings::PostingsBuilder;
use crate::retriever::{Retrieval, Retriever};
use crate::search::{ScoredDoc, SearchEngine};
use crate::sharded::merge_top_k;
use serpdiv_text::{TermId, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable index over documents ingested since the collection was
/// last sealed.
///
/// Document ids are **global**: the delta continues the sealed
/// collection's dense id space (`base_docs..base_docs + len`). Internally
/// the documents are re-addressed to a dense local id space and indexed
/// with the base collection's analyzer, so query analysis matches the
/// sealed index's token for token.
#[derive(Debug)]
pub struct DeltaIndex {
    /// Documents in the sealed collection the delta extends (== the
    /// global id of the delta's first document).
    base_docs: u32,
    /// The ingested documents, global ids, in id order — kept verbatim so
    /// [`merge_sealed`] can re-analyze exactly what was ingested.
    docs: Vec<Document>,
    /// Local mini-index over the delta documents (local ids `0..len`).
    local: InvertedIndex,
}

impl DeltaIndex {
    /// Build a delta over `docs`, extending a sealed `base` collection.
    ///
    /// # Panics
    /// Panics unless the document ids are dense and continue the base
    /// collection exactly (`base.num_docs, base.num_docs + 1, …`) — a gap
    /// or overlap would silently corrupt the global id space every layer
    /// above relies on.
    pub fn build(base: &InvertedIndex, docs: Vec<Document>) -> Self {
        let base_docs = u32::try_from(base.stats().num_docs).expect("corpus fits u32 ids");
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(
                doc.id.0,
                base_docs + i as u32,
                "delta documents must continue the sealed id space densely"
            );
        }
        let mut builder = crate::builder::IndexBuilder::with_analyzer(base.analyzer().clone());
        for (i, doc) in docs.iter().enumerate() {
            builder.add(Document::new(
                i as u32,
                doc.url.clone(),
                doc.title.clone(),
                doc.body.clone(),
            ));
        }
        DeltaIndex {
            base_docs,
            docs,
            local: builder.build(),
        }
    }

    /// Number of documents in the sealed collection this delta extends.
    pub fn base_docs(&self) -> u32 {
        self.base_docs
    }

    /// Number of ingested documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The ingested documents (global ids, id order).
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The local mini-index (local ids `0..len`) — the substrate for
    /// delta-document snippet surrogates.
    pub fn local(&self) -> &InvertedIndex {
        &self.local
    }

    /// Map a global document id into the delta's local id space (`None`
    /// for documents outside the delta).
    pub fn local_id(&self, doc: DocId) -> Option<DocId> {
        let local = doc.0.checked_sub(self.base_docs)?;
        (usize::try_from(local).unwrap() < self.docs.len()).then_some(DocId(local))
    }

    /// Top-`k` delta documents for a raw query, ranked with the delta's
    /// local statistics, reported under **global** ids.
    pub fn retrieve_global(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        self.globalize(SearchEngine::new(&self.local).search(query, k))
    }

    /// Top-`k` delta documents for terms pre-analyzed against the *base*
    /// vocabulary. Term ids are translated through their surface strings
    /// into the delta's own vocabulary (terms the delta never saw simply
    /// contribute nothing).
    pub fn retrieve_terms_global(
        &self,
        base_vocab: &Vocabulary,
        terms: &[TermId],
        k: usize,
    ) -> Vec<ScoredDoc> {
        let local_terms: Vec<TermId> = terms
            .iter()
            .filter_map(|&t| base_vocab.term(t))
            .filter_map(|s| self.local.vocab().id(s))
            .collect();
        self.globalize(SearchEngine::new(&self.local).search_terms(&local_terms, k))
    }

    /// Shift a local ranking into the global id space (a constant offset,
    /// so the `(score desc, doc asc)` order is preserved).
    fn globalize(&self, mut hits: Vec<ScoredDoc>) -> Vec<ScoredDoc> {
        for h in &mut hits {
            h.doc = DocId(h.doc.0 + self.base_docs);
        }
        hits
    }
}

/// A [`Retriever`] that searches a sealed collection and a [`DeltaIndex`]
/// side by side, gathering the union top-`k` with the same k-way merge
/// the sharded scatter path uses — the delta is just one more shard.
///
/// Completeness mirrors the sealed retriever's: the in-process delta can
/// never lose a shard, so a partial gather can only come from below.
pub struct DeltaRetriever {
    sealed: Arc<dyn Retriever>,
    base: Arc<InvertedIndex>,
    delta: Arc<DeltaIndex>,
}

impl DeltaRetriever {
    /// Combine `sealed` (the deployed retrieval layer over `base`) with a
    /// delta over freshly ingested documents.
    pub fn new(
        sealed: Arc<dyn Retriever>,
        base: Arc<InvertedIndex>,
        delta: Arc<DeltaIndex>,
    ) -> Self {
        DeltaRetriever {
            sealed,
            base,
            delta,
        }
    }

    /// The delta being searched alongside the sealed collection.
    pub fn delta(&self) -> &Arc<DeltaIndex> {
        &self.delta
    }
}

impl Retriever for DeltaRetriever {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        merge_top_k(
            vec![
                self.sealed.retrieve(query, k),
                self.delta.retrieve_global(query, k),
            ],
            k,
        )
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        merge_top_k(
            vec![
                self.sealed.retrieve_terms(terms, k),
                self.delta
                    .retrieve_terms_global(self.base.vocab(), terms, k),
            ],
            k,
        )
    }

    fn retrieve_with_status(&self, query: &str, k: usize) -> Retrieval {
        self.retrieve_with_status_within(query, k, None)
    }

    fn retrieve_with_status_within(
        &self,
        query: &str,
        k: usize,
        budget_us: Option<u64>,
    ) -> Retrieval {
        let sealed = self.sealed.retrieve_with_status_within(query, k, budget_us);
        let hits = merge_top_k(vec![sealed.hits, self.delta.retrieve_global(query, k)], k);
        Retrieval {
            hits,
            complete: sealed.complete,
        }
    }
}

/// Fold a delta into its sealed base, producing a new sealed
/// [`InvertedIndex`] **bit-identical to a from-scratch build** over the
/// concatenated document stream (`IndexBuilder` over base docs then delta
/// docs): same vocabulary order, same postings bytes, same statistics —
/// so `merge_sealed(base, delta).to_bytes()` equals the from-scratch
/// `to_bytes()`.
///
/// Only the delta documents are analyzed here (they are re-interned
/// against a copy of the base vocabulary, which reproduces first-
/// occurrence term order exactly, because the delta documents come after
/// every base document); the base postings are decoded and re-encoded
/// with the delta's `(doc, tf)` extensions appended — delta ids are
/// strictly larger than every base id, so appending preserves the
/// ascending-doc postings invariant.
pub fn merge_sealed(base: &InvertedIndex, delta: &DeltaIndex) -> InvertedIndex {
    assert_eq!(
        u64::from(delta.base_docs()),
        base.stats().num_docs,
        "delta was built against a different sealed base"
    );
    let analyzer = base.analyzer.clone();
    let mut vocab = base.vocab.clone();
    let mut store = base.store.clone();
    let mut doc_lens = base.doc_lens.clone();
    let mut num_tokens = base.stats.num_tokens;

    // Analyze the delta docs against the extended vocabulary, collecting
    // per-term (doc, tf) extension runs in ascending doc order.
    let mut ext: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut tf_scratch: HashMap<TermId, u32> = HashMap::new();
    for doc in delta.docs() {
        let text = doc.full_text();
        let doc_id = doc.id.0;
        store.push(doc.clone());
        let terms = analyzer.analyze_interned(&text, &mut vocab);
        doc_lens.push(terms.len() as u32);
        num_tokens += terms.len() as u64;
        tf_scratch.clear();
        for term in terms {
            *tf_scratch.entry(term).or_insert(0) += 1;
        }
        if ext.len() < vocab.len() {
            ext.resize_with(vocab.len(), Vec::new);
        }
        let mut entries: Vec<(TermId, u32)> = tf_scratch.iter().map(|(&t, &tf)| (t, tf)).collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        for (term, tf) in entries {
            ext[term.index()].push((doc_id, tf));
        }
    }
    if ext.len() < vocab.len() {
        ext.resize_with(vocab.len(), Vec::new);
    }

    let n_terms = vocab.len();
    let mut postings = Vec::with_capacity(n_terms);
    let mut term_stats = Vec::with_capacity(n_terms);
    let mut max_tfs = Vec::with_capacity(n_terms);
    for (t, ext_list) in ext.iter().enumerate().take(n_terms) {
        let mut pb = PostingsBuilder::new();
        let mut doc_freq = 0u64;
        let mut coll_freq = 0u64;
        let mut max_tf = 0u32;
        if let Some(list) = base.postings.get(t) {
            for p in list.iter() {
                pb.push(p.doc, p.tf);
                doc_freq += 1;
                coll_freq += u64::from(p.tf);
                max_tf = max_tf.max(p.tf);
            }
        }
        for &(doc, tf) in ext_list {
            pb.push(DocId(doc), tf);
            doc_freq += 1;
            coll_freq += u64::from(tf);
            max_tf = max_tf.max(tf);
        }
        postings.push(pb.build());
        term_stats.push(TermStats {
            doc_freq,
            coll_freq,
        });
        max_tfs.push(max_tf);
    }

    let min_doc_len = doc_lens
        .iter()
        .copied()
        .filter(|&l| l > 0)
        .min()
        .unwrap_or(0);
    let num_docs = store.len() as u64;
    let avg_doc_len = if num_docs == 0 {
        0.0
    } else {
        num_tokens as f64 / num_docs as f64
    };
    InvertedIndex {
        vocab,
        postings,
        term_stats,
        doc_lens,
        max_tfs,
        min_doc_len,
        store,
        analyzer,
        stats: CollectionStats {
            num_docs,
            num_tokens,
            avg_doc_len,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn doc(i: u32, topic: &str) -> Document {
        let body = match topic {
            "tech" => "apple iphone smartphone review chip battery display",
            "food" => "apple fruit orchard sweet harvest vitamin juice",
            _ => "weather forecast rain cloud wind storm pressure",
        };
        Document::new(
            i,
            format!("http://{topic}/{i}"),
            format!("{topic} {i}"),
            body,
        )
    }

    fn base_corpus() -> Vec<Document> {
        (0..12u32)
            .map(|i| doc(i, ["tech", "food", "misc"][(i % 3) as usize]))
            .collect()
    }

    fn delta_corpus(base_docs: u32, n: u32) -> Vec<Document> {
        (0..n)
            .map(|i| doc(base_docs + i, ["food", "tech"][(i % 2) as usize]))
            .collect()
    }

    fn build(docs: &[Document]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add(d.clone());
        }
        b.build()
    }

    #[test]
    fn merge_is_bit_identical_to_from_scratch() {
        let base_docs = base_corpus();
        let base = build(&base_docs);
        let fresh = delta_corpus(12, 6);
        let delta = DeltaIndex::build(&base, fresh.clone());
        let merged = merge_sealed(&base, &delta);

        let mut all = base_docs.clone();
        all.extend(fresh);
        let scratch = build(&all);

        // The strongest claim first: the serialized images are equal byte
        // for byte, so every downstream consumer (artifact export, shard
        // partitioning) sees a merge and a rebuild as the same index.
        assert_eq!(merged.to_bytes(), scratch.to_bytes());
        // And retrieval is bit-identical (f64 score bits).
        for query in ["apple", "apple iphone", "weather forecast", "orchard"] {
            let a = Retriever::retrieve(&merged, query, 10);
            let b = Retriever::retrieve(&scratch, query, 10);
            assert_eq!(a.len(), b.len(), "{query}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc, "{query}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{query}");
            }
        }
    }

    #[test]
    fn merge_of_empty_delta_is_identity() {
        let base = build(&base_corpus());
        let delta = DeltaIndex::build(&base, Vec::new());
        assert!(delta.is_empty());
        let merged = merge_sealed(&base, &delta);
        assert_eq!(merged.to_bytes(), base.to_bytes());
    }

    #[test]
    fn delta_docs_are_searchable_under_global_ids() {
        let base = build(&base_corpus());
        let delta = DeltaIndex::build(&base, delta_corpus(12, 4));
        let hits = delta.retrieve_global("apple fruit orchard", 10);
        assert!(!hits.is_empty());
        for h in &hits {
            assert!(h.doc.0 >= 12, "delta hits carry global ids: {:?}", h.doc);
        }
        assert_eq!(delta.local_id(DocId(12)), Some(DocId(0)));
        assert_eq!(delta.local_id(DocId(15)), Some(DocId(3)));
        assert_eq!(delta.local_id(DocId(16)), None);
        assert_eq!(delta.local_id(DocId(3)), None);
    }

    #[test]
    fn delta_retriever_merges_sealed_and_fresh() {
        let base = Arc::new(build(&base_corpus()));
        let delta = Arc::new(DeltaIndex::build(&base, delta_corpus(12, 4)));
        let retriever = DeltaRetriever::new(base.clone(), base.clone(), delta);
        let hits = retriever.retrieve("apple", 20);
        let sealed_hits = hits.iter().filter(|h| h.doc.0 < 12).count();
        let fresh_hits = hits.iter().filter(|h| h.doc.0 >= 12).count();
        assert!(
            sealed_hits > 0 && fresh_hits > 0,
            "{sealed_hits}/{fresh_hits}"
        );
        // Deterministic gather order: score desc, doc asc on ties.
        for w in hits.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].doc.0 < w[1].doc.0)
            );
        }
        let status = retriever.retrieve_with_status("apple", 20);
        assert!(status.complete);
        assert_eq!(status.hits, hits);
    }

    #[test]
    fn delta_retriever_is_transparent_for_sealed_only_queries() {
        let base = Arc::new(build(&base_corpus()));
        let delta = Arc::new(DeltaIndex::build(&base, delta_corpus(12, 4)));
        let retriever = DeltaRetriever::new(base.clone(), base.clone(), delta);
        // No delta document mentions the weather vocabulary: the gather
        // must be exactly the sealed ranking, score bits included.
        let merged = retriever.retrieve("weather forecast", 10);
        let sealed = Retriever::retrieve(base.as_ref(), "weather forecast", 10);
        assert_eq!(merged.len(), sealed.len());
        for (a, b) in merged.iter().zip(&sealed) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn retrieve_terms_translates_base_vocabulary() {
        let base = Arc::new(build(&base_corpus()));
        let delta = Arc::new(DeltaIndex::build(&base, delta_corpus(12, 4)));
        let terms = base.analyze_query("apple orchard");
        assert!(!terms.is_empty());
        let hits = delta.retrieve_terms_global(base.vocab(), &terms, 10);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.doc.0 >= 12));
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn gapped_delta_ids_are_rejected() {
        let base = build(&base_corpus());
        let _ = DeltaIndex::build(&base, vec![doc(14, "tech")]);
    }
}
