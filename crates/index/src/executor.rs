//! The persistent scatter-scoring executor.
//!
//! [`ShardedIndex`](crate::sharded::ShardedIndex)'s original parallel path
//! spawned scoped threads **per query** — fine on an idle box, a steady
//! tax under serving saturation, where every request pays thread start-up
//! and a fresh dense-accumulator allocation while competing with every
//! other request's freshly spawned scorers. [`ScoringExecutor`] is the
//! long-lived replacement: a fixed pool of workers fed by a lock-light
//! injector queue. A query's `N` shard-scoring tasks are submitted as one
//! batch and gathered through a per-query latch — no thread spawn, and
//! because the workers are permanent their thread-local scoring scratch
//! (dense accumulator + touched bitmap) is allocated once and reused for
//! the life of the process.
//!
//! # Sharing and composition
//!
//! One executor is meant to be shared by *every* index and serving engine
//! in the process (`Arc<ScoringExecutor>`): scatter parallelism then
//! composes with request parallelism — threads that can be scoring at
//! once are bounded by `request_workers + executor_threads` (each
//! request worker helps drain only its own batch while it would
//! otherwise block) — instead of multiplying with it the way per-query
//! spawning does (`request_workers × shards` transient threads at
//! worst).
//!
//! # Progress guarantee
//!
//! The submitting thread does not idle behind the latch: after enqueueing
//! its batch it *helps*, claiming its own batch's unclaimed tasks until
//! none remain, and only then blocks on the latch for stragglers claimed
//! by pool workers. Every batch therefore completes even when the pool is
//! saturated by other queries — with `executor_threads = 1` and dozens of
//! concurrent submitters there is still no deadlock, because each
//! submitter can always finish its own work (asserted by the
//! `concurrency_soak` suite).
//!
//! # Panic containment
//!
//! A task that panics poisons **only its own batch**: the worker catches
//! the unwind, stores the payload, releases the latch, and goes back to
//! the queue. [`ScoringExecutor::scope_run`] returns the payload as an
//! `Err` so the submitter can re-raise it on the query's own thread
//! ([`ShardedIndex`](crate::sharded::ShardedIndex) does exactly that);
//! the next batch on the same worker runs normally (see the
//! `worker_survives_a_panicking_task` regression test).

use crate::search::ScoredDoc;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The panic payload of a scoring task, surfaced to the submitter.
pub type TaskPanic = Box<dyn std::any::Any + Send + 'static>;

/// A borrowed shard-scoring function: called with the task index
/// (`0..n`), returns that shard's top-`k`. Borrows freely from the
/// submitter's stack — [`ScoringExecutor::scope_run`] does not return
/// until every task has finished, which is what makes the borrow sound.
type ScopedTask<'a> = &'a (dyn Fn(usize) -> Vec<ScoredDoc> + Sync);

/// One in-flight query's scatter batch: the type-erased task, the claim
/// counter the workers (and the helping submitter) race on, the result
/// slots, and the completion latch.
struct Batch {
    /// Erased [`ScopedTask`]; only dereferenced between a successful
    /// claim (`next < n`) and the matching latch countdown, all of which
    /// happen before `scope_run` returns — so the pointee outlives every
    /// dereference even though the lifetime is erased.
    task: *const (dyn Fn(usize) -> Vec<ScoredDoc> + Sync),
    n: usize,
    /// Next unclaimed task index; values `>= n` mean "nothing left".
    next: AtomicUsize,
    /// Per-task result slots, written by whichever thread ran the task.
    results: Mutex<Vec<Option<Vec<ScoredDoc>>>>,
    /// First panic payload of the batch (subsequent ones are dropped).
    panic: Mutex<Option<TaskPanic>>,
    /// Latch: count of tasks not yet finished, plus the wakeup signal the
    /// submitter blocks on once its batch is fully claimed.
    remaining: Mutex<usize>,
    done: Condvar,
}

// SAFETY: `task` is a raw pointer only because its lifetime is erased;
// the pointee is `Sync` (required by `ScopedTask`) and `scope_run`
// guarantees it outlives all dereferences. Every other field is already
// `Send + Sync`.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claim and run one task. Returns `false` when the batch has no
    /// unclaimed tasks left (the ticket was stale).
    fn run_one(&self) -> bool {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.n {
            return false;
        }
        // SAFETY: idx < n, so the submitter is still parked in
        // `scope_run` (the latch it waits on counts this task) and the
        // borrowed closure is alive.
        let task = unsafe { &*self.task };
        // Chaos sits inside the catch so an injected panic exercises the
        // same containment path as a real scoring panic.
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = serpdiv_chaos::failpoint("executor.task");
            task(idx)
        })) {
            Ok(hits) => self.results.lock().unwrap_or_else(|e| e.into_inner())[idx] = Some(hits),
            Err(payload) => {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
        }
        // Count down the latch — also on panic, so a poisoned batch
        // releases its submitter instead of wedging it.
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
        true
    }
}

/// The injector queue the pool workers sleep on: one ticket per worker a
/// batch could occupy (a ticket is just a handle to its batch; the task
/// *indexes* are claimed from the batch's own counter, so the helping
/// submitter and the pool workers race without double-running anything).
struct Injector {
    /// Tickets and the shutdown flag under ONE mutex: both are condvar
    /// state, and guarding them together makes the no-lost-wakeup
    /// invariant structural — neither can change while a worker is
    /// between its predicate check and `wait`.
    state: Mutex<InjectorState>,
    available: Condvar,
}

struct InjectorState {
    queue: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

/// A shared, long-lived pool of shard-scoring workers.
///
/// Create one per process (or per deployment) and attach it everywhere
/// with
/// [`ShardedIndex::with_executor`](crate::sharded::ShardedIndex::with_executor);
/// see the module docs for the design. Dropping the last
/// `Arc<ScoringExecutor>` shuts the pool down cleanly: workers finish the
/// task they are on and exit (no submitter can be in flight at that
/// point, since [`Self::scope_run`] borrows the executor).
pub struct ScoringExecutor {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ScoringExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoringExecutor")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ScoringExecutor {
    /// Spawn a pool of `threads` scoring workers (at least one).
    pub fn new(threads: usize) -> Self {
        let injector = Arc::new(Injector {
            state: Mutex::new(InjectorState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let injector = injector.clone();
                std::thread::Builder::new()
                    .name(format!("serpdiv-score-{i}"))
                    .spawn(move || Self::worker_loop(&injector))
                    .expect("failed to spawn scoring worker")
            })
            .collect();
        ScoringExecutor { injector, workers }
    }

    /// Number of pool threads (the submitting thread additionally helps
    /// drain its own batch, so a query can progress even at 1).
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    fn worker_loop(injector: &Injector) {
        loop {
            let ticket = {
                let mut state = injector.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(ticket) = state.queue.pop_front() {
                        break ticket;
                    }
                    state = injector
                        .available
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            // Drain the batch: claims are raced via the batch's atomic
            // counter, so looping here and the submitter helping never
            // double-run a task. Stale tickets (the batch already fully
            // claimed) fall straight through.
            while ticket.run_one() {}
        }
    }

    /// Run `n` tasks (`task(0) .. task(n-1)`) through the pool, blocking
    /// until all have finished, and return their results in task order.
    ///
    /// The calling thread helps: it claims its own batch's tasks while
    /// the pool is busy, so completion never depends on pool capacity.
    /// If any task panicked, the first payload is returned as `Err` after
    /// the whole batch has settled (the pool itself is unaffected).
    pub fn scope_run(
        &self,
        n: usize,
        task: ScopedTask<'_>,
    ) -> Result<Vec<Vec<ScoredDoc>>, TaskPanic> {
        if n == 0 {
            return Ok(Vec::new());
        }
        // SAFETY: lifetime erasure only — the pointee lives until this
        // function returns, and the latch below keeps every dereference
        // before that point (see the `Batch::task` invariant).
        let task: *const (dyn Fn(usize) -> Vec<ScoredDoc> + Sync) =
            unsafe { std::mem::transmute(std::ptr::from_ref(task)) };
        let batch = Arc::new(Batch {
            task,
            n,
            next: AtomicUsize::new(0),
            results: Mutex::new((0..n).map(|_| None).collect()),
            panic: Mutex::new(None),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        // One ticket per worker that could usefully participate — each
        // popped ticket drains the batch via the claim counter, so more
        // tickets than workers would only produce stale pops contending
        // on the queue mutex. One lock acquisition enqueues all of them.
        let tickets = n.min(self.workers.len());
        {
            let mut state = self
                .injector
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            state.queue.extend((0..tickets).map(|_| batch.clone()));
        }
        // Wake exactly as many workers as there are tickets — waking the
        // whole pool for a 2-shard batch is pure queue-mutex contention.
        // (Busy workers re-check the queue after their current batch, and
        // the submitter drains its own batch regardless, so a wakeup
        // landing on no waiter costs nothing and loses nothing.)
        for _ in 0..tickets {
            self.injector.available.notify_one();
        }
        // Help: run unclaimed tasks of this batch on the submitting
        // thread (its thread-local scratch is as pinned as a worker's).
        while batch.run_one() {}
        // Latch: wait for tasks claimed by pool workers.
        {
            let mut remaining = batch.remaining.lock().unwrap_or_else(|e| e.into_inner());
            while *remaining > 0 {
                remaining = batch
                    .done
                    .wait(remaining)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        if let Some(payload) = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
            return Err(payload);
        }
        let results = std::mem::take(&mut *batch.results.lock().unwrap_or_else(|e| e.into_inner()));
        Ok(results
            .into_iter()
            .map(|r| r.expect("latched batch has a result per task"))
            .collect())
    }
}

impl Drop for ScoringExecutor {
    fn drop(&mut self) {
        // The flag lives under the queue mutex, so a worker that already
        // checked it cannot be between check and `wait` while this store
        // happens — it either sees the flag before parking or is parked
        // by the time the lock releases, and the notify reaches it.
        self.injector
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.injector.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocId;
    use std::sync::atomic::AtomicU32;

    fn doc(id: u32, score: f64) -> ScoredDoc {
        ScoredDoc {
            doc: DocId(id),
            score,
        }
    }

    #[test]
    fn results_come_back_in_task_order() {
        let exec = ScoringExecutor::new(3);
        for n in [1, 2, 7, 32] {
            let out = exec
                .scope_run(n, &|i| vec![doc(i as u32, i as f64)])
                .expect("no panics");
            assert_eq!(out.len(), n);
            for (i, hits) in out.iter().enumerate() {
                assert_eq!(hits, &vec![doc(i as u32, i as f64)], "task {i} of {n}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let exec = ScoringExecutor::new(2);
        assert!(exec.scope_run(0, &|_| unreachable!()).unwrap().is_empty());
    }

    #[test]
    fn thread_count_clamps_to_one() {
        let exec = ScoringExecutor::new(0);
        assert_eq!(exec.num_threads(), 1);
        assert_eq!(
            exec.scope_run(4, &|i| vec![doc(i as u32, 0.0)])
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn panicking_task_poisons_only_its_batch() {
        let exec = ScoringExecutor::new(1);
        let err = exec
            .scope_run(4, &|i| {
                if i == 2 {
                    panic!("injected shard fault");
                }
                vec![doc(i as u32, 1.0)]
            })
            .expect_err("task 2 panicked");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "injected shard fault");
    }

    #[test]
    fn worker_survives_a_panicking_task() {
        // Regression: after a poisoned batch, the *same* single worker
        // must serve the next batch normally — the pool is not wedged.
        let exec = ScoringExecutor::new(1);
        for round in 0..3 {
            assert!(exec.scope_run(3, &|_| panic!("boom {round}")).is_err());
            let ok = exec
                .scope_run(3, &|i| vec![doc(i as u32, round as f64)])
                .expect("pool healthy after panic");
            assert_eq!(ok.len(), 3);
            assert_eq!(ok[1], vec![doc(1, round as f64)]);
        }
    }

    #[test]
    fn many_submitters_share_one_worker_without_deadlock() {
        // 8 concurrent submitters × 1 pool thread: the helping submitter
        // guarantees progress no matter how the queue interleaves.
        let exec = Arc::new(ScoringExecutor::new(1));
        let total = Arc::new(AtomicU32::new(0));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let exec = exec.clone();
                let total = total.clone();
                scope.spawn(move || {
                    for round in 0..20 {
                        let out = exec
                            .scope_run(5, &|i| vec![doc(t * 1000 + i as u32, round as f64)])
                            .expect("no panics");
                        assert_eq!(out.len(), 5);
                        assert_eq!(out[3][0].doc, DocId(t * 1000 + 3));
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 20);
    }

    #[test]
    fn drop_with_idle_pool_does_not_hang() {
        let exec = ScoringExecutor::new(4);
        let _ = exec.scope_run(2, &|i| vec![doc(i as u32, 0.0)]);
        drop(exec); // joins all four workers
    }
}
