//! Doc-at-a-time evaluation with MaxScore dynamic pruning.
//!
//! [`SearchEngine`](crate::search::SearchEngine) evaluates term-at-a-time:
//! simple, but it materializes an accumulator per matching document. This
//! module provides the production alternative used by large-scale engines
//! (Turtle & Flood's **MaxScore**): postings cursors advance document-at-
//! a-time, query terms are split into *essential* and *non-essential*
//! lists by their score upper bounds, and documents that cannot enter the
//! current top-k are skipped without scoring.
//!
//! Pruning is only sound for models with *non-negative* per-term scores
//! (skipping a term must never increase a document's score): BM25
//! qualifies; DPH does not (its DFR term can go negative), so
//! [`MaxScoreEngine::new`] takes the model explicitly and the equivalence
//! tests run against BM25.
//!
//! Per-term upper bounds come from index metadata: the largest term
//! frequency in any posting ([`InvertedIndex::max_tf`]) combined with the
//! shortest document in the collection gives a conservative bound on the
//! per-term contribution.

use crate::document::DocId;
use crate::index::InvertedIndex;
use crate::postings::{Posting, PostingsIter};
use crate::search::{top_k, RankingModel, ScoredDoc};
use serpdiv_text::TermId;

/// A postings cursor with the term's score upper bound.
struct Cursor<'a> {
    iter: PostingsIter<'a>,
    current: Option<Posting>,
    term: TermId,
    upper_bound: f64,
}

impl Cursor<'_> {
    fn advance(&mut self) {
        self.current = self.iter.next();
    }

    /// Advance to the first posting with doc ≥ `target`.
    fn seek(&mut self, target: DocId) {
        while let Some(p) = self.current {
            if p.doc >= target {
                break;
            }
            self.advance();
        }
    }
}

/// Doc-at-a-time evaluator with MaxScore pruning.
pub struct MaxScoreEngine<'a, M: RankingModel> {
    index: &'a InvertedIndex,
    model: M,
}

impl<'a, M: RankingModel> MaxScoreEngine<'a, M> {
    /// Engine over `index` with a *non-negative* ranking model.
    pub fn new(index: &'a InvertedIndex, model: M) -> Self {
        MaxScoreEngine { index, model }
    }

    /// Top-`k` retrieval for a raw query string.
    pub fn search(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        let terms = self.index.analyze_query(query);
        self.search_terms(&terms, k)
    }

    /// Top-`k` retrieval for analyzed terms (duplicates are dropped: the
    /// MaxScore partition works on distinct lists; multiplicity weighting
    /// is applied per distinct term as in the TAAT engine).
    pub fn search_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let coll = self.index.stats();
        let min_dl = self.index.min_doc_len().max(1);

        // Distinct terms with multiplicities.
        let mut distinct: Vec<(TermId, u32)> = Vec::new();
        for &t in terms {
            match distinct.iter_mut().find(|(d, _)| *d == t) {
                Some((_, w)) => *w += 1,
                None => distinct.push((t, 1)),
            }
        }

        // Cursors with upper bounds, sorted ascending by bound (MaxScore's
        // canonical order: non-essential prefix, essential suffix).
        let mut cursors: Vec<(Cursor<'_>, u32)> = Vec::new();
        for (term, weight) in distinct {
            let (Some(postings), Some(stats)) =
                (self.index.postings(term), self.index.term_stats(term))
            else {
                continue;
            };
            if postings.is_empty() {
                continue;
            }
            let max_tf = self.index.max_tf(term);
            let ub = self.model.score(max_tf, min_dl, stats, coll).max(0.0) * f64::from(weight);
            let mut iter = postings.iter();
            let current = iter.next();
            cursors.push((
                Cursor {
                    iter,
                    current,
                    term,
                    upper_bound: ub,
                },
                weight,
            ));
        }
        if cursors.is_empty() {
            return Vec::new();
        }
        cursors.sort_by(|a, b| a.0.upper_bound.total_cmp(&b.0.upper_bound));

        // Prefix sums of upper bounds: bound_prefix[i] = Σ ub of cursors
        // 0..i (the non-essential part when the split is at i).
        let mut results: Vec<ScoredDoc> = Vec::new();
        let mut threshold = f64::NEG_INFINITY; // score of the weakest kept
        let mut heap_scores: Vec<f64> = Vec::new(); // scores of kept docs

        loop {
            let bound_prefix: Vec<f64> = {
                let mut acc = 0.0;
                let mut v = Vec::with_capacity(cursors.len() + 1);
                v.push(0.0);
                for (c, _) in &cursors {
                    acc += c.upper_bound;
                    v.push(acc);
                }
                v
            };
            // First essential list: smallest split point where the
            // non-essential bound alone cannot beat the threshold.
            let mut first_essential = 0usize;
            if heap_scores.len() >= k {
                while first_essential < cursors.len()
                    && bound_prefix[first_essential + 1] <= threshold
                {
                    first_essential += 1;
                }
            }
            if first_essential >= cursors.len() {
                break; // no essential list can improve the top-k
            }

            // Next candidate: smallest current doc among essential lists.
            let mut pivot: Option<DocId> = None;
            for (c, _) in &cursors[first_essential..] {
                if let Some(p) = c.current {
                    pivot = Some(match pivot {
                        None => p.doc,
                        Some(d) => d.min(p.doc),
                    });
                }
            }
            let Some(doc) = pivot else { break };

            // Score `doc`: essential lists at doc contribute exactly;
            // check whether probing non-essential lists can still matter.
            let mut score = 0.0;
            for (c, weight) in cursors[first_essential..].iter_mut() {
                if let Some(p) = c.current {
                    if p.doc == doc {
                        let dl = self.index.doc_len(doc).unwrap_or(0);
                        let ts = self.index.term_stats(c.term).unwrap();
                        score += self.model.score(p.tf, dl, ts, coll) * f64::from(*weight);
                        c.advance();
                    }
                }
            }
            // Upper bound with all non-essential terms added.
            if heap_scores.len() < k || score + bound_prefix[first_essential] > threshold {
                for (c, weight) in cursors[..first_essential].iter_mut() {
                    c.seek(doc);
                    if let Some(p) = c.current {
                        if p.doc == doc {
                            let dl = self.index.doc_len(doc).unwrap_or(0);
                            let ts = self.index.term_stats(c.term).unwrap();
                            score += self.model.score(p.tf, dl, ts, coll) * f64::from(*weight);
                        }
                    }
                }
                results.push(ScoredDoc { doc, score });
                heap_scores.push(score);
                heap_scores.sort_by(f64::total_cmp);
                if heap_scores.len() > k {
                    heap_scores.remove(0);
                }
                if heap_scores.len() >= k {
                    threshold = heap_scores[0];
                }
            }
        }
        top_k(results.into_iter(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::Bm25;
    use crate::builder::IndexBuilder;
    use crate::document::Document;
    use crate::search::SearchEngine;

    fn index_from(bodies: &[&str]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for (i, body) in bodies.iter().enumerate() {
            b.add(Document::new(
                i as u32,
                format!("u{i}"),
                "",
                body.to_string(),
            ));
        }
        b.build()
    }

    fn equivalent(idx: &InvertedIndex, query: &str, k: usize) {
        let taat = SearchEngine::with_model(idx, Bm25::new()).search(query, k);
        let daat = MaxScoreEngine::new(idx, Bm25::new()).search(query, k);
        assert_eq!(taat.len(), daat.len(), "query {query}");
        for (a, b) in taat.iter().zip(&daat) {
            assert_eq!(a.doc, b.doc, "query {query}");
            assert!((a.score - b.score).abs() < 1e-9, "query {query}");
        }
    }

    #[test]
    fn matches_taat_on_small_corpus() {
        let idx = index_from(&[
            "apple banana cherry",
            "apple apple banana",
            "cherry cherry cherry apple",
            "banana",
            "durian elderberry fig",
        ]);
        for q in ["apple", "apple banana", "cherry banana apple", "durian fig"] {
            for k in [1, 2, 3, 10] {
                equivalent(&idx, q, k);
            }
        }
    }

    #[test]
    fn duplicate_query_terms_weighted() {
        let idx = index_from(&["apple banana", "apple apple", "banana banana"]);
        equivalent(&idx, "apple apple banana", 3);
    }

    #[test]
    fn empty_and_unknown_queries() {
        let idx = index_from(&["apple"]);
        let engine = MaxScoreEngine::new(&idx, Bm25::new());
        assert!(engine.search("", 5).is_empty());
        assert!(engine.search("zebra", 5).is_empty());
        assert!(engine.search("apple", 0).is_empty());
    }

    #[test]
    fn pruning_preserves_topk_on_skewed_collection() {
        // One rare high-scoring term + one very common low-scoring term:
        // the common list is non-essential once the heap fills.
        let mut bodies: Vec<String> = (0..300)
            .map(|i| format!("common filler{} common", i % 7))
            .collect();
        bodies[42] = "rare common".to_string();
        bodies[77] = "rare rare common".to_string();
        let refs: Vec<&str> = bodies.iter().map(String::as_str).collect();
        let idx = index_from(&refs);
        equivalent(&idx, "rare common", 5);
        let daat = MaxScoreEngine::new(&idx, Bm25::new()).search("rare common", 2);
        assert_eq!(daat[0].doc, DocId(77));
        assert_eq!(daat[1].doc, DocId(42));
    }
}
