//! Index construction.
//!
//! The builder accumulates per-term document/frequency pairs in memory and
//! freezes them into compressed [`PostingsList`]s. Documents are analyzed
//! once; the same [`Analyzer`] is stored in the built index so query-time
//! processing matches indexing-time processing.

use crate::document::{Document, DocumentStore};
use crate::index::{CollectionStats, InvertedIndex, TermStats};
use crate::postings::{PostingsBuilder, PostingsList};
use serpdiv_text::{Analyzer, TermId, Vocabulary};
use std::collections::HashMap;

/// Builder for an [`InvertedIndex`].
#[derive(Debug)]
pub struct IndexBuilder {
    analyzer: Analyzer,
    vocab: Vocabulary,
    store: DocumentStore,
    /// Per-term `(doc, tf)` accumulators; docs arrive in increasing order
    /// because documents are added sequentially.
    accum: Vec<Vec<(u32, u32)>>,
    doc_lens: Vec<u32>,
    num_tokens: u64,
    /// Reused per-document tf map (workhorse collection).
    tf_scratch: HashMap<TermId, u32>,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexBuilder {
    /// Builder with the standard English analysis pipeline.
    pub fn new() -> Self {
        Self::with_analyzer(Analyzer::english())
    }

    /// Builder with a custom analyzer.
    pub fn with_analyzer(analyzer: Analyzer) -> Self {
        IndexBuilder {
            analyzer,
            vocab: Vocabulary::new(),
            store: DocumentStore::new(),
            accum: Vec::new(),
            doc_lens: Vec::new(),
            num_tokens: 0,
            tf_scratch: HashMap::new(),
        }
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no document has been added.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Add one document. Ids must be dense and in order (see
    /// [`DocumentStore::push`]).
    pub fn add(&mut self, doc: Document) {
        let text = doc.full_text();
        let doc_id = doc.id.0;
        self.store.push(doc);

        let terms = self.analyzer.analyze_interned(&text, &mut self.vocab);
        let doc_len = terms.len() as u32;
        self.doc_lens.push(doc_len);
        self.num_tokens += u64::from(doc_len);

        self.tf_scratch.clear();
        for term in terms {
            *self.tf_scratch.entry(term).or_insert(0) += 1;
        }
        if self.accum.len() < self.vocab.len() {
            self.accum.resize_with(self.vocab.len(), Vec::new);
        }
        // Deterministic postings order requires a stable iteration order;
        // sort the (few) distinct terms of this document.
        let mut entries: Vec<(TermId, u32)> =
            self.tf_scratch.iter().map(|(&t, &tf)| (t, tf)).collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        for (term, tf) in entries {
            self.accum[term.index()].push((doc_id, tf));
        }
    }

    /// [`build`](Self::build), then compile the
    /// [`ForwardIndex`](crate::ForwardIndex) over the frozen index — the
    /// full offline deployment artifact pair for serving stacks that use
    /// the compiled snippet-surrogate path.
    pub fn build_with_forward(self) -> (InvertedIndex, crate::forward::ForwardIndex) {
        let index = self.build();
        let forward = crate::forward::ForwardIndex::build(&index);
        (index, forward)
    }

    /// Freeze the accumulated postings into an immutable index.
    pub fn build(self) -> InvertedIndex {
        let mut postings = Vec::with_capacity(self.accum.len());
        let mut term_stats = Vec::with_capacity(self.accum.len());
        let mut max_tfs = Vec::with_capacity(self.accum.len());
        for entries in &self.accum {
            let mut pb = PostingsBuilder::new();
            let mut coll_freq = 0u64;
            let mut max_tf = 0u32;
            for &(doc, tf) in entries {
                pb.push(crate::document::DocId(doc), tf);
                coll_freq += u64::from(tf);
                max_tf = max_tf.max(tf);
            }
            term_stats.push(TermStats {
                doc_freq: entries.len() as u64,
                coll_freq,
            });
            max_tfs.push(max_tf);
            postings.push(pb.build());
        }
        // Terms can exist in the vocabulary without postings only if the
        // vocabulary was pre-seeded; align the vectors defensively.
        while postings.len() < self.vocab.len() {
            postings.push(PostingsList::default());
            term_stats.push(TermStats {
                doc_freq: 0,
                coll_freq: 0,
            });
            max_tfs.push(0);
        }
        let min_doc_len = self
            .doc_lens
            .iter()
            .copied()
            .filter(|&l| l > 0)
            .min()
            .unwrap_or(0);

        let num_docs = self.store.len() as u64;
        let avg_doc_len = if num_docs == 0 {
            0.0
        } else {
            self.num_tokens as f64 / num_docs as f64
        };
        InvertedIndex {
            vocab: self.vocab,
            postings,
            term_stats,
            doc_lens: self.doc_lens,
            max_tfs,
            min_doc_len,
            store: self.store,
            analyzer: self.analyzer,
            stats: CollectionStats {
                num_docs,
                num_tokens: self.num_tokens,
                avg_doc_len,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocId;

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.stats().num_docs, 0);
        assert_eq!(idx.stats().avg_doc_len, 0.0);
        assert_eq!(idx.num_terms(), 0);
    }

    #[test]
    fn postings_are_in_doc_order() {
        let mut b = IndexBuilder::new();
        for i in 0..50 {
            b.add(Document::new(
                i,
                format!("u{i}"),
                "",
                "shared unique".to_string(),
            ));
        }
        let idx = b.build();
        let t = idx.vocab().id("share").or_else(|| idx.vocab().id("shared"));
        let t = t.expect("term present");
        let docs: Vec<u32> = idx.postings(t).unwrap().iter().map(|p| p.doc.0).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(docs, sorted);
        assert_eq!(docs.len(), 50);
    }

    #[test]
    fn term_frequencies_accumulate() {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u", "", "cat cat cat dog"));
        let idx = b.build();
        let cat = idx.vocab().id("cat").unwrap();
        let p: Vec<_> = idx.postings(cat).unwrap().iter().collect();
        assert_eq!(p[0].tf, 3);
        assert_eq!(p[0].doc, DocId(0));
    }

    #[test]
    fn build_with_forward_compiles_both_artifacts() {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u", "Title", "the cat sat on the mat"));
        let (idx, fwd) = b.build_with_forward();
        assert_eq!(idx.stats().num_docs, 1);
        assert_eq!(fwd.num_docs(), 1);
        // 6 raw tokens, stopword positions kept as sentinels.
        assert_eq!(fwd.doc_tokens(DocId(0)).len(), 6);
    }

    #[test]
    fn stopword_only_document_has_zero_length() {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u", "", "the of and is"));
        let idx = b.build();
        assert_eq!(idx.doc_len(DocId(0)), Some(0));
        assert_eq!(idx.stats().num_tokens, 0);
    }
}
