//! Query-biased snippet extraction (document surrogates).
//!
//! §4.1 and §5 of the paper: "only short summaries, and not whole documents,
//! can be used without significative loss in the precision of our method" —
//! the utility function (Eq. 1) is applied "to the snippets returned by the
//! Terrier search engine instead of applying it to the whole documents".
//!
//! The generator slides a fixed-size window over the document tokens and
//! keeps the window covering the most *distinct* query terms (ties broken
//! by total query-term occurrences, then by earliest position — the classic
//! query-biased summarisation heuristic of Tombros & Sanderson).
//!
//! Two paths produce the same surrogate:
//!
//! * [`SnippetGenerator::snippet`] — the **text oracle**: re-analyzes the
//!   raw body per request and returns the window as a `String` (callers
//!   vectorize it with [`SparseVector::from_text`](crate::SparseVector)).
//!   Kept as the reference implementation and for human-readable display.
//! * [`SnippetGenerator::surrogate`] — the **compiled hot path**: selects
//!   the window over a [`ForwardIndex`](crate::ForwardIndex) `TermId`
//!   stream and emits the TF-IDF vector directly, with no string work.
//!   Bit-identical output (`tests/surrogate_equivalence.rs`).

use crate::document::Document;
use crate::forward::ForwardIndex;
use crate::vector::SparseVector;
use serpdiv_text::{Analyzer, TermId, Vocabulary};

/// Configurable query-biased snippet generator.
#[derive(Debug, Clone)]
pub struct SnippetGenerator {
    analyzer: Analyzer,
    /// Window size in raw tokens (default 30 — a SERP-like summary).
    pub window: usize,
}

impl Default for SnippetGenerator {
    fn default() -> Self {
        SnippetGenerator {
            analyzer: Analyzer::english(),
            window: 30,
        }
    }
}

impl SnippetGenerator {
    /// Generator with the standard analyzer and a 30-token window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator with a custom window size.
    pub fn with_window(window: usize) -> Self {
        SnippetGenerator {
            window: window.max(1),
            ..Self::default()
        }
    }

    /// Extract a snippet of `self.window` raw tokens biased towards the
    /// query terms. Falls back to the document prefix when no query term
    /// occurs. Returns the raw-token window joined by spaces, prefixed by
    /// the title (titles are part of the surrogate on a SERP).
    pub fn snippet(&self, doc: &Document, query_terms: &[TermId], vocab: &Vocabulary) -> String {
        let raw_tokens: Vec<String> = serpdiv_text::tokenize(&doc.body);
        if raw_tokens.is_empty() {
            return doc.title.clone();
        }
        let (best_start, window) = self.scan_window(&raw_tokens, query_terms, vocab);
        let body_part = raw_tokens[best_start..best_start + window].join(" ");
        if doc.title.is_empty() {
            body_part
        } else {
            format!("{} {}", doc.title, body_part)
        }
    }

    /// The `(start, len)` raw-token window [`snippet`](Self::snippet)
    /// would extract for `doc` — `(0, 0)` for an empty body. Exposed so
    /// the equivalence suite can compare the text oracle's choice against
    /// [`ForwardIndex::best_window`] directly.
    pub fn best_window_text(
        &self,
        doc: &Document,
        query_terms: &[TermId],
        vocab: &Vocabulary,
    ) -> (usize, usize) {
        let raw_tokens: Vec<String> = serpdiv_text::tokenize(&doc.body);
        if raw_tokens.is_empty() {
            return (0, 0);
        }
        self.scan_window(&raw_tokens, query_terms, vocab)
    }

    /// The per-start rescan over raw tokens (the oracle's selection rule).
    /// An empty query short-circuits to the prefix window *before* any
    /// normalization work — the fallback needs no analysis at all.
    fn scan_window(
        &self,
        raw_tokens: &[String],
        query_terms: &[TermId],
        vocab: &Vocabulary,
    ) -> (usize, usize) {
        let window = self.window.min(raw_tokens.len());
        if query_terms.is_empty() {
            return (0, window);
        }
        // Normal-form of each raw token (same pipeline as indexing); tokens
        // that are stopwords map to None.
        let normalized: Vec<Option<TermId>> = raw_tokens
            .iter()
            .map(|t| {
                let analyzed = self.analyzer.analyze(t);
                analyzed.first().and_then(|term| vocab.id(term))
            })
            .collect();

        let mut best_start = 0usize;
        let mut best_key = (0usize, 0usize); // (distinct coverage, total hits)
        let mut distinct_scratch: Vec<TermId> = Vec::new();
        for start in 0..=(raw_tokens.len() - window) {
            let mut total = 0usize;
            distinct_scratch.clear();
            for norm in normalized[start..start + window].iter().flatten() {
                if query_terms.contains(norm) {
                    total += 1;
                    if !distinct_scratch.contains(norm) {
                        distinct_scratch.push(*norm);
                    }
                }
            }
            let key = (distinct_scratch.len(), total);
            if key > best_key {
                best_key = key;
                best_start = start;
            }
        }
        (best_start, window)
    }

    /// The compiled-path surrogate: window selection and TF-IDF emission
    /// entirely over `forward`'s precompiled `TermId` streams, using this
    /// generator's window size. See [`ForwardIndex::surrogate`]; the
    /// result is bit-identical to vectorizing
    /// [`snippet`](Self::snippet)'s output with
    /// [`SparseVector::from_text`].
    pub fn surrogate(
        &self,
        forward: &ForwardIndex,
        doc: crate::document::DocId,
        query_terms: &[TermId],
    ) -> SparseVector {
        forward.surrogate(doc, query_terms, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_text::Analyzer;

    fn setup(body: &str) -> (Document, Vocabulary, Analyzer) {
        let doc = Document::new(0, "u", "Title", body);
        let mut vocab = Vocabulary::new();
        let analyzer = Analyzer::english();
        analyzer.analyze_interned(body, &mut vocab);
        (doc, vocab, analyzer)
    }

    #[test]
    fn window_centers_on_query_terms() {
        let filler = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod ";
        let body = format!(
            "{}{}apple iphone announcement today{}",
            filler.repeat(5),
            "",
            filler.repeat(5)
        );
        let (doc, vocab, analyzer) = setup(&body);
        let q = analyzer.analyze_known("apple iphone", &vocab);
        let snip = SnippetGenerator::with_window(10).snippet(&doc, &q, &vocab);
        assert!(snip.contains("apple"), "snippet was: {snip}");
        assert!(snip.contains("iphone"));
    }

    #[test]
    fn fallback_to_prefix_without_matches() {
        let (doc, vocab, _) = setup("first second third fourth fifth sixth");
        let snip = SnippetGenerator::with_window(3).snippet(&doc, &[], &vocab);
        assert_eq!(snip, "Title first second third");
    }

    #[test]
    fn empty_body_returns_title() {
        let (doc, vocab, _) = setup("");
        let snip = SnippetGenerator::new().snippet(&doc, &[], &vocab);
        assert_eq!(snip, "Title");
    }

    #[test]
    fn short_document_is_returned_whole() {
        let (doc, vocab, analyzer) = setup("tiny body");
        let q = analyzer.analyze_known("tiny", &vocab);
        let snip = SnippetGenerator::with_window(50).snippet(&doc, &q, &vocab);
        assert_eq!(snip, "Title tiny body");
    }

    #[test]
    fn best_window_text_reports_the_extracted_span() {
        let body = format!("{}apple iphone review", "pad ".repeat(8));
        let (doc, vocab, analyzer) = setup(&body);
        let q = analyzer.analyze_known("apple iphone", &vocab);
        let gen = SnippetGenerator::with_window(3);
        // Starts 7 and 8 both cover the two distinct terms once; the tie
        // breaks to the earliest start.
        let (start, len) = gen.best_window_text(&doc, &q, &vocab);
        assert_eq!((start, len), (7, 3));
        // Empty query falls back to the prefix window; empty body to (0,0).
        assert_eq!(gen.best_window_text(&doc, &[], &vocab), (0, 3));
        let (empty, vocab2, _) = setup("");
        assert_eq!(gen.best_window_text(&empty, &q, &vocab2), (0, 0));
    }

    #[test]
    fn prefers_window_with_more_distinct_terms() {
        // First region repeats one query term; second region has both.
        let body = format!(
            "apple apple apple apple {} apple iphone review",
            "pad ".repeat(40)
        );
        let (doc, vocab, analyzer) = setup(&body);
        let q = analyzer.analyze_known("apple iphone", &vocab);
        let snip = SnippetGenerator::with_window(5).snippet(&doc, &q, &vocab);
        assert!(snip.contains("iphone"), "snippet was: {snip}");
    }
}
