//! Query-biased snippet extraction (document surrogates).
//!
//! §4.1 and §5 of the paper: "only short summaries, and not whole documents,
//! can be used without significative loss in the precision of our method" —
//! the utility function (Eq. 1) is applied "to the snippets returned by the
//! Terrier search engine instead of applying it to the whole documents".
//!
//! The generator slides a fixed-size window over the document tokens and
//! keeps the window covering the most *distinct* query terms (ties broken
//! by total query-term occurrences, then by earliest position — the classic
//! query-biased summarisation heuristic of Tombros & Sanderson).

use crate::document::Document;
use serpdiv_text::{Analyzer, TermId, Vocabulary};

/// Configurable query-biased snippet generator.
#[derive(Debug, Clone)]
pub struct SnippetGenerator {
    analyzer: Analyzer,
    /// Window size in raw tokens (default 30 — a SERP-like summary).
    pub window: usize,
}

impl Default for SnippetGenerator {
    fn default() -> Self {
        SnippetGenerator {
            analyzer: Analyzer::english(),
            window: 30,
        }
    }
}

impl SnippetGenerator {
    /// Generator with the standard analyzer and a 30-token window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator with a custom window size.
    pub fn with_window(window: usize) -> Self {
        SnippetGenerator {
            window: window.max(1),
            ..Self::default()
        }
    }

    /// Extract a snippet of `self.window` raw tokens biased towards the
    /// query terms. Falls back to the document prefix when no query term
    /// occurs. Returns the raw-token window joined by spaces, prefixed by
    /// the title (titles are part of the surrogate on a SERP).
    pub fn snippet(&self, doc: &Document, query_terms: &[TermId], vocab: &Vocabulary) -> String {
        let raw_tokens: Vec<String> = serpdiv_text::tokenize(&doc.body);
        if raw_tokens.is_empty() {
            return doc.title.clone();
        }
        // Normal-form of each raw token (same pipeline as indexing); tokens
        // that are stopwords map to None.
        let normalized: Vec<Option<TermId>> = raw_tokens
            .iter()
            .map(|t| {
                let analyzed = self.analyzer.analyze(t);
                analyzed.first().and_then(|term| vocab.id(term))
            })
            .collect();

        let window = self.window.min(raw_tokens.len());
        let mut best_start = 0usize;
        let mut best_key = (0usize, 0usize); // (distinct coverage, total hits)
        if !query_terms.is_empty() {
            let mut distinct_scratch: Vec<TermId> = Vec::new();
            for start in 0..=(raw_tokens.len() - window) {
                let mut total = 0usize;
                distinct_scratch.clear();
                for norm in normalized[start..start + window].iter().flatten() {
                    if query_terms.contains(norm) {
                        total += 1;
                        if !distinct_scratch.contains(norm) {
                            distinct_scratch.push(*norm);
                        }
                    }
                }
                let key = (distinct_scratch.len(), total);
                if key > best_key {
                    best_key = key;
                    best_start = start;
                }
            }
        }
        let body_part = raw_tokens[best_start..best_start + window].join(" ");
        if doc.title.is_empty() {
            body_part
        } else {
            format!("{} {}", doc.title, body_part)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_text::Analyzer;

    fn setup(body: &str) -> (Document, Vocabulary, Analyzer) {
        let doc = Document::new(0, "u", "Title", body);
        let mut vocab = Vocabulary::new();
        let analyzer = Analyzer::english();
        analyzer.analyze_interned(body, &mut vocab);
        (doc, vocab, analyzer)
    }

    #[test]
    fn window_centers_on_query_terms() {
        let filler = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod ";
        let body = format!(
            "{}{}apple iphone announcement today{}",
            filler.repeat(5),
            "",
            filler.repeat(5)
        );
        let (doc, vocab, analyzer) = setup(&body);
        let q = analyzer.analyze_known("apple iphone", &vocab);
        let snip = SnippetGenerator::with_window(10).snippet(&doc, &q, &vocab);
        assert!(snip.contains("apple"), "snippet was: {snip}");
        assert!(snip.contains("iphone"));
    }

    #[test]
    fn fallback_to_prefix_without_matches() {
        let (doc, vocab, _) = setup("first second third fourth fifth sixth");
        let snip = SnippetGenerator::with_window(3).snippet(&doc, &[], &vocab);
        assert_eq!(snip, "Title first second third");
    }

    #[test]
    fn empty_body_returns_title() {
        let (doc, vocab, _) = setup("");
        let snip = SnippetGenerator::new().snippet(&doc, &[], &vocab);
        assert_eq!(snip, "Title");
    }

    #[test]
    fn short_document_is_returned_whole() {
        let (doc, vocab, analyzer) = setup("tiny body");
        let q = analyzer.analyze_known("tiny", &vocab);
        let snip = SnippetGenerator::with_window(50).snippet(&doc, &q, &vocab);
        assert_eq!(snip, "Title tiny body");
    }

    #[test]
    fn prefers_window_with_more_distinct_terms() {
        // First region repeats one query term; second region has both.
        let body = format!(
            "apple apple apple apple {} apple iphone review",
            "pad ".repeat(40)
        );
        let (doc, vocab, analyzer) = setup(&body);
        let q = analyzer.analyze_known("apple iphone", &vocab);
        let snip = SnippetGenerator::with_window(5).snippet(&doc, &q, &vocab);
        assert!(snip.contains("iphone"), "snippet was: {snip}");
    }
}
