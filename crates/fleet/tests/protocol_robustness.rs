//! Protocol robustness: the router must survive every way a worker can
//! misbehave on the wire — garbage bytes, truncated frames, hostile
//! length prefixes, wrong request ids, mid-response death, and plain
//! silence — without panicking, without hanging, and while still serving
//! a page from the shards that behave. Afterwards, a healthy worker on
//! the same socket must be picked back up (reconnect with backoff).
//!
//! Layout of every scenario: shard 0 is a *real* worker (the crate's
//! serve loop over a real exported artifact, in a thread); shard 1 is an
//! evil peer speaking the scripted corruption. The gather must come back
//! partial with exactly shard 0's hits, bit-identical to the shard-0
//! artifact scored in-process.

use serpdiv_fleet::protocol::{decode_payload, encode_frame, read_frame, Frame};
use serpdiv_fleet::worker;
use serpdiv_fleet::{FleetConfig, FleetRouter, DEFAULT_MAX_FRAME};
use serpdiv_index::{
    merge_top_k, DocId, Document, IndexBuilder, InvertedIndex, Retriever, ScoredDoc, ShardArtifact,
    ShardedIndex,
};
use serpdiv_text::TermId;
use std::io::{Read, Write};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn corpus() -> Arc<InvertedIndex> {
    let texts = [
        "apple iphone smartphone chip battery",
        "apple fruit orchard sweet harvest",
        "apple pie cinnamon recipe baking",
        "storm wind rain forecast cloud",
    ];
    let mut b = IndexBuilder::new();
    for i in 0..24u32 {
        b.add(Document::new(
            i,
            format!("http://d/{i}"),
            "",
            texts[i as usize % texts.len()],
        ));
    }
    Arc::new(b.build())
}

fn socket(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("serpdiv-robust-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Real worker in a thread: the crate's accept loop over shard `s`'s
/// exported artifact. The thread is detached (it blocks in `accept`
/// forever); the process exit reaps it.
fn spawn_real_worker(path: &PathBuf, sharded: &ShardedIndex, s: usize) {
    let bytes = sharded.export_shard(s);
    let listener = UnixListener::bind(path).expect("bind worker socket");
    std::thread::spawn(move || {
        let artifact = ShardArtifact::from_bytes(&bytes).expect("valid artifact");
        worker::serve(&listener, &artifact, serpdiv_fleet::DEFAULT_MAX_FRAME);
    });
}

/// Evil peer: for `connections` accepted connections, read a little and
/// answer with `reply` bytes (possibly none), then close. Drops the
/// listener afterwards so the socket can be re-bound by a real worker.
fn spawn_evil(path: &PathBuf, connections: usize, reply: Vec<u8>) {
    let listener = UnixListener::bind(path).expect("bind evil socket");
    let path = path.clone();
    std::thread::spawn(move || {
        for stream in listener.incoming().take(connections) {
            let Ok(mut stream) = stream else { continue };
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf); // consume the request
            let _ = stream.write_all(&reply);
            // close
        }
        drop(listener);
        let _ = std::fs::remove_file(&path);
    });
}

/// The shard-0-only expectation: the partial gather over the surviving
/// shard, computed from the same artifact bytes in-process.
fn shard0_expectation(sharded: &ShardedIndex, index: &InvertedIndex, k: usize) -> Vec<ScoredDoc> {
    let artifact = ShardArtifact::from_bytes(&sharded.export_shard(0)).unwrap();
    let terms = index.analyze_query("apple pie");
    merge_top_k(vec![artifact.score_terms(&terms, k)], k)
}

fn fast_config() -> FleetConfig {
    FleetConfig {
        shard_timeout: Duration::from_millis(200),
        backoff_base: Duration::from_millis(5),
        ..FleetConfig::default()
    }
}

/// Drive one evil scenario: shard 1 answers with `evil_reply` bytes on
/// every connection; assert the router serves a partial, shard-0-exact
/// page and never panics.
fn assert_survives(tag: &str, evil_reply: Vec<u8>) {
    let index = corpus();
    let sharded = ShardedIndex::build(index.clone(), 2);
    let (sock0, sock1) = (socket(&format!("{tag}-0")), socket(&format!("{tag}-1")));
    spawn_real_worker(&sock0, &sharded, 0);
    // Generous connection budget: the router reconnects per failure.
    spawn_evil(&sock1, 64, evil_reply);
    let router = FleetRouter::new(index.clone(), vec![sock0, sock1], fast_config());

    let r = router.retrieve_with_status("apple pie", 5);
    assert!(!r.complete, "{tag}: the evil shard must be lost");
    let expect = shard0_expectation(&sharded, &index, 5);
    assert_eq!(r.hits.len(), expect.len(), "{tag}: shard-0 page size");
    for (e, g) in expect.iter().zip(&r.hits) {
        assert_eq!(e.doc, g.doc, "{tag}: doc");
        assert_eq!(e.score.to_bits(), g.score.to_bits(), "{tag}: score bits");
    }
    let m = router.metrics();
    assert_eq!(m.partial_gathers, 1, "{tag}");
    assert!(m.shard_failures >= 1, "{tag}");
}

#[test]
fn survives_garbage_bytes() {
    assert_survives("garbage", vec![0xFF; 64]);
}

#[test]
fn survives_truncated_frame() {
    // Declares a 100-byte payload, delivers 10, closes mid-response.
    let mut reply = 100u32.to_le_bytes().to_vec();
    reply.extend_from_slice(&[0xAB; 10]);
    assert_survives("truncated", reply);
}

#[test]
fn survives_oversized_length_prefix() {
    // A hostile prefix claiming a 4 GiB frame: the router must refuse at
    // the prefix (no allocation), not try to read it.
    assert_survives("oversized", u32::MAX.to_le_bytes().to_vec());
}

#[test]
fn survives_wrong_request_id_reply() {
    // A perfectly well-formed Hits frame — for a question nobody asked.
    // Accepting it would desync every later exchange.
    let reply = encode_frame(&Frame::Hits {
        id: 0xDEAD_BEEF,
        hits: vec![ScoredDoc {
            doc: serpdiv_index::DocId(0),
            score: 99.0,
        }],
    });
    assert_survives("wrong-id", reply);
}

#[test]
fn survives_worker_killed_mid_response() {
    // Nothing at all: accept, read, close — the socket dies between the
    // request and the response, exactly like a worker killed mid-write.
    assert_survives("mid-kill", Vec::new());
}

#[test]
fn survives_silent_worker_within_deadline() {
    // Shard 1 accepts and then says nothing: the router must give up at
    // the configured deadline, not hang the request.
    let index = corpus();
    let sharded = ShardedIndex::build(index.clone(), 2);
    let (sock0, sock1) = (socket("silent-0"), socket("silent-1"));
    spawn_real_worker(&sock0, &sharded, 0);
    let listener = UnixListener::bind(&sock1).expect("bind silent socket");
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in listener.incoming() {
            held.push(stream); // keep connections open, never answer
        }
    });
    let config = fast_config();
    let router = FleetRouter::new(index.clone(), vec![sock0, sock1], config);

    let t = std::time::Instant::now();
    let r = router.retrieve_with_status("apple pie", 5);
    let elapsed = t.elapsed();
    assert!(!r.complete, "silent shard must be dropped");
    assert!(
        elapsed < config.shard_timeout * 4,
        "one silent shard costs at most the deadline (took {elapsed:?})"
    );
    let expect = shard0_expectation(&sharded, &index, 5);
    assert_eq!(
        r.hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
        expect.iter().map(|h| h.doc).collect::<Vec<_>>()
    );
    assert!(router.metrics().shard_timeouts >= 1);
}

/// Deterministic xorshift64* for the mutation sweep.
struct FuzzRng(u64);

impl FuzzRng {
    fn new(seed: u64) -> Self {
        FuzzRng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Push `iterations` LCG-derived mutants of valid frames (plus raw
/// random buffers) through both decode paths. The decoder must never
/// panic and never allocate past what the validated length fields admit
/// (hostile counts are checked against the remaining payload *before*
/// any `Vec` is sized); whatever decodes cleanly must re-encode to bytes
/// that decode to the same frame.
fn fuzz_decode_sweep(iterations: usize, seed: u64) {
    let mut rng = FuzzRng::new(seed);
    let corpus: Vec<Vec<u8>> = vec![
        encode_frame(&Frame::Ping { id: 1 }),
        encode_frame(&Frame::Pong {
            id: 2,
            shard_id: 3,
            base: 40,
            range_len: 12,
        }),
        encode_frame(&Frame::Query {
            id: 6,
            k: 10,
            terms: vec![TermId(1), TermId(7), TermId(99)],
        }),
        encode_frame(&Frame::Hits {
            id: 7,
            hits: vec![
                ScoredDoc {
                    doc: DocId(1),
                    score: 1.5,
                },
                ScoredDoc {
                    doc: DocId(9),
                    score: -0.25,
                },
            ],
        }),
    ];
    for i in 0..iterations {
        let bytes: Vec<u8> = if i % 4 == 0 {
            // A raw random buffer, no structure at all.
            let len = (rng.next() % 96) as usize;
            (0..len).map(|_| rng.next() as u8).collect()
        } else {
            // A valid frame with 1–8 bytes flipped, sometimes truncated
            // or extended — length prefixes, magic, opcodes, and count
            // fields all get hit.
            let mut b = corpus[(rng.next() as usize) % corpus.len()].clone();
            for _ in 0..(1 + rng.next() % 8) {
                let pos = (rng.next() as usize) % b.len();
                b[pos] ^= (1 + rng.next() % 255) as u8;
            }
            match rng.next() % 4 {
                0 => {
                    let keep = (rng.next() as usize) % (b.len() + 1);
                    b.truncate(keep);
                }
                1 => b.extend((0..rng.next() % 16).map(|_| rng.next() as u8)),
                _ => {}
            }
            b
        };
        // Full wire path: the length prefix and frame-size cap.
        let mut cursor = std::io::Cursor::new(&bytes[..]);
        let _ = read_frame(&mut cursor, DEFAULT_MAX_FRAME);
        // Payload path: whatever decodes must round-trip bit-exactly
        // (compared on re-encoded bytes — scores may be NaN).
        if bytes.len() >= 4 {
            if let Ok(frame) = decode_payload(&bytes[4..]) {
                let reencoded = encode_frame(&frame);
                let redecoded =
                    decode_payload(&reencoded[4..]).expect("re-encoded frame must decode");
                assert_eq!(reencoded, encode_frame(&redecoded));
            }
        }
    }
}

#[test]
fn frame_decode_survives_mutation_sweep() {
    fuzz_decode_sweep(4_000, 0xF00D_F00D);
}

/// The heavyweight sweep, opt-in via `--features property-tests`.
#[cfg(feature = "property-tests")]
#[test]
fn frame_decode_survives_large_mutation_sweep() {
    for seed in 0..16u64 {
        fuzz_decode_sweep(50_000, 0xDEAD_0000 ^ seed);
    }
}

#[test]
fn recovers_after_evil_worker_is_replaced_by_real_one() {
    let index = corpus();
    let sharded = ShardedIndex::build(index.clone(), 2);
    let (sock0, sock1) = (socket("recover-0"), socket("recover-1"));
    spawn_real_worker(&sock0, &sharded, 0);
    // The evil peer serves exactly 2 connections' worth of garbage, then
    // releases the socket.
    spawn_evil(&sock1, 2, vec![0xFF; 32]);
    let router = FleetRouter::new(index.clone(), vec![sock0, sock1.clone()], fast_config());

    let r = router.retrieve_with_status("apple pie", 5);
    assert!(!r.complete, "garbage shard lost");

    // Give the evil thread time to drain its budget and free the path,
    // then boot a REAL worker for shard 1 on the same socket.
    std::thread::sleep(Duration::from_millis(50));
    let _ = std::fs::remove_file(&sock1);
    spawn_real_worker(&sock1, &sharded, 1);
    router
        .wait_ready(Duration::from_secs(5))
        .expect("fleet heals once a real worker listens");

    let healed = router.retrieve_with_status("apple pie", 5);
    assert!(healed.complete, "healed fleet serves complete gathers");
    // And the page is the full two-shard merge, bit-identical to the
    // in-process oracle.
    let oracle = sharded.retrieve_terms_with_mode(
        &index.analyze_query("apple pie"),
        5,
        serpdiv_index::ScatterMode::Sequential,
    );
    assert_eq!(healed.hits.len(), oracle.len());
    for (e, g) in oracle.iter().zip(&healed.hits) {
        assert_eq!(e.doc, g.doc);
        assert_eq!(e.score.to_bits(), g.score.to_bits());
    }
}
