//! Hedging and circuit-breaker behavior of the [`FleetRouter`]:
//!
//! * a stalled primary connection is hedged onto a fresh connection and
//!   the hedged page is **bit-identical** to the in-process oracle;
//! * consecutive failures open a per-link breaker that fails the shard
//!   instantly (no connect attempts) until a half-open ping probe heals
//!   it;
//! * a failed half-open probe re-opens the breaker;
//! * timeouts caused by a clamped deadline budget blame the request, not
//!   the shard: no failure counters, no breaker movement.

use serpdiv_fleet::{worker, FleetConfig, FleetRouter, HedgePolicy, DEFAULT_MAX_FRAME};
use serpdiv_index::{
    merge_top_k, Document, IndexBuilder, InvertedIndex, Retriever, ScoredDoc, ShardArtifact,
    ShardedIndex,
};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn corpus() -> Arc<InvertedIndex> {
    let texts = [
        "apple iphone smartphone chip battery",
        "apple fruit orchard sweet harvest",
        "apple pie cinnamon recipe baking",
        "storm wind rain forecast cloud",
    ];
    let mut b = IndexBuilder::new();
    for i in 0..24u32 {
        b.add(Document::new(
            i,
            format!("http://d/{i}"),
            "",
            texts[i as usize % texts.len()],
        ));
    }
    Arc::new(b.build())
}

fn socket(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("serpdiv-hedge-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The single-shard oracle: shard 0 of a 1-way split, scored in-process.
fn oracle(sharded: &ShardedIndex, index: &InvertedIndex, query: &str, k: usize) -> Vec<ScoredDoc> {
    let artifact = ShardArtifact::from_bytes(&sharded.export_shard(0)).unwrap();
    let terms = index.analyze_query(query);
    merge_top_k(vec![artifact.score_terms(&terms, k)], k)
}

fn assert_bit_identical(tag: &str, got: &[ScoredDoc], want: &[ScoredDoc]) {
    assert_eq!(got.len(), want.len(), "{tag}: page size");
    for (w, g) in want.iter().zip(got) {
        assert_eq!(w.doc, g.doc, "{tag}: doc order");
        assert_eq!(w.score.to_bits(), g.score.to_bits(), "{tag}: score bits");
    }
}

/// A worker that swallows its first connection silently (accepts, reads,
/// never answers — the shape of a stuck thread, not a dead process) and
/// serves every later connection for real. Exactly what hedging exists
/// for.
fn spawn_stall_then_real_worker(path: &PathBuf, sharded: &ShardedIndex, s: usize) {
    let bytes = sharded.export_shard(s);
    let listener = UnixListener::bind(path).expect("bind worker socket");
    std::thread::spawn(move || {
        let artifact = ShardArtifact::from_bytes(&bytes).expect("valid artifact");
        let mut held = Vec::new();
        for (n, stream) in listener.incoming().enumerate() {
            let Ok(stream) = stream else { continue };
            if n == 0 {
                held.push(stream); // the primary stalls forever
                continue;
            }
            worker::serve_connection(stream, &artifact, DEFAULT_MAX_FRAME);
        }
    });
}

/// A worker that accepts and never answers anyone.
fn spawn_silent_worker(path: &PathBuf) {
    let listener = UnixListener::bind(path).expect("bind silent socket");
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in listener.incoming() {
            held.push(stream);
        }
    });
}

fn spawn_real_worker(path: &PathBuf, sharded: &ShardedIndex, s: usize) {
    let bytes = sharded.export_shard(s);
    let listener = UnixListener::bind(path).expect("bind worker socket");
    std::thread::spawn(move || {
        let artifact = ShardArtifact::from_bytes(&bytes).expect("valid artifact");
        worker::serve(&listener, &artifact, DEFAULT_MAX_FRAME);
    });
}

#[test]
fn hedge_recovers_stalled_primary_with_bit_identical_page() {
    let index = corpus();
    let sharded = ShardedIndex::build(index.clone(), 1);
    let sock = socket("stall");
    spawn_stall_then_real_worker(&sock, &sharded, 0);
    let config = FleetConfig {
        shard_timeout: Duration::from_millis(800),
        hedge: HedgePolicy::After(Duration::from_millis(40)),
        ..FleetConfig::default()
    };
    let router = FleetRouter::new(index.clone(), vec![sock], config);

    let t = Instant::now();
    let r = router.retrieve_with_status("apple pie", 5);
    let elapsed = t.elapsed();
    assert!(r.complete, "the hedge leg must answer");
    assert_bit_identical(
        "hedged page",
        &r.hits,
        &oracle(&sharded, &index, "apple pie", 5),
    );
    assert!(
        elapsed < config.shard_timeout,
        "hedging must beat the full deadline (took {elapsed:?})"
    );
    let m = router.metrics();
    assert_eq!(m.hedges, 1, "exactly one hedged exchange");
    assert_eq!(m.shard_failures, 0, "a won hedge is not a shard failure");
    assert_eq!(m.partial_gathers, 0);

    // The hedge connection was adopted: the next query flows over it
    // without hedging again.
    let again = router.retrieve_with_status("apple pie", 5);
    assert!(again.complete);
    assert_eq!(router.metrics().hedges, 1);
}

#[test]
fn breaker_opens_after_consecutive_failures_and_heals_via_probe() {
    let index = corpus();
    let sharded = ShardedIndex::build(index.clone(), 1);
    let sock = socket("breaker");
    let config = FleetConfig {
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        hedge: HedgePolicy::Off,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(150),
        ..FleetConfig::default()
    };
    // Nothing listens yet: every query is a failed connect.
    let router = FleetRouter::new(index.clone(), vec![sock.clone()], config);
    for _ in 0..2 {
        assert!(!router.retrieve_with_status("apple pie", 5).complete);
        // Let the (jittered, ≤ 2 ms) backoff window pass so the next
        // query really attempts a connect.
        std::thread::sleep(Duration::from_millis(5));
    }
    let m = router.metrics();
    assert_eq!(m.shard_failures, 2);
    assert_eq!(
        m.breaker_trips, 1,
        "two consecutive failures trip the breaker"
    );

    // Open: queries fail instantly without touching the socket.
    let t = Instant::now();
    assert!(!router.retrieve_with_status("apple pie", 5).complete);
    assert!(
        t.elapsed() < Duration::from_millis(50),
        "open breaker fails fast"
    );
    let m = router.metrics();
    assert_eq!(m.breaker_fast_fails, 1);
    assert_eq!(m.shard_failures, 2, "fast-fails are not new shard failures");

    // A real worker comes up; after the cooldown the half-open probe
    // heals the link and the page is bit-identical to the oracle.
    spawn_real_worker(&sock, &sharded, 0);
    std::thread::sleep(config.breaker_cooldown + Duration::from_millis(20));
    let healed = router.retrieve_with_status("apple pie", 5);
    assert!(healed.complete, "half-open probe heals the breaker");
    assert_bit_identical(
        "healed page",
        &healed.hits,
        &oracle(&sharded, &index, "apple pie", 5),
    );
    assert_eq!(
        router.metrics().breaker_trips,
        1,
        "no re-trip after healing"
    );

    // Closed again: the next query flows normally.
    assert!(router.retrieve_with_status("apple pie", 5).complete);
}

#[test]
fn failed_half_open_probe_reopens_the_breaker() {
    let index = corpus();
    let config = FleetConfig {
        backoff_base: Duration::from_millis(1),
        hedge: HedgePolicy::Off,
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_millis(60),
        ..FleetConfig::default()
    };
    let router = FleetRouter::new(index, vec![socket("reopen")], config);
    assert!(!router.retrieve_with_status("apple pie", 5).complete);
    assert_eq!(router.metrics().breaker_trips, 1);

    // Past the cooldown, still nobody listening: the probe fails and the
    // breaker re-opens (a second trip), still without serving.
    std::thread::sleep(Duration::from_millis(80));
    assert!(!router.retrieve_with_status("apple pie", 5).complete);
    let m = router.metrics();
    assert_eq!(m.breaker_trips, 2, "failed probe re-opens");

    // And the re-opened breaker fast-fails again.
    assert!(!router.retrieve_with_status("apple pie", 5).complete);
    assert_eq!(router.metrics().breaker_fast_fails, 1);
}

#[test]
fn budget_clamped_timeouts_blame_the_request_not_the_shard() {
    let index = corpus();
    let sock = socket("clamped");
    spawn_silent_worker(&sock);
    let config = FleetConfig {
        shard_timeout: Duration::from_millis(300),
        hedge: HedgePolicy::Off,
        breaker_threshold: 1,
        ..FleetConfig::default()
    };
    let router = FleetRouter::new(index.clone(), vec![sock], config);
    let terms = index.analyze_query("apple pie");

    // 5 ms of budget against a 300 ms shard deadline: the exchange times
    // out almost immediately — and blamelessly.
    let t = Instant::now();
    let r = router.retrieve_terms_within(&terms, 5, Some(5_000));
    let elapsed = t.elapsed();
    assert!(!r.complete);
    assert!(
        elapsed < Duration::from_millis(150),
        "budget clamps the wire deadline (took {elapsed:?})"
    );
    let m = router.metrics();
    assert_eq!(
        m.shard_failures, 0,
        "clamped timeout is not a shard failure"
    );
    assert_eq!(m.shard_timeouts, 0);
    assert_eq!(
        m.breaker_trips, 0,
        "clamped timeout must not trip the breaker"
    );

    // The same silent worker under the *full* deadline is a real shard
    // timeout, and (threshold 1) trips the breaker.
    assert!(!router.retrieve_terms_with_status(&terms, 5).complete);
    let m = router.metrics();
    assert_eq!(m.shard_timeouts, 1);
    assert_eq!(m.breaker_trips, 1);
}
