//! Fleet correctness: pages served through the router + N real
//! `shard_worker` **processes** must be bit-identical — same doc ids,
//! same `f64` score bits, same order — to the in-process
//! [`ShardedIndex`] oracle and the unsharded engine, for shard counts
//! {1, 2, 4}; and killing a worker mid-run must yield a *degraded*
//! response (labeled, counted, never torn or hung) with full recovery
//! after the worker restarts.
//!
//! Workers are the actual release binary, spawned via
//! `CARGO_BIN_EXE_shard_worker`, booted from artifacts exported by
//! `ShardedIndex::export_shard` — the deployment path, not a test
//! double.

use serpdiv_corpus::{Testbed, TestbedConfig};
use serpdiv_fleet::{FleetConfig, FleetRouter};
use serpdiv_index::{
    Document, IndexBuilder, InvertedIndex, Retriever, ScoredDoc, SearchEngine as DphEngine,
    ShardedIndex,
};
use serpdiv_mining::{AmbiguityDetector, QueryFlowGraph, ShortcutsModel, SpecializationModel};
use serpdiv_querylog::{split_sessions, FreqTable, LogConfig, QueryLogGenerator};
use serpdiv_serve::{AlgorithmKind, EngineConfig, QueryRequest, SearchEngine};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

/// A fleet of real shard-worker processes over exported artifacts, with
/// kill/respawn control. Killed on drop.
struct Fleet {
    dir: PathBuf,
    artifacts: Vec<PathBuf>,
    sockets: Vec<PathBuf>,
    children: Vec<Option<Child>>,
}

impl Fleet {
    fn spawn(sharded: &ShardedIndex, tag: &str) -> Fleet {
        let dir = std::env::temp_dir().join(format!(
            "serpdiv-fleet-eq-{}-{tag}-{}",
            std::process::id(),
            sharded.num_shards()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut fleet = Fleet {
            dir: dir.clone(),
            artifacts: Vec::new(),
            sockets: Vec::new(),
            children: Vec::new(),
        };
        for s in 0..sharded.num_shards() {
            let artifact = dir.join(format!("shard-{s}.bin"));
            std::fs::write(&artifact, sharded.export_shard(s)).expect("write artifact");
            fleet.artifacts.push(artifact);
            fleet.sockets.push(dir.join(format!("shard-{s}.sock")));
            fleet.children.push(None);
            fleet.respawn(s);
        }
        fleet
    }

    fn respawn(&mut self, s: usize) {
        let child = Command::new(env!("CARGO_BIN_EXE_shard_worker"))
            .arg("--artifact")
            .arg(&self.artifacts[s])
            .arg("--socket")
            .arg(&self.sockets[s])
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn shard_worker");
        if let Some(mut old) = self.children[s].replace(child) {
            let _ = old.kill();
            let _ = old.wait();
        }
    }

    fn kill(&mut self, s: usize) {
        if let Some(mut child) = self.children[s].take() {
            let _ = child.kill();
            let _ = child.wait(); // reap, so the socket is truly dead
        }
    }

    fn router(&self, index: Arc<InvertedIndex>) -> FleetRouter {
        let router = FleetRouter::new(index, self.sockets.clone(), FleetConfig::default());
        router
            .wait_ready(Duration::from_secs(10))
            .expect("fleet boots");
        router
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for s in 0..self.children.len() {
            self.kill(s);
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn assert_bit_identical(expect: &[ScoredDoc], got: &[ScoredDoc], context: &str) {
    assert_eq!(expect.len(), got.len(), "{context}: length");
    for (i, (e, g)) in expect.iter().zip(got).enumerate() {
        assert_eq!(e.doc, g.doc, "{context}: doc at rank {i}");
        assert_eq!(
            e.score.to_bits(),
            g.score.to_bits(),
            "{context}: score bits at rank {i} ({} vs {})",
            e.score,
            g.score
        );
    }
}

/// Tie-heavy corpus (duplicate texts ⇒ exact score ties straddling shard
/// boundaries — the merge tie-break is what could drift).
fn tie_heavy_index() -> Arc<InvertedIndex> {
    let texts = [
        "apple iphone smartphone chip battery",
        "apple fruit orchard sweet harvest",
        "apple pie cinnamon recipe baking",
        "storm wind rain forecast cloud",
    ];
    let mut b = IndexBuilder::new();
    for i in 0..30u32 {
        b.add(Document::new(
            i,
            format!("http://tie/{i}"),
            "",
            texts[i as usize % texts.len()],
        ));
    }
    Arc::new(b.build())
}

#[test]
fn fleet_pages_are_bit_identical_to_in_process_oracle() {
    let index = tie_heavy_index();
    let oracle = DphEngine::new(&index);
    let queries = [
        "apple",
        "apple iphone",
        "apple pie recipe",
        "storm rain",
        "apple apple fruit", // duplicate query term (multiplicity weighting)
        "chip orchard cinnamon cloud",
    ];
    for shards in [1usize, 2, 4] {
        let sharded = ShardedIndex::build(index.clone(), shards);
        let fleet = Fleet::spawn(&sharded, "bits");
        let router = fleet.router(index.clone());
        for query in queries {
            for k in [1, 2, 7, 13, 30, 100] {
                let ctx = format!("{query:?} k={k} shards={shards}");
                let expect = oracle.search(query, k);
                assert_bit_identical(&expect, &sharded.retrieve(query, k), &ctx);
                let through_fleet = router.retrieve_with_status(query, k);
                assert!(through_fleet.complete, "{ctx}: healthy fleet is complete");
                assert_bit_identical(&expect, &through_fleet.hits, &format!("{ctx} [fleet]"));
            }
        }
        let m = router.metrics();
        assert_eq!(m.partial_gathers, 0, "healthy fleet never degrades");
        assert_eq!(m.shard_failures, 0);
    }
}

/// Offline stack for the serve-layer comparison: synthetic testbed →
/// query log → mined specialization model (the same pipeline as the
/// serving suite).
fn mined_deployment() -> (Arc<InvertedIndex>, Arc<SpecializationModel>, Vec<String>) {
    let mut cfg = TestbedConfig::small();
    cfg.num_topics = 4;
    cfg.docs_per_subtopic = 8;
    cfg.noise_docs = 80;
    let testbed = Testbed::generate(cfg);
    let generator = QueryLogGenerator::new(LogConfig::tiny(), &testbed.topics, &testbed.background);
    let (log, _) = generator.generate();
    let physical = split_sessions(&log);
    let qfg = QueryFlowGraph::build(&log, &physical);
    let logical = qfg.extract_logical_sessions(&log, &physical, 0.001);
    let shortcuts = ShortcutsModel::train(&log, &logical, 16);
    let freq = FreqTable::build(&log);
    let detector = AmbiguityDetector::new(&shortcuts, &freq, 10.0);
    let model = SpecializationModel::mine(&log, &detector);
    assert!(!model.is_empty(), "mining must detect ambiguous queries");
    let topics = testbed.topics.iter().map(|t| t.query.clone()).collect();
    (Arc::new(testbed.build_index()), Arc::new(model), topics)
}

#[test]
fn served_pages_through_fleet_match_in_process_serving_for_all_diversifiers() {
    let (index, model, topics) = mined_deployment();
    let config = EngineConfig {
        n_candidates: 50,
        ..EngineConfig::default()
    };
    // Oracle: the full serving engine over an in-process sharded index.
    let sharded: Arc<dyn Retriever> = Arc::new(ShardedIndex::build(index.clone(), 2));
    let oracle = SearchEngine::deploy(index.clone(), model.clone(), config);
    let oracle_sharded = SearchEngine::with_retriever(
        index.clone(),
        sharded,
        model.clone(),
        oracle.store().clone(),
        oracle.compiled().clone(),
        config,
    );
    // Subject: the same engine, retrieval through 2 worker processes.
    let fleet = Fleet::spawn(&ShardedIndex::build(index.clone(), 2), "serve");
    let router: Arc<dyn Retriever> = Arc::new(fleet.router(index.clone()));
    let subject = SearchEngine::with_retriever(
        index.clone(),
        router,
        model.clone(),
        oracle.store().clone(),
        oracle.compiled().clone(),
        config,
    );

    let algorithms = [
        AlgorithmKind::OptSelect,
        AlgorithmKind::IaSelect,
        AlgorithmKind::XQuad,
        AlgorithmKind::Mmr,
    ];
    let mut compared = 0usize;
    for query in &topics {
        for &algo in &algorithms {
            for k in [3usize, 10] {
                let req = QueryRequest::new(query.clone(), k, algo);
                let expect = oracle_sharded.search(req.clone());
                let got = subject.search(req);
                let ctx = format!("{query:?} {algo:?} k={k}");
                assert_eq!(expect.algorithm, got.algorithm, "{ctx}: algorithm");
                assert_eq!(expect.diversified, got.diversified, "{ctx}: diversified");
                assert!(!got.degraded, "{ctx}: healthy fleet must not degrade");
                assert_eq!(expect.results.len(), got.results.len(), "{ctx}: page size");
                for (i, (e, g)) in expect.results.iter().zip(got.results.iter()).enumerate() {
                    assert_eq!(e.doc, g.doc, "{ctx}: doc at rank {i}");
                    assert_eq!(
                        e.score.to_bits(),
                        g.score.to_bits(),
                        "{ctx}: score bits at rank {i}"
                    );
                }
                compared += 1;
            }
        }
    }
    assert!(compared >= 32, "sweep must cover the algorithm matrix");
}

#[test]
fn killing_a_worker_degrades_and_recovery_restores_exact_pages() {
    let index = tie_heavy_index();
    let oracle = DphEngine::new(&index);
    let sharded = ShardedIndex::build(index.clone(), 2);
    let mut fleet = Fleet::spawn(&sharded, "kill");
    let router = Arc::new(fleet.router(index.clone()));

    // Serve through the full engine so degradation is labeled/counted at
    // the serving layer. No result cache: every request must really hit
    // the fleet.
    let engine = SearchEngine::with_retriever(
        index.clone(),
        router.clone() as Arc<dyn Retriever>,
        Arc::new(SpecializationModel::default()),
        Arc::new(serpdiv_core::SpecializationStore::default()),
        Arc::new(serpdiv_core::CompiledSpecStore::default()),
        EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::default()
        },
    );

    let req = || QueryRequest::new("apple pie", 5, AlgorithmKind::Baseline);
    let healthy = engine.search(req());
    assert!(!healthy.degraded);
    assert_bit_identical(
        &oracle.search("apple pie", 5),
        &healthy
            .results
            .iter()
            .map(|r| ScoredDoc {
                doc: r.doc,
                score: r.score,
            })
            .collect::<Vec<_>>(),
        "healthy fleet through the engine",
    );

    // Kill shard 1 mid-run: the next response is degraded — distinctly
    // labeled, counted apart from deadline degradation — not torn, not
    // hung.
    fleet.kill(1);
    let degraded = engine.search(req());
    assert!(degraded.degraded, "lost shard must degrade the response");
    assert_eq!(degraded.algorithm, "DPH (degraded: shard loss)");
    assert!(!degraded.diversified);
    // Not torn: the surviving page contains only shard-0 documents
    // (contiguous partitioning puts docs [0, ceil(n/2)) in shard 0),
    // still ranked and non-empty.
    let shard0_len = (index.stats().num_docs as usize).div_ceil(2);
    assert!(!degraded.results.is_empty());
    for r in degraded.results.iter() {
        assert!(
            (r.doc.0 as usize) < shard0_len,
            "degraded page must only contain shard-0 documents, got doc {}",
            r.doc.0
        );
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.degraded_shard_loss, 1);
    assert_eq!(
        metrics.degraded, 0,
        "shard loss is not deadline degradation"
    );
    assert!(router.metrics().partial_gathers >= 1);

    // Restart the worker: after the fleet re-verifies ready, pages are
    // bit-identical to the oracle again (reconnect-with-backoff path).
    fleet.respawn(1);
    router
        .wait_ready(Duration::from_secs(10))
        .expect("fleet recovers");
    let recovered = engine.search(req());
    assert!(!recovered.degraded, "recovered fleet serves complete pages");
    assert_bit_identical(
        &oracle.search("apple pie", 5),
        &recovered
            .results
            .iter()
            .map(|r| ScoredDoc {
                doc: r.doc,
                score: r.score,
            })
            .collect::<Vec<_>>(),
        "recovered fleet",
    );
    assert!(router.metrics().reconnects >= 1, "recovery reconnected");
}
