//! The shard-worker side of the fleet: a single-shard scoring server.
//!
//! A worker boots from one serialized [`ShardArtifact`], binds a Unix
//! socket, and answers [`Frame::Query`] with the shard-local top-`k` and
//! [`Frame::Ping`] with its shard identity. Scoring reuses the exact
//! dense-accumulator path of the in-process sharded index, so the bits a
//! worker returns are the bits the same shard would have produced
//! in-process.
//!
//! Error policy is deliberately blunt: any frame that fails to decode,
//! any unexpected frame kind, and any transport error **drops the
//! connection**. Nothing downstream of a framing error can be trusted,
//! and the router treats a dropped connection as a shard failure it
//! recovers from with reconnect-and-backoff — so the cheapest correct
//! move for the worker is to hang up and wait in `accept` for the next
//! connection. A worker never panics on peer input.

use crate::protocol::{encode_frame, read_frame, Frame};
use serpdiv_index::ShardArtifact;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};

/// Serve `artifact` on `listener` forever, each connection on its own
/// scoped thread.
///
/// Concurrent connections are load-bearing for the router's hedging: a
/// hedged query arrives on a *fresh* connection while the stalled
/// primary connection is still open, and must be answerable immediately
/// — not after the primary hangs up. The artifact is immutable, so
/// connection handlers share it freely.
pub fn serve(listener: &UnixListener, artifact: &ShardArtifact, max_frame: u32) {
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            match stream {
                Ok(stream) => {
                    scope.spawn(move || serve_connection(stream, artifact, max_frame));
                }
                Err(_) => continue,
            }
        }
    });
}

/// Answer frames on one connection until the peer hangs up or breaks
/// protocol.
pub fn serve_connection(mut stream: UnixStream, artifact: &ShardArtifact, max_frame: u32) {
    loop {
        let frame = match read_frame(&mut stream, max_frame) {
            Ok(frame) => frame,
            // EOF, reset, or garbage: hang up, wait for the next peer.
            Err(_) => return,
        };
        // Chaos hook (no-op unless a fault plan is armed): kill the
        // connection mid-request, or swallow the request silently so the
        // router sees a deadline rather than an error.
        match serpdiv_chaos::failpoint("worker.serve") {
            serpdiv_chaos::SiteAction::Drop => return,
            serpdiv_chaos::SiteAction::Stall(d) => {
                std::thread::sleep(d);
                continue;
            }
            serpdiv_chaos::SiteAction::None | serpdiv_chaos::SiteAction::Corrupt => {}
        }
        let reply = match frame {
            Frame::Query { id, k, terms } => {
                // Clamp k to the shard range: the shard cannot rank more
                // documents than it holds, and an untrusted k must not
                // size any allocation.
                let k = (k as usize).min(artifact.range_len());
                Frame::Hits {
                    id,
                    hits: artifact.score_terms(&terms, k),
                }
            }
            Frame::Ping { id } => Frame::Pong {
                id,
                shard_id: artifact.shard_id(),
                base: artifact.base(),
                range_len: artifact.range_len() as u32,
            },
            // Reply frames flowing router → worker are a protocol
            // violation; condemn the connection.
            Frame::Hits { .. } | Frame::Pong { .. } => return,
        };
        // Encode through a buffer so the `worker.reply` chaos hook can
        // corrupt reply bytes on the wire. Corruption is confined to the
        // framing metadata (length prefix, magic, version, id, opcode) —
        // every flip there is *detectable* by the router's
        // validate-on-decode and id-echo defenses, whereas the score
        // payload is raw `f64` bits the protocol deliberately does not
        // checksum.
        let mut bytes = encode_frame(&reply);
        let header = bytes.len().min(21);
        serpdiv_chaos::mangle("worker.reply", &mut bytes[..header]);
        if stream.write_all(&bytes).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_frame;
    use serpdiv_index::{Document, IndexBuilder, ShardedIndex};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn socket_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "serpdiv-worker-test-{}-{tag}.sock",
            std::process::id()
        ));
        p
    }

    fn artifact_bytes() -> Vec<u8> {
        let mut b = IndexBuilder::new();
        for i in 0..20u32 {
            b.add(Document::new(
                i,
                format!("u{i}"),
                "apple",
                format!("apple iphone doc number {i} with apples"),
            ));
        }
        let sharded = ShardedIndex::build(Arc::new(b.build()), 2);
        sharded.export_shard(1)
    }

    #[test]
    fn worker_answers_ping_and_query_and_drops_bad_peers() {
        let bytes = artifact_bytes();
        let art = ShardArtifact::from_bytes(&bytes).unwrap();
        let path = socket_path("basic");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let handle = std::thread::spawn(move || {
            let art = ShardArtifact::from_bytes(&bytes).unwrap();
            // Serve exactly two connections, then exit the thread.
            for stream in listener.incoming().take(2) {
                serve_connection(stream.unwrap(), &art, crate::protocol::DEFAULT_MAX_FRAME);
            }
        });

        // First connection: ping, then query, on one stream.
        let mut conn = UnixStream::connect(&path).unwrap();
        write_frame(&mut conn, &Frame::Ping { id: 9 }).unwrap();
        let pong = read_frame(&mut conn, crate::protocol::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(
            pong,
            Frame::Pong {
                id: 9,
                shard_id: 1,
                base: art.base(),
                range_len: art.range_len() as u32,
            }
        );
        write_frame(
            &mut conn,
            &Frame::Query {
                id: 10,
                k: 1_000_000, // absurd k must be clamped, not allocated
                terms: vec![serpdiv_text::TermId(0)],
            },
        )
        .unwrap();
        match read_frame(&mut conn, crate::protocol::DEFAULT_MAX_FRAME).unwrap() {
            Frame::Hits { id, hits } => {
                assert_eq!(id, 10);
                assert!(hits.len() <= art.range_len());
            }
            other => panic!("expected hits, got {other:?}"),
        }
        drop(conn);

        // Second connection: garbage bytes get the connection dropped
        // (read returns EOF) without killing the worker loop.
        let mut evil = UnixStream::connect(&path).unwrap();
        use std::io::{Read, Write};
        evil.write_all(&[0xFF; 64]).unwrap();
        // The worker hangs up: clean EOF, or ECONNRESET if it closed
        // while our garbage was still unread.
        let mut buf = [0u8; 1];
        match evil.read(&mut buf) {
            Ok(n) => assert_eq!(n, 0, "worker must not answer garbage"),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
        }
        drop(evil);

        handle.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
