//! `shard_worker` — one shard of the fleet as a standalone process.
//!
//! ```text
//! shard_worker --artifact PATH --socket PATH [--max-frame BYTES]
//! ```
//!
//! Boots a [`ShardArtifact`] from `--artifact`, binds a Unix listener at
//! `--socket` (removing any stale socket file first), prints one
//! readiness line to stdout, and serves queries forever. Exit codes:
//! `2` for bad usage, `1` for a bad artifact or socket error.

use serpdiv_fleet::protocol::DEFAULT_MAX_FRAME;
use serpdiv_fleet::worker;
use serpdiv_index::ShardArtifact;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: shard_worker --artifact PATH --socket PATH [--max-frame BYTES]");
    std::process::exit(2);
}

fn main() {
    let mut artifact_path: Option<PathBuf> = None;
    let mut socket_path: Option<PathBuf> = None;
    let mut max_frame = DEFAULT_MAX_FRAME;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--artifact" => artifact_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--socket" => socket_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--max-frame" => {
                max_frame = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let (Some(artifact_path), Some(socket_path)) = (artifact_path, socket_path) else {
        usage()
    };

    let bytes = std::fs::read(&artifact_path).unwrap_or_else(|e| {
        eprintln!("shard_worker: cannot read {}: {e}", artifact_path.display());
        std::process::exit(1);
    });
    let artifact = ShardArtifact::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!(
            "shard_worker: invalid artifact {}: {e}",
            artifact_path.display()
        );
        std::process::exit(1);
    });

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(&socket_path);
    let listener = UnixListener::bind(&socket_path).unwrap_or_else(|e| {
        eprintln!("shard_worker: cannot bind {}: {e}", socket_path.display());
        std::process::exit(1);
    });

    println!(
        "shard_worker ready shard={}/{} base={} docs={} socket={}",
        artifact.shard_id(),
        artifact.num_shards(),
        artifact.base(),
        artifact.range_len(),
        socket_path.display()
    );

    worker::serve(&listener, &artifact, max_frame);
}
