//! Multi-process scatter-gather: a shard-worker fleet behind a framed
//! local-socket protocol.
//!
//! The in-process [`ShardedIndex`](serpdiv_index::ShardedIndex) proved
//! the scatter-gather math: partition documents into contiguous ranges,
//! score each range independently (DPH depends only on global collection
//! statistics, which every range carries), and k-way-merge per-range
//! top-`k` lists into the union top-`k`. This crate moves the *scoring*
//! across a process boundary while keeping every bit of that math:
//!
//! ```text
//!             ┌────────────────────────┐
//!  query ───▶ │ FleetRouter            │   analyze once, scatter terms
//!             │  (analyzer + gather)   │
//!             └───┬────────┬───────┬───┘
//!      unix socket│        │       │      length-prefixed frames,
//!        (framed) │        │       │      scores as raw f64 bits
//!             ┌───▼──┐ ┌───▼──┐ ┌──▼───┐
//!             │worker│ │worker│ │worker│  shard_worker processes, each
//!             │ s=0  │ │ s=1  │ │ s=2  │  booted from one ShardArtifact
//!             └──────┘ └──────┘ └──────┘
//! ```
//!
//! * [`protocol`] — the wire format: `[len][magic][version][request-id]
//!   [opcode][body]`, validate-on-decode, hard frame-size cap.
//! * [`worker`] — the single-shard scoring server; boots from a
//!   serialized [`ShardArtifact`](serpdiv_index::ShardArtifact) and
//!   scores with the same dense-accumulator path as in-process shards.
//! * [`router`] — [`FleetRouter`]: parallel scatter, exact gather via
//!   [`merge_top_k`](serpdiv_index::merge_top_k), per-shard deadlines
//!   (clamped to the request's remaining budget), hedged re-dispatch of
//!   slow exchanges ([`HedgePolicy`]), per-link circuit breakers,
//!   partial gathers on shard loss, reconnect with jittered exponential
//!   backoff.
//!
//! Because workers return the exact `f64` bits their shard computed and
//! the router runs the exact in-process merge, a healthy fleet's pages
//! are **bit-identical** to single-process serving — the integration
//! suite asserts this against the `ShardedIndex` oracle for 1, 2, and 4
//! workers. A degraded fleet (worker killed, deadline blown) still
//! serves: the gather simply runs over the surviving shards and the
//! response is labeled degraded upstream.

pub mod protocol;
pub mod router;
pub mod worker;

pub use protocol::{Frame, FrameError, WireError, DEFAULT_MAX_FRAME};
pub use router::{FleetConfig, FleetMetricsSnapshot, FleetRouter, HedgePolicy};
