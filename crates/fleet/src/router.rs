//! The router side of the fleet: scatter to shard workers, gather exactly.
//!
//! [`FleetRouter`] holds one lazily-connected Unix-socket link per shard
//! worker. A query is scattered to every link in parallel, each worker
//! returns its shard-local top-`k`, and the router merges the per-shard
//! lists with [`merge_top_k`] — the *same* k-way `(score desc, doc asc)`
//! merge the in-process [`ShardedIndex`](serpdiv_index::ShardedIndex)
//! uses, over the *same* `f64` bits (they cross the wire as raw bits). A
//! fully-answered gather is therefore bit-identical to in-process
//! serving.
//!
//! # Failure containment
//!
//! Each link owns an independent failure state, so one sick worker never
//! stalls the fleet:
//!
//! * **Deadlines** — every socket carries read/write timeouts
//!   ([`FleetConfig::shard_timeout`]); a slow worker costs at most one
//!   deadline, after which its connection is condemned (a late reply
//!   would desync request ids) and the gather proceeds without it.
//! * **Partial gathers** — the merge runs over whichever shards
//!   answered; the result is reported as incomplete via
//!   [`Retrieval::partial`] so the serving layer can label the response
//!   degraded instead of presenting a partial ranking as the real one.
//! * **Reconnect with backoff** — a failed link waits out an exponential
//!   backoff window (base doubling to a cap) before the next connect
//!   attempt; queries during the window fail the shard instantly rather
//!   than queueing behind connect syscalls. A broken *cached* connection
//!   (worker restarted since the last query) gets one immediate
//!   reconnect-and-resend before counting as a failure, so a bounced
//!   worker costs exactly one degraded response.

use crate::protocol::{read_frame, write_frame, Frame, WireError, DEFAULT_MAX_FRAME};
use serpdiv_index::{merge_top_k, InvertedIndex, Retrieval, Retriever, ScoredDoc};
use serpdiv_text::TermId;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tunables for the router's failure handling.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-shard socket read/write deadline. A worker that does not
    /// answer within it is dropped from the gather.
    pub shard_timeout: Duration,
    /// First backoff window after a failed connect.
    pub backoff_base: Duration,
    /// Cap on the doubling backoff window.
    pub backoff_max: Duration,
    /// Frame-size cap handed to [`read_frame`](crate::protocol::read_frame).
    pub max_frame: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shard_timeout: Duration::from_millis(250),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(2),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Mutable per-link state, guarded by the link's mutex.
struct LinkState {
    conn: Option<UnixStream>,
    /// Next backoff window to apply on connect failure.
    backoff: Duration,
    /// If set, no connect attempt before this instant.
    retry_at: Option<Instant>,
    /// Monotone per-connection request id.
    next_id: u64,
    ever_connected: bool,
}

/// One router→worker link.
struct WorkerLink {
    path: PathBuf,
    state: Mutex<LinkState>,
}

impl WorkerLink {
    fn lock(&self) -> MutexGuard<'_, LinkState> {
        // A poisoned lock means a scatter thread panicked mid-exchange;
        // the connection may be desynced, so condemn it and carry on —
        // the router itself must never panic.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.conn = None;
                guard
            }
        }
    }
}

/// How one shard exchange failed, which decides whether an immediate
/// retry is worth it.
enum ShardError {
    /// The worker did not answer within the deadline. Retrying would pay
    /// a second full deadline for a worker known to be slow — don't.
    Timeout,
    /// The transport broke or the peer spoke garbage. Typically a
    /// restarted worker behind a stale connection; an immediate
    /// reconnect usually succeeds.
    Broken,
}

/// Counters the router keeps about its fleet; see [`FleetRouter::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMetricsSnapshot {
    /// Scatter-gather rounds served.
    pub requests: u64,
    /// Rounds in which at least one shard was missing from the gather.
    pub partial_gathers: u64,
    /// Individual shard exchanges that failed (timeouts included).
    pub shard_failures: u64,
    /// Shard exchanges that failed on the deadline specifically.
    pub shard_timeouts: u64,
    /// Successful connects after a link had already been connected once.
    pub reconnects: u64,
}

/// A multi-process scatter-gather retriever: the in-process analyzer and
/// merge around a fleet of out-of-process shard scorers.
///
/// Implements [`Retriever`], so it drops into the serving engine exactly
/// where `ShardedIndex` does.
pub struct FleetRouter {
    index: Arc<InvertedIndex>,
    links: Vec<WorkerLink>,
    config: FleetConfig,
    requests: AtomicU64,
    partial_gathers: AtomicU64,
    shard_failures: AtomicU64,
    shard_timeouts: AtomicU64,
    reconnects: AtomicU64,
}

impl FleetRouter {
    /// Build a router over `sockets` (one per shard, in shard order).
    ///
    /// `index` supplies query analysis only — postings stay in the
    /// workers. Connections are opened lazily on first use; call
    /// [`wait_ready`](Self::wait_ready) to block until the whole fleet
    /// answers pings.
    ///
    /// # Panics
    ///
    /// If `sockets` is empty.
    pub fn new(index: Arc<InvertedIndex>, sockets: Vec<PathBuf>, config: FleetConfig) -> Self {
        assert!(!sockets.is_empty(), "a fleet needs at least one worker");
        let links = sockets
            .into_iter()
            .map(|path| WorkerLink {
                path,
                state: Mutex::new(LinkState {
                    conn: None,
                    backoff: config.backoff_base,
                    retry_at: None,
                    next_id: 0,
                    ever_connected: false,
                }),
            })
            .collect();
        FleetRouter {
            index,
            links,
            config,
            requests: AtomicU64::new(0),
            partial_gathers: AtomicU64::new(0),
            shard_failures: AtomicU64::new(0),
            shard_timeouts: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        }
    }

    /// Number of shard workers behind this router.
    pub fn num_shards(&self) -> usize {
        self.links.len()
    }

    /// Current failure/recovery counters.
    pub fn metrics(&self) -> FleetMetricsSnapshot {
        FleetMetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            partial_gathers: self.partial_gathers.load(Ordering::Relaxed),
            shard_failures: self.shard_failures.load(Ordering::Relaxed),
            shard_timeouts: self.shard_timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }

    /// Block until every worker answers a ping, or `timeout` elapses.
    ///
    /// Verifies the wiring while it waits: endpoint *s* must report shard
    /// id *s*, so a shuffled socket list fails loudly at boot instead of
    /// silently merging wrong ranges.
    pub fn wait_ready(&self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        let mut pending: Vec<usize> = (0..self.links.len()).collect();
        loop {
            pending.retain(|&s| {
                // Boot-time probing ignores the steady-state backoff
                // windows — the whole point is to poll until up.
                self.links[s].lock().retry_at = None;
                match self.exchange_inner(s, |id| Frame::Ping { id }, false) {
                    Ok(Frame::Pong { shard_id, .. }) => {
                        if shard_id as usize != s {
                            // Leave it pending; the caller gets a clear
                            // error below rather than a wrong merge later.
                            true
                        } else {
                            false
                        }
                    }
                    _ => true,
                }
            });
            if pending.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "fleet not ready after {timeout:?}: shards {pending:?} unreachable or miswired"
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Scatter pre-analyzed terms to the fleet and gather the union
    /// top-`k`, reporting whether every shard contributed.
    pub fn retrieve_terms_with_status(&self, terms: &[TermId], k: usize) -> Retrieval {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if terms.is_empty() || k == 0 {
            return Retrieval::complete(Vec::new());
        }
        let per_shard: Vec<Option<Vec<ScoredDoc>>> = if self.links.len() == 1 {
            vec![self.shard_query(0, terms, k)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.links.len())
                    .map(|s| scope.spawn(move || self.shard_query(s, terms, k)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or(None))
                    .collect()
            })
        };
        let complete = per_shard.iter().all(Option::is_some);
        if !complete {
            self.partial_gathers.fetch_add(1, Ordering::Relaxed);
        }
        // The gather: identical merge to in-process scatter-gather, over
        // whichever shards answered (all of them, in the healthy case).
        let hits = merge_top_k(per_shard.into_iter().flatten().collect(), k);
        if complete {
            Retrieval::complete(hits)
        } else {
            Retrieval::partial(hits)
        }
    }

    /// One shard's top-`k`, or `None` if the worker failed or is in
    /// backoff.
    fn shard_query(&self, s: usize, terms: &[TermId], k: usize) -> Option<Vec<ScoredDoc>> {
        let k = u32::try_from(k).unwrap_or(u32::MAX);
        match self.exchange(s, |id| Frame::Query {
            id,
            k,
            terms: terms.to_vec(),
        }) {
            Ok(Frame::Hits { hits, .. }) => Some(hits),
            _ => None,
        }
    }

    /// Run one request/reply exchange with shard `s`, reconnecting once
    /// through a stale connection, honoring the backoff window.
    fn exchange(&self, s: usize, make: impl Fn(u64) -> Frame) -> Result<Frame, ()> {
        self.exchange_inner(s, make, true)
    }

    /// [`exchange`](Self::exchange) with failure counting switchable —
    /// boot-time probing ([`wait_ready`](Self::wait_ready)) polls workers
    /// that are *expected* to still be starting, which is not a fleet
    /// failure worth alarming on.
    fn exchange_inner(
        &self,
        s: usize,
        make: impl Fn(u64) -> Frame,
        count_failures: bool,
    ) -> Result<Frame, ()> {
        let link = &self.links[s];
        let mut state = link.lock();
        for attempt in 0..2 {
            if state.conn.is_none() {
                if let Some(at) = state.retry_at {
                    if Instant::now() < at {
                        return Err(()); // in backoff: fail fast, no syscall
                    }
                }
                match UnixStream::connect(&link.path) {
                    Ok(conn) => {
                        let _ = conn.set_read_timeout(Some(self.config.shard_timeout));
                        let _ = conn.set_write_timeout(Some(self.config.shard_timeout));
                        if state.ever_connected {
                            self.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        state.ever_connected = true;
                        state.backoff = self.config.backoff_base;
                        state.retry_at = None;
                        state.conn = Some(conn);
                    }
                    Err(_) => {
                        self.note_failure(&mut state, false, count_failures);
                        return Err(());
                    }
                }
            }
            let id = state.next_id;
            state.next_id += 1;
            let frame = make(id);
            let conn = state.conn.as_mut().expect("connected above");
            match Self::roundtrip(conn, &frame, id, self.config.max_frame) {
                Ok(reply) => return Ok(reply),
                Err(kind) => {
                    // Whatever happened, the connection can no longer be
                    // trusted to be in sync — condemn it.
                    state.conn = None;
                    match kind {
                        ShardError::Broken if attempt == 0 => continue,
                        ShardError::Broken => {
                            self.note_failure(&mut state, false, count_failures);
                            return Err(());
                        }
                        ShardError::Timeout => {
                            self.note_failure(&mut state, true, count_failures);
                            return Err(());
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on success, final failure, or timeout");
    }

    /// Write `frame`, read the reply, verify the echoed id and kind.
    fn roundtrip(
        conn: &mut UnixStream,
        frame: &Frame,
        id: u64,
        max_frame: u32,
    ) -> Result<Frame, ShardError> {
        write_frame(conn, frame).map_err(|e| Self::classify(&e))?;
        match read_frame(conn, max_frame) {
            Ok(reply) => {
                let kind_ok = matches!(
                    (frame, &reply),
                    (Frame::Query { .. }, Frame::Hits { .. })
                        | (Frame::Ping { .. }, Frame::Pong { .. })
                );
                if kind_ok && reply.id() == id {
                    Ok(reply)
                } else {
                    // Stale or alien reply: ids desynced.
                    Err(ShardError::Broken)
                }
            }
            Err(WireError::Io(e)) => Err(Self::classify(&e)),
            Err(WireError::Frame(_)) => Err(ShardError::Broken),
        }
    }

    fn classify(e: &std::io::Error) -> ShardError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ShardError::Timeout,
            _ => ShardError::Broken,
        }
    }

    fn note_failure(&self, state: &mut LinkState, timeout: bool, count: bool) {
        if count {
            self.shard_failures.fetch_add(1, Ordering::Relaxed);
            if timeout {
                self.shard_timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        state.retry_at = Some(Instant::now() + state.backoff);
        state.backoff = (state.backoff * 2).min(self.config.backoff_max);
    }
}

impl Retriever for FleetRouter {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        self.retrieve_terms(&self.index.analyze_query(query), k)
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        self.retrieve_terms_with_status(terms, k).hits
    }

    fn retrieve_with_status(&self, query: &str, k: usize) -> Retrieval {
        self.retrieve_terms_with_status(&self.index.analyze_query(query), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_index::{Document, IndexBuilder};

    fn tiny_index() -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u0", "apple", "apple iphone"));
        Arc::new(b.build())
    }

    fn dead_socket(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "serpdiv-router-test-{}-{tag}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn all_workers_down_yields_empty_partial_not_panic() {
        let router = FleetRouter::new(
            tiny_index(),
            vec![dead_socket("down-a"), dead_socket("down-b")],
            FleetConfig::default(),
        );
        let r = router.retrieve_with_status("apple", 5);
        assert!(r.hits.is_empty());
        assert!(!r.complete);
        let m = router.metrics();
        assert_eq!(m.requests, 1);
        assert_eq!(m.partial_gathers, 1);
        assert_eq!(m.shard_failures, 2);
    }

    #[test]
    fn backoff_window_fails_fast_and_expires() {
        let config = FleetConfig {
            backoff_base: Duration::from_millis(40),
            ..FleetConfig::default()
        };
        let router = FleetRouter::new(tiny_index(), vec![dead_socket("backoff")], config);
        assert!(!router.retrieve_with_status("apple", 5).complete);
        let after_first = router.metrics().shard_failures;
        assert_eq!(after_first, 1);
        // Inside the window: the shard fails fast without a connect
        // attempt, so the failure counter does not move.
        assert!(!router.retrieve_with_status("apple", 5).complete);
        assert_eq!(router.metrics().shard_failures, after_first);
        // After the window a real (failing) connect is attempted again.
        std::thread::sleep(Duration::from_millis(60));
        assert!(!router.retrieve_with_status("apple", 5).complete);
        assert_eq!(router.metrics().shard_failures, after_first + 1);
    }

    #[test]
    fn empty_query_is_complete_without_touching_workers() {
        let router = FleetRouter::new(
            tiny_index(),
            vec![dead_socket("idle")],
            FleetConfig::default(),
        );
        let r = router.retrieve_with_status("zzzzunknown", 5);
        assert!(r.complete);
        assert!(r.hits.is_empty());
        assert_eq!(router.metrics().shard_failures, 0);
    }

    #[test]
    fn wait_ready_times_out_with_named_shards() {
        let config = FleetConfig {
            shard_timeout: Duration::from_millis(50),
            ..FleetConfig::default()
        };
        let router = FleetRouter::new(tiny_index(), vec![dead_socket("notready")], config);
        let err = router
            .wait_ready(Duration::from_millis(80))
            .expect_err("no worker is listening");
        assert!(err.contains("[0]"), "error names the shard: {err}");
    }
}
