//! The router side of the fleet: scatter to shard workers, gather exactly.
//!
//! [`FleetRouter`] holds one lazily-connected Unix-socket link per shard
//! worker. A query is scattered to every link in parallel, each worker
//! returns its shard-local top-`k`, and the router merges the per-shard
//! lists with [`merge_top_k`] — the *same* k-way `(score desc, doc asc)`
//! merge the in-process [`ShardedIndex`](serpdiv_index::ShardedIndex)
//! uses, over the *same* `f64` bits (they cross the wire as raw bits). A
//! fully-answered gather is therefore bit-identical to in-process
//! serving.
//!
//! # Failure containment
//!
//! Each link owns an independent failure state, so one sick worker never
//! stalls the fleet:
//!
//! * **Deadlines** — every exchange carries read/write timeouts
//!   ([`FleetConfig::shard_timeout`], clamped to the request's remaining
//!   deadline budget when one is given); a slow worker costs at most one
//!   deadline, after which its connection is condemned (a late reply
//!   would desync request ids) and the gather proceeds without it.
//! * **Hedging** — a query whose primary dispatch blows the hedge
//!   threshold ([`FleetConfig::hedge`]) is re-dispatched once on a
//!   *fresh* connection with a fresh request id for the remaining
//!   deadline; the first valid reply wins, and because workers are
//!   deterministic the hedged page is bit-identical to the un-hedged
//!   one. The threshold defaults to a multiple of the link's observed
//!   (EWMA) exchange latency, so hedges fire on outliers, not medians.
//! * **Circuit breaker** — [`FleetConfig::breaker_threshold`]
//!   consecutive counted failures open the link's breaker for
//!   [`FleetConfig::breaker_cooldown`]: queries fail the shard instantly
//!   (zero syscalls) while open, and the first query after the cooldown
//!   runs a half-open [`Frame::Ping`] probe — success closes the
//!   breaker, failure re-opens it for another cooldown.
//! * **Partial gathers** — the merge runs over whichever shards
//!   answered; the result is reported as incomplete via
//!   [`Retrieval::partial`] so the serving layer can label the response
//!   degraded instead of presenting a partial ranking as the real one.
//! * **Reconnect with jittered backoff** — a failed link waits out an
//!   exponential backoff window (base doubling to a cap, with seeded
//!   full jitter so simultaneous failures don't re-connect in lockstep)
//!   before the next connect attempt; queries during the window fail the
//!   shard instantly rather than queueing behind connect syscalls. A
//!   broken *cached* connection (worker restarted since the last query)
//!   gets one immediate reconnect-and-resend before counting as a
//!   failure, so a bounced worker costs exactly one degraded response.
//!
//! Timeouts caused by a *clamped* deadline budget (the request ran out of
//! time, not the shard) condemn the connection but are deliberately not
//! counted: they advance neither the failure counters, the backoff
//! window, nor the breaker — an overloaded request stream must not poison
//! the router's picture of shard health.

use crate::protocol::{read_frame, write_frame, Frame, WireError, DEFAULT_MAX_FRAME};
use serpdiv_chaos::SiteAction;
use serpdiv_index::{merge_top_k, InvertedIndex, Retrieval, Retriever, ScoredDoc};
use serpdiv_text::TermId;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Exchange-latency EWMA smoothing factor (weight of the newest sample).
const EWMA_ALPHA: f64 = 0.2;

/// When to re-dispatch a shard exchange on a fresh connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgePolicy {
    /// Never hedge; the primary dispatch gets the full deadline.
    Off,
    /// Hedge after a fixed delay (clamped to the exchange deadline).
    After(Duration),
    /// Hedge after `multiplier ×` the link's EWMA exchange latency, never
    /// sooner than `floor`. A link with no completed exchange yet has no
    /// latency signal and does not hedge.
    Auto {
        /// Multiple of the EWMA latency to wait before hedging.
        multiplier: u32,
        /// Lower bound on the hedge delay, so microsecond-fast links
        /// don't hedge on scheduler noise.
        floor: Duration,
    },
}

impl Default for HedgePolicy {
    /// Hedge at 4× the observed latency, no sooner than 2 ms.
    fn default() -> Self {
        HedgePolicy::Auto {
            multiplier: 4,
            floor: Duration::from_millis(2),
        }
    }
}

/// Tunables for the router's failure handling.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-shard wire deadline for one exchange. A worker that does not
    /// answer within it is dropped from the gather. Clamped per request
    /// by the remaining deadline budget, when one is given.
    pub shard_timeout: Duration,
    /// First backoff window after a failed connect.
    pub backoff_base: Duration,
    /// Cap on the doubling backoff window.
    pub backoff_max: Duration,
    /// Frame-size cap handed to [`read_frame`](crate::protocol::read_frame).
    pub max_frame: u32,
    /// When to re-dispatch a slow exchange on a fresh connection.
    pub hedge: HedgePolicy,
    /// Consecutive counted failures that open a link's circuit breaker
    /// (`0` disables the breaker).
    pub breaker_threshold: u32,
    /// How long an open breaker fails the shard instantly before the
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// Seed of the per-link backoff-jitter RNG (each link derives its own
    /// stream from this and its shard index, so retry schedules are
    /// deterministic under test yet de-synchronized across links).
    pub jitter_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shard_timeout: Duration::from_millis(250),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(2),
            max_frame: DEFAULT_MAX_FRAME,
            hedge: HedgePolicy::default(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(250),
            jitter_seed: 0x5EA7_D1F7,
        }
    }
}

/// Mutable per-link state, guarded by the link's mutex.
struct LinkState {
    conn: Option<UnixStream>,
    /// Next backoff window to apply on connect failure.
    backoff: Duration,
    /// If set, no connect attempt before this instant.
    retry_at: Option<Instant>,
    /// Monotone per-link request id (fresh connections keep counting —
    /// ids must never repeat across a hedge).
    next_id: u64,
    ever_connected: bool,
    /// Backoff-jitter RNG state (xorshift64*).
    jitter: u64,
    /// EWMA of successful exchange latency, µs; `None` until the first
    /// completed exchange. Drives [`HedgePolicy::Auto`].
    ewma_us: Option<f64>,
    /// Counted failures since the last success; trips the breaker.
    consecutive_failures: u32,
    /// While set and in the future, the breaker is open.
    open_until: Option<Instant>,
}

/// One router→worker link.
struct WorkerLink {
    path: PathBuf,
    state: Mutex<LinkState>,
}

impl WorkerLink {
    fn lock(&self) -> MutexGuard<'_, LinkState> {
        // A poisoned lock means a scatter thread panicked mid-exchange;
        // the connection may be desynced, so condemn it and carry on —
        // the router itself must never panic.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.conn = None;
                guard
            }
        }
    }
}

/// How one shard exchange failed, which decides whether an immediate
/// retry is worth it.
enum ShardError {
    /// The worker did not answer within the deadline. Retrying would pay
    /// a second full deadline for a worker known to be slow — don't.
    Timeout,
    /// The transport broke or the peer spoke garbage. Typically a
    /// restarted worker behind a stale connection; an immediate
    /// reconnect usually succeeds.
    Broken,
}

/// Per-exchange behavior switches; see [`FleetRouter::exchange_inner`].
#[derive(Clone, Copy)]
struct ExchangeOpts {
    /// Whether failures count toward metrics, backoff, and the breaker.
    count_failures: bool,
    /// Whether the exchange may hedge onto a fresh connection.
    hedge: bool,
    /// Remaining request deadline budget, if the request carries one.
    budget: Option<Duration>,
}

/// Boot-time probing: no counting, no hedging, no budget.
const PROBE_OPTS: ExchangeOpts = ExchangeOpts {
    count_failures: false,
    hedge: false,
    budget: None,
};

/// Counters the router keeps about its fleet; see [`FleetRouter::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMetricsSnapshot {
    /// Scatter-gather rounds served.
    pub requests: u64,
    /// Rounds in which at least one shard was missing from the gather.
    pub partial_gathers: u64,
    /// Individual shard exchanges that failed (timeouts included).
    pub shard_failures: u64,
    /// Shard exchanges that failed on the deadline specifically.
    pub shard_timeouts: u64,
    /// Successful connects after a link had already been connected once.
    pub reconnects: u64,
    /// Exchanges re-dispatched on a fresh connection after the primary
    /// blew the hedge threshold.
    pub hedges: u64,
    /// Closed→open (and half-open→open) breaker transitions.
    pub breaker_trips: u64,
    /// Exchanges failed instantly — zero syscalls — by an open breaker.
    pub breaker_fast_fails: u64,
}

/// A multi-process scatter-gather retriever: the in-process analyzer and
/// merge around a fleet of out-of-process shard scorers.
///
/// Implements [`Retriever`], so it drops into the serving engine exactly
/// where `ShardedIndex` does — including the budget-aware
/// [`retrieve_with_status_within`](Retriever::retrieve_with_status_within)
/// entry point, which clamps every shard's wire deadline to the
/// request's remaining budget.
pub struct FleetRouter {
    index: Arc<InvertedIndex>,
    links: Vec<WorkerLink>,
    config: FleetConfig,
    requests: AtomicU64,
    partial_gathers: AtomicU64,
    shard_failures: AtomicU64,
    shard_timeouts: AtomicU64,
    reconnects: AtomicU64,
    hedges: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_fast_fails: AtomicU64,
}

impl FleetRouter {
    /// Build a router over `sockets` (one per shard, in shard order).
    ///
    /// `index` supplies query analysis only — postings stay in the
    /// workers. Connections are opened lazily on first use; call
    /// [`wait_ready`](Self::wait_ready) to block until the whole fleet
    /// answers pings.
    ///
    /// # Panics
    ///
    /// If `sockets` is empty.
    pub fn new(index: Arc<InvertedIndex>, sockets: Vec<PathBuf>, config: FleetConfig) -> Self {
        assert!(!sockets.is_empty(), "a fleet needs at least one worker");
        let links = sockets
            .into_iter()
            .enumerate()
            .map(|(s, path)| WorkerLink {
                path,
                state: Mutex::new(LinkState {
                    conn: None,
                    backoff: config.backoff_base,
                    retry_at: None,
                    next_id: 0,
                    ever_connected: false,
                    jitter: jitter_state(config.jitter_seed, s as u64),
                    ewma_us: None,
                    consecutive_failures: 0,
                    open_until: None,
                }),
            })
            .collect();
        FleetRouter {
            index,
            links,
            config,
            requests: AtomicU64::new(0),
            partial_gathers: AtomicU64::new(0),
            shard_failures: AtomicU64::new(0),
            shard_timeouts: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_fast_fails: AtomicU64::new(0),
        }
    }

    /// Number of shard workers behind this router.
    pub fn num_shards(&self) -> usize {
        self.links.len()
    }

    /// Current failure/recovery counters.
    pub fn metrics(&self) -> FleetMetricsSnapshot {
        FleetMetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            partial_gathers: self.partial_gathers.load(Ordering::Relaxed),
            shard_failures: self.shard_failures.load(Ordering::Relaxed),
            shard_timeouts: self.shard_timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
        }
    }

    /// Block until every worker answers a ping, or `timeout` elapses.
    ///
    /// Verifies the wiring while it waits: endpoint *s* must report shard
    /// id *s*, so a shuffled socket list fails loudly at boot instead of
    /// silently merging wrong ranges.
    pub fn wait_ready(&self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        let mut pending: Vec<usize> = (0..self.links.len()).collect();
        loop {
            pending.retain(|&s| {
                // Boot-time probing ignores the steady-state backoff and
                // breaker windows — the whole point is to poll until up.
                {
                    let mut state = self.links[s].lock();
                    state.retry_at = None;
                    state.open_until = None;
                }
                match self.exchange_inner(s, |id| Frame::Ping { id }, PROBE_OPTS) {
                    Ok(Frame::Pong { shard_id, .. }) => {
                        if shard_id as usize != s {
                            // Leave it pending; the caller gets a clear
                            // error below rather than a wrong merge later.
                            true
                        } else {
                            false
                        }
                    }
                    _ => true,
                }
            });
            if pending.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "fleet not ready after {timeout:?}: shards {pending:?} unreachable or miswired"
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Scatter pre-analyzed terms to the fleet and gather the union
    /// top-`k`, reporting whether every shard contributed.
    pub fn retrieve_terms_with_status(&self, terms: &[TermId], k: usize) -> Retrieval {
        self.retrieve_terms_within(terms, k, None)
    }

    /// [`retrieve_terms_with_status`](Self::retrieve_terms_with_status)
    /// under a deadline budget: each shard exchange's wire deadline is
    /// the configured [`FleetConfig::shard_timeout`] clamped to the
    /// request's remaining `budget_us`. A request whose budget is already
    /// spent fails every shard without a syscall — and without blaming
    /// the shards.
    pub fn retrieve_terms_within(
        &self,
        terms: &[TermId],
        k: usize,
        budget_us: Option<u64>,
    ) -> Retrieval {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if terms.is_empty() || k == 0 {
            return Retrieval::complete(Vec::new());
        }
        let budget = budget_us.map(Duration::from_micros);
        let per_shard: Vec<Option<Vec<ScoredDoc>>> = if self.links.len() == 1 {
            vec![self.shard_query(0, terms, k, budget)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.links.len())
                    .map(|s| scope.spawn(move || self.shard_query(s, terms, k, budget)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or(None))
                    .collect()
            })
        };
        let complete = per_shard.iter().all(Option::is_some);
        if !complete {
            self.partial_gathers.fetch_add(1, Ordering::Relaxed);
        }
        // The gather: identical merge to in-process scatter-gather, over
        // whichever shards answered (all of them, in the healthy case).
        let hits = merge_top_k(per_shard.into_iter().flatten().collect(), k);
        if complete {
            Retrieval::complete(hits)
        } else {
            Retrieval::partial(hits)
        }
    }

    /// One shard's top-`k`, or `None` if the worker failed, is in
    /// backoff, or its breaker is open.
    fn shard_query(
        &self,
        s: usize,
        terms: &[TermId],
        k: usize,
        budget: Option<Duration>,
    ) -> Option<Vec<ScoredDoc>> {
        // Chaos hook (no-op unless a fault plan is armed): lose or delay
        // this dispatch before it touches the link.
        match serpdiv_chaos::failpoint("router.dispatch") {
            SiteAction::Drop => return None,
            SiteAction::Stall(d) => std::thread::sleep(d),
            SiteAction::None | SiteAction::Corrupt => {}
        }
        let k = u32::try_from(k).unwrap_or(u32::MAX);
        let opts = ExchangeOpts {
            count_failures: true,
            hedge: true,
            budget,
        };
        match self.exchange_inner(
            s,
            |id| Frame::Query {
                id,
                k,
                terms: terms.to_vec(),
            },
            opts,
        ) {
            Ok(Frame::Hits { hits, .. }) => Some(hits),
            _ => None,
        }
    }

    /// Run one request/reply exchange with shard `s`: enforce the
    /// breaker, reconnect once through a stale connection, honor the
    /// backoff window, clamp the wire deadline to the budget, and hedge
    /// onto a fresh connection when the primary blows the threshold.
    fn exchange_inner(
        &self,
        s: usize,
        make: impl Fn(u64) -> Frame,
        opts: ExchangeOpts,
    ) -> Result<Frame, ()> {
        let link = &self.links[s];
        let mut state = link.lock();
        if opts.count_failures && self.breaker_blocks(s, &mut state) {
            return Err(());
        }
        // The wire deadline of this exchange: the configured per-shard
        // timeout, clamped to whatever is left of the request's budget.
        let total = match opts.budget {
            Some(b) => b.min(self.config.shard_timeout),
            None => self.config.shard_timeout,
        };
        if total.is_zero() {
            // The budget is already spent: nothing the shard can do
            // helps, and blaming it would poison backoff/breaker state.
            return Err(());
        }
        let clamped = total < self.config.shard_timeout;
        for attempt in 0..2 {
            if state.conn.is_none() {
                if let Some(at) = state.retry_at {
                    if Instant::now() < at {
                        return Err(()); // in backoff: fail fast, no syscall
                    }
                }
                match UnixStream::connect(&link.path) {
                    Ok(conn) => {
                        if state.ever_connected {
                            self.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        state.ever_connected = true;
                        state.backoff = self.config.backoff_base;
                        state.retry_at = None;
                        state.conn = Some(conn);
                    }
                    Err(_) => {
                        self.note_failure(&mut state, false, opts.count_failures);
                        return Err(());
                    }
                }
            }
            let id = state.next_id;
            state.next_id += 1;
            let frame = make(id);
            // The primary dispatch only gets until the hedge threshold;
            // `hedge_at == total` means no hedging for this exchange.
            let hedge_at = if opts.hedge {
                self.hedge_threshold(&state, total)
            } else {
                total
            };
            let started = Instant::now();
            let conn = state.conn.as_mut().expect("connected above");
            match Self::roundtrip(conn, &frame, id, self.config.max_frame, hedge_at) {
                Ok(reply) => {
                    self.note_success(&mut state, started.elapsed());
                    return Ok(reply);
                }
                Err(ShardError::Timeout) if hedge_at < total => {
                    // The primary blew the hedge threshold. Its eventual
                    // reply (if any) can no longer be trusted — condemn
                    // the connection — and re-dispatch on a fresh one
                    // with a fresh id for the remaining deadline.
                    state.conn = None;
                    self.hedges.fetch_add(1, Ordering::Relaxed);
                    let remaining = total.saturating_sub(started.elapsed());
                    match self.hedge_once(s, &mut state, &make, remaining) {
                        Ok(reply) => {
                            self.note_success(&mut state, started.elapsed());
                            return Ok(reply);
                        }
                        Err(kind) => {
                            self.note_exchange_failure(
                                &mut state,
                                matches!(kind, ShardError::Timeout),
                                opts.count_failures,
                                clamped,
                            );
                            return Err(());
                        }
                    }
                }
                Err(kind) => {
                    // Whatever happened, the connection can no longer be
                    // trusted to be in sync — condemn it.
                    state.conn = None;
                    match kind {
                        ShardError::Broken if attempt == 0 => continue,
                        ShardError::Broken => {
                            self.note_exchange_failure(
                                &mut state,
                                false,
                                opts.count_failures,
                                clamped,
                            );
                            return Err(());
                        }
                        ShardError::Timeout => {
                            self.note_exchange_failure(
                                &mut state,
                                true,
                                opts.count_failures,
                                clamped,
                            );
                            return Err(());
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on success, final failure, or timeout");
    }

    /// Enforce the circuit breaker for shard `s`. Returns `true` when the
    /// exchange must fail fast (breaker open), `false` when it may
    /// proceed (breaker closed, or the half-open probe just succeeded).
    fn breaker_blocks(&self, s: usize, state: &mut LinkState) -> bool {
        let Some(until) = state.open_until else {
            return false;
        };
        if Instant::now() < until {
            // Open: fail instantly, zero syscalls.
            self.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Half-open: one fresh ping decides. The cached connection (if
        // any) predates the trip and cannot be trusted.
        state.conn = None;
        state.retry_at = None;
        if self.probe(s, state) {
            state.open_until = None;
            state.consecutive_failures = 0;
            false
        } else {
            // Still sick: re-open for another cooldown.
            state.open_until = Some(Instant::now() + self.config.breaker_cooldown);
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
            self.shard_failures.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    /// Half-open probe: ping shard `s` on a fresh connection. On success
    /// the probed connection becomes the link's cached connection.
    fn probe(&self, s: usize, state: &mut LinkState) -> bool {
        let Ok(mut conn) = UnixStream::connect(&self.links[s].path) else {
            return false;
        };
        let id = state.next_id;
        state.next_id += 1;
        let ping = Frame::Ping { id };
        match Self::roundtrip(
            &mut conn,
            &ping,
            id,
            self.config.max_frame,
            self.config.shard_timeout,
        ) {
            Ok(Frame::Pong { .. }) => {
                if state.ever_connected {
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                state.ever_connected = true;
                state.conn = Some(conn);
                true
            }
            _ => false,
        }
    }

    /// The hedge leg: a fresh connection, a fresh request id, the
    /// remaining wire deadline. On success the hedge connection becomes
    /// the link's cached connection.
    fn hedge_once(
        &self,
        s: usize,
        state: &mut LinkState,
        make: &impl Fn(u64) -> Frame,
        remaining: Duration,
    ) -> Result<Frame, ShardError> {
        if remaining.is_zero() {
            return Err(ShardError::Timeout);
        }
        let mut conn = UnixStream::connect(&self.links[s].path).map_err(|_| ShardError::Broken)?;
        let id = state.next_id;
        state.next_id += 1;
        let reply = Self::roundtrip(&mut conn, &make(id), id, self.config.max_frame, remaining)?;
        state.conn = Some(conn);
        Ok(reply)
    }

    /// The wire deadline of the *primary* dispatch; past it, the exchange
    /// hedges. Equal to `total` ⇒ no hedging for this exchange.
    fn hedge_threshold(&self, state: &LinkState, total: Duration) -> Duration {
        let at = match self.config.hedge {
            HedgePolicy::Off => return total,
            HedgePolicy::After(at) => at,
            HedgePolicy::Auto { multiplier, floor } => {
                // A cold link has no latency signal yet — no hedging
                // until the first successful exchange seeds the EWMA.
                let Some(ewma) = state.ewma_us else {
                    return total;
                };
                Duration::from_secs_f64((ewma * f64::from(multiplier)) / 1e6).max(floor)
            }
        };
        at.min(total)
    }

    /// Write `frame` under `timeout`, read the reply, verify the echoed
    /// id and kind. Deadlines are per-exchange (budget clamping and hedge
    /// thresholds vary request to request), so the socket timeouts are
    /// set here rather than at connect.
    fn roundtrip(
        conn: &mut UnixStream,
        frame: &Frame,
        id: u64,
        max_frame: u32,
        timeout: Duration,
    ) -> Result<Frame, ShardError> {
        // A zero timeout would *disable* the socket deadline entirely.
        let timeout = timeout.max(Duration::from_micros(1));
        let _ = conn.set_write_timeout(Some(timeout));
        let _ = conn.set_read_timeout(Some(timeout));
        write_frame(conn, frame).map_err(|e| Self::classify(&e))?;
        match read_frame(conn, max_frame) {
            Ok(reply) => {
                let kind_ok = matches!(
                    (frame, &reply),
                    (Frame::Query { .. }, Frame::Hits { .. })
                        | (Frame::Ping { .. }, Frame::Pong { .. })
                );
                if kind_ok && reply.id() == id {
                    Ok(reply)
                } else {
                    // Stale or alien reply: ids desynced.
                    Err(ShardError::Broken)
                }
            }
            Err(WireError::Io(e)) => Err(Self::classify(&e)),
            Err(WireError::Frame(_)) => Err(ShardError::Broken),
        }
    }

    fn classify(e: &std::io::Error) -> ShardError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ShardError::Timeout,
            _ => ShardError::Broken,
        }
    }

    /// A successful exchange: reset every failure signal and fold the
    /// observed latency into the link's EWMA (drives
    /// [`HedgePolicy::Auto`]).
    fn note_success(&self, state: &mut LinkState, elapsed: Duration) {
        state.backoff = self.config.backoff_base;
        state.retry_at = None;
        state.consecutive_failures = 0;
        state.open_until = None;
        let sample = elapsed.as_secs_f64() * 1e6;
        state.ewma_us = Some(match state.ewma_us {
            Some(prev) => (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * sample,
            None => sample,
        });
    }

    /// A wire failure: like [`note_failure`](Self::note_failure), except
    /// that a timeout under a *clamped* deadline is not the shard's fault
    /// — the request ran out of budget — and must not poison the
    /// counters, the backoff window, or the breaker. (The connection is
    /// still condemned by the caller: a late reply would desync ids.)
    fn note_exchange_failure(
        &self,
        state: &mut LinkState,
        timeout: bool,
        count: bool,
        clamped: bool,
    ) {
        if timeout && clamped {
            return;
        }
        self.note_failure(state, timeout, count);
    }

    /// A failed connect or exchange: count it, advance the breaker, and
    /// schedule the next connect attempt with full-jitter exponential
    /// backoff (uniform in `[0, window]`, then the window doubles —
    /// de-synchronizing reconnect stampedes when many links fail at
    /// once).
    fn note_failure(&self, state: &mut LinkState, timeout: bool, count: bool) {
        if count {
            self.shard_failures.fetch_add(1, Ordering::Relaxed);
            if timeout {
                self.shard_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            state.consecutive_failures = state.consecutive_failures.saturating_add(1);
            if self.config.breaker_threshold > 0
                && state.consecutive_failures >= self.config.breaker_threshold
            {
                state.open_until = Some(Instant::now() + self.config.breaker_cooldown);
                state.consecutive_failures = 0;
                self.breaker_trips.fetch_add(1, Ordering::Relaxed);
            }
        }
        let window = state.backoff;
        state.retry_at = Some(Instant::now() + full_jitter(&mut state.jitter, window));
        state.backoff = (state.backoff * 2).min(self.config.backoff_max);
    }
}

/// Seed one link's jitter RNG: splitmix64 over `(seed, shard)`, so links
/// sharing a [`FleetConfig`] still draw independent schedules.
fn jitter_state(seed: u64, shard: u64) -> u64 {
    let mut z = seed
        .wrapping_add(shard.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

/// One full-jitter draw: uniform in `[0, window]`, advancing `state`
/// (xorshift64*).
fn full_jitter(state: &mut u64, window: Duration) -> Duration {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let nanos = window.as_nanos().min(u128::from(u64::MAX)) as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    Duration::from_nanos(r % (nanos + 1))
}

impl Retriever for FleetRouter {
    fn retrieve(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        self.retrieve_terms(&self.index.analyze_query(query), k)
    }

    fn retrieve_terms(&self, terms: &[TermId], k: usize) -> Vec<ScoredDoc> {
        self.retrieve_terms_with_status(terms, k).hits
    }

    fn retrieve_with_status(&self, query: &str, k: usize) -> Retrieval {
        self.retrieve_terms_with_status(&self.index.analyze_query(query), k)
    }

    fn retrieve_with_status_within(
        &self,
        query: &str,
        k: usize,
        budget_us: Option<u64>,
    ) -> Retrieval {
        self.retrieve_terms_within(&self.index.analyze_query(query), k, budget_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_index::{Document, IndexBuilder};

    fn tiny_index() -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add(Document::new(0, "u0", "apple", "apple iphone"));
        Arc::new(b.build())
    }

    fn dead_socket(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "serpdiv-router-test-{}-{tag}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn all_workers_down_yields_empty_partial_not_panic() {
        let router = FleetRouter::new(
            tiny_index(),
            vec![dead_socket("down-a"), dead_socket("down-b")],
            FleetConfig::default(),
        );
        let r = router.retrieve_with_status("apple", 5);
        assert!(r.hits.is_empty());
        assert!(!r.complete);
        let m = router.metrics();
        assert_eq!(m.requests, 1);
        assert_eq!(m.partial_gathers, 1);
        assert_eq!(m.shard_failures, 2);
    }

    #[test]
    fn backoff_window_fails_fast_and_expires() {
        let config = FleetConfig {
            backoff_base: Duration::from_millis(40),
            ..FleetConfig::default()
        };
        let router = FleetRouter::new(tiny_index(), vec![dead_socket("backoff")], config);
        assert!(!router.retrieve_with_status("apple", 5).complete);
        assert_eq!(router.metrics().shard_failures, 1);
        {
            // The jittered retry window never exceeds the configured
            // base, and the next window has doubled.
            let state = router.links[0].lock();
            let at = state.retry_at.expect("a failure schedules a retry window");
            assert!(at <= Instant::now() + Duration::from_millis(40));
            assert_eq!(state.backoff, Duration::from_millis(80));
        }
        // Inside the window (pinned, so the test does not depend on the
        // jitter draw): the shard fails fast without a connect attempt,
        // and the failure counter does not move.
        router.links[0].lock().retry_at = Some(Instant::now() + Duration::from_millis(50));
        assert!(!router.retrieve_with_status("apple", 5).complete);
        assert_eq!(router.metrics().shard_failures, 1);
        // After the window a real (failing) connect is attempted again.
        std::thread::sleep(Duration::from_millis(60));
        assert!(!router.retrieve_with_status("apple", 5).complete);
        assert_eq!(router.metrics().shard_failures, 2);
    }

    #[test]
    fn full_jitter_is_seeded_deterministic_and_bounded() {
        let window = Duration::from_millis(100);
        let draw = |seed, shard| {
            let mut st = jitter_state(seed, shard);
            (0..32)
                .map(|_| full_jitter(&mut st, window))
                .collect::<Vec<_>>()
        };
        // Same seed, same shard: the exact same schedule.
        assert_eq!(draw(7, 0), draw(7, 0));
        // Every draw stays within the window.
        assert!(draw(7, 0).iter().all(|d| *d <= window));
        // Different seeds and different shards draw different schedules.
        assert_ne!(draw(7, 0), draw(8, 0));
        assert_ne!(draw(7, 0), draw(7, 1));
        // Degenerate window: zero jitter, no panic.
        let mut st = jitter_state(7, 0);
        assert_eq!(full_jitter(&mut st, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn spent_budget_fails_shards_without_blame() {
        let router = FleetRouter::new(
            tiny_index(),
            vec![dead_socket("spent")],
            FleetConfig::default(),
        );
        let r = router.retrieve_terms_within(&router.index.analyze_query("apple"), 5, Some(0));
        assert!(!r.complete);
        assert!(r.hits.is_empty());
        // No connect attempt was made, so nothing was counted against
        // the shard.
        let m = router.metrics();
        assert_eq!(m.shard_failures, 0);
        assert_eq!(m.shard_timeouts, 0);
    }

    #[test]
    fn empty_query_is_complete_without_touching_workers() {
        let router = FleetRouter::new(
            tiny_index(),
            vec![dead_socket("idle")],
            FleetConfig::default(),
        );
        let r = router.retrieve_with_status("zzzzunknown", 5);
        assert!(r.complete);
        assert!(r.hits.is_empty());
        assert_eq!(router.metrics().shard_failures, 0);
    }

    #[test]
    fn wait_ready_times_out_with_named_shards() {
        let config = FleetConfig {
            shard_timeout: Duration::from_millis(50),
            ..FleetConfig::default()
        };
        let router = FleetRouter::new(tiny_index(), vec![dead_socket("notready")], config);
        let err = router
            .wait_ready(Duration::from_millis(80))
            .expect_err("no worker is listening");
        assert!(err.contains("[0]"), "error names the shard: {err}");
    }
}
