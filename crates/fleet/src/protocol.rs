//! The framed binary protocol between the router and its shard workers.
//!
//! One frame on the wire is a little-endian length prefix followed by a
//! fixed header and an opcode-specific body:
//!
//! ```text
//! [payload_len u32]                         — length prefix (excluded)
//! [magic u32][version u32][request_id u64]  — 17-byte fixed header
//! [opcode u8][body …]
//! ```
//!
//! Request ids are chosen by the router (monotone per connection) and
//! echoed verbatim by the worker, so a router that timed out on one
//! response can never mistake a late reply for the answer to a newer
//! question — mismatched ids condemn the connection.
//!
//! Decoding follows the same validate-on-decode discipline as the index
//! artifact formats: the length prefix is checked against a hard cap
//! *before* the payload is read ([`FrameError::Oversized`]), every body
//! length field is checked against the bytes actually present
//! ([`FrameError::Truncated`]), trailing garbage is rejected
//! ([`FrameError::Corrupt`]), and scores travel as raw `f64` bits — the
//! gather on the router side merges the exact bits the worker computed,
//! which is what keeps multi-process pages bit-identical to in-process
//! ones.

use bytes::{Buf, BufMut, BytesMut};
use serpdiv_index::{DocId, ScoredDoc};
use serpdiv_text::TermId;
use std::io::{Read, Write};

/// First four bytes of every frame payload.
pub const PROTOCOL_MAGIC: u32 = 0x5EA7_F1E7;
/// Current protocol version; bumped on any wire-format change.
pub const PROTOCOL_VERSION: u32 = 1;
/// Default cap on one frame's payload, bytes. Generous for any sane
/// `(k, terms)` and small enough that a corrupt or hostile length prefix
/// cannot make either side allocate gigabytes.
pub const DEFAULT_MAX_FRAME: u32 = 8 << 20;

const OP_QUERY: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_HITS: u8 = 0x81;
const OP_PONG: u8 = 0x82;

/// One protocol message. `Query`/`Ping` flow router → worker;
/// `Hits`/`Pong` flow back.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Score the shard for pre-analyzed query terms and return the
    /// shard-local top `k`.
    Query {
        /// Router-chosen id, echoed in the matching [`Frame::Hits`].
        id: u64,
        /// Page size requested (the worker clamps it to its doc range).
        k: u32,
        /// Pre-analyzed query terms (the router runs the analyzer once;
        /// term ids are global, shared through the shard artifact).
        terms: Vec<TermId>,
    },
    /// The shard-local top-`k`, ordered `(score desc, doc asc)`; scores
    /// are the worker's exact `f64` bits.
    Hits {
        /// Echo of the query id.
        id: u64,
        /// The ranked shard-local hits.
        hits: Vec<ScoredDoc>,
    },
    /// Health probe.
    Ping {
        /// Router-chosen id, echoed in the matching [`Frame::Pong`].
        id: u64,
    },
    /// Health reply, identifying which shard this worker serves — the
    /// router verifies the wiring (endpoint *s* really serves shard *s*)
    /// before trusting a worker's hits.
    Pong {
        /// Echo of the ping id.
        id: u64,
        /// Which shard of the partition the worker booted.
        shard_id: u32,
        /// First global doc id of the worker's range.
        base: u32,
        /// Number of doc ids in the worker's range.
        range_len: u32,
    },
}

impl Frame {
    /// The request id carried by any frame kind.
    pub fn id(&self) -> u64 {
        match *self {
            Frame::Query { id, .. }
            | Frame::Hits { id, .. }
            | Frame::Ping { id }
            | Frame::Pong { id, .. } => id,
        }
    }
}

/// Why a frame payload failed to decode. Any of these condemns the
/// connection it arrived on — framing errors are not recoverable
/// mid-stream, because nothing downstream of a bad length field can be
/// trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The payload does not start with [`PROTOCOL_MAGIC`].
    BadMagic,
    /// Unsupported [`PROTOCOL_VERSION`].
    BadVersion(u32),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// The payload ended before its declared contents.
    Truncated,
    /// The length prefix exceeds the configured frame cap; the payload
    /// was not read.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The payload framed correctly but its contents are structurally
    /// invalid; the payload names the failed check.
    Corrupt(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a fleet frame (bad magic)"),
            FrameError::BadVersion(v) => write!(f, "unsupported fleet protocol version {v}"),
            FrameError::BadOpcode(op) => write!(f, "unknown fleet opcode {op:#04x}"),
            FrameError::Truncated => write!(f, "truncated fleet frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "oversized fleet frame ({len} bytes, cap {max})")
            }
            FrameError::Corrupt(what) => write!(f, "corrupt fleet frame ({what})"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A frame-level failure on a live connection: either the transport broke
/// ([`Io`](Self::Io) — includes read timeouts) or the peer sent bytes
/// that do not decode ([`Frame`](Self::Frame)).
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (EOF, reset, timeout, …).
    Io(std::io::Error),
    /// The bytes arrived but are not a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "fleet transport error: {e}"),
            WireError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encode `frame` into its full wire form, length prefix included.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u32_le(PROTOCOL_MAGIC);
    payload.put_u32_le(PROTOCOL_VERSION);
    payload.put_u64_le(frame.id());
    match frame {
        Frame::Query { terms, k, .. } => {
            payload.put_u8(OP_QUERY);
            payload.put_u32_le(*k);
            payload.put_u32_le(terms.len() as u32);
            for t in terms {
                payload.put_u32_le(t.0);
            }
        }
        Frame::Hits { hits, .. } => {
            payload.put_u8(OP_HITS);
            payload.put_u32_le(hits.len() as u32);
            for h in hits {
                payload.put_u32_le(h.doc.0);
                payload.put_u64_le(h.score.to_bits());
            }
        }
        Frame::Ping { .. } => {
            payload.put_u8(OP_PING);
        }
        Frame::Pong {
            shard_id,
            base,
            range_len,
            ..
        } => {
            payload.put_u8(OP_PONG);
            payload.put_u32_le(*shard_id);
            payload.put_u32_le(*base);
            payload.put_u32_le(*range_len);
        }
    }
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    wire
}

/// Decode one frame payload (the bytes *after* the length prefix),
/// validating header, opcode, every body length field, and the absence of
/// trailing bytes.
pub fn decode_payload(payload: &[u8]) -> Result<Frame, FrameError> {
    let mut buf = payload;
    if buf.remaining() < 17 {
        return Err(FrameError::Truncated);
    }
    if buf.get_u32_le() != PROTOCOL_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let id = buf.get_u64_le();
    let opcode = buf.get_u8();
    let frame = match opcode {
        OP_QUERY => {
            if buf.remaining() < 8 {
                return Err(FrameError::Truncated);
            }
            let k = buf.get_u32_le();
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n * 4 {
                return Err(FrameError::Truncated);
            }
            let mut terms = Vec::with_capacity(n);
            for _ in 0..n {
                terms.push(TermId(buf.get_u32_le()));
            }
            Frame::Query { id, k, terms }
        }
        OP_HITS => {
            if buf.remaining() < 4 {
                return Err(FrameError::Truncated);
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n * 12 {
                return Err(FrameError::Truncated);
            }
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let doc = DocId(buf.get_u32_le());
                let score = f64::from_bits(buf.get_u64_le());
                hits.push(ScoredDoc { doc, score });
            }
            Frame::Hits { id, hits }
        }
        OP_PING => Frame::Ping { id },
        OP_PONG => {
            if buf.remaining() < 12 {
                return Err(FrameError::Truncated);
            }
            Frame::Pong {
                id,
                shard_id: buf.get_u32_le(),
                base: buf.get_u32_le(),
                range_len: buf.get_u32_le(),
            }
        }
        op => return Err(FrameError::BadOpcode(op)),
    };
    if buf.remaining() != 0 {
        return Err(FrameError::Corrupt("trailing bytes after frame body"));
    }
    Ok(frame)
}

/// Write one frame to `w` (length prefix + payload, one `write_all`).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Read one frame from `r`, enforcing `max_frame` on the length prefix
/// *before* reading the payload (an oversized or garbage prefix costs the
/// reader nothing but the 4 bytes already read).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, WireError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len > max_frame {
        return Err(WireError::Frame(FrameError::Oversized {
            len,
            max: max_frame,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(&payload).map_err(WireError::Frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let wire = encode_frame(&frame);
        let decoded = decode_payload(&wire[4..]).expect("valid frame");
        assert_eq!(frame, decoded);
        // Through the Read/Write path too.
        let mut cursor: &[u8] = &wire;
        let via_read = read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("readable");
        assert_eq!(frame, via_read);
    }

    #[test]
    fn all_frame_kinds_round_trip() {
        roundtrip(Frame::Ping { id: 7 });
        roundtrip(Frame::Pong {
            id: 7,
            shard_id: 2,
            base: 100,
            range_len: 50,
        });
        roundtrip(Frame::Query {
            id: u64::MAX,
            k: 10,
            terms: vec![TermId(0), TermId(42), TermId(u32::MAX)],
        });
        roundtrip(Frame::Hits {
            id: 3,
            hits: vec![
                ScoredDoc {
                    doc: DocId(5),
                    score: 1.25,
                },
                ScoredDoc {
                    doc: DocId(9),
                    score: -0.0,
                },
            ],
        });
        roundtrip(Frame::Query {
            id: 0,
            k: 0,
            terms: vec![],
        });
        roundtrip(Frame::Hits {
            id: 0,
            hits: vec![],
        });
    }

    #[test]
    fn score_bits_survive_exactly() {
        let tricky = [f64::MIN_POSITIVE, f64::MAX, 1.0 + f64::EPSILON, -0.0];
        let frame = Frame::Hits {
            id: 1,
            hits: tricky
                .iter()
                .enumerate()
                .map(|(i, &score)| ScoredDoc {
                    doc: DocId(i as u32),
                    score,
                })
                .collect(),
        };
        let wire = encode_frame(&frame);
        let Frame::Hits { hits, .. } = decode_payload(&wire[4..]).unwrap() else {
            panic!("wrong kind");
        };
        for (h, &expect) in hits.iter().zip(&tricky) {
            assert_eq!(h.score.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn bad_magic_version_opcode_rejected() {
        let mut wire = encode_frame(&Frame::Ping { id: 1 });
        wire[4] ^= 0xFF; // magic
        assert_eq!(decode_payload(&wire[4..]), Err(FrameError::BadMagic));

        let mut wire = encode_frame(&Frame::Ping { id: 1 });
        wire[8] = 9; // version
        assert_eq!(decode_payload(&wire[4..]), Err(FrameError::BadVersion(9)));

        let mut wire = encode_frame(&Frame::Ping { id: 1 });
        wire[20] = 0x7F; // opcode
        assert_eq!(decode_payload(&wire[4..]), Err(FrameError::BadOpcode(0x7F)));
    }

    #[test]
    fn every_truncation_rejected() {
        for frame in [
            Frame::Ping { id: 1 },
            Frame::Query {
                id: 2,
                k: 5,
                terms: vec![TermId(1), TermId(2)],
            },
            Frame::Hits {
                id: 3,
                hits: vec![ScoredDoc {
                    doc: DocId(1),
                    score: 1.0,
                }],
            },
            Frame::Pong {
                id: 4,
                shard_id: 0,
                base: 0,
                range_len: 1,
            },
        ] {
            let wire = encode_frame(&frame);
            for cut in 0..wire.len() - 5 {
                assert!(
                    decode_payload(&wire[4..4 + cut]).is_err(),
                    "{frame:?} cut at {cut} must fail"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = encode_frame(&Frame::Ping { id: 1 });
        wire.push(0xAB);
        assert_eq!(
            decode_payload(&wire[4..]),
            Err(FrameError::Corrupt("trailing bytes after frame body"))
        );
    }

    #[test]
    fn oversized_prefix_rejected_without_reading_payload() {
        // A giant declared length with no payload behind it: the reader
        // must refuse at the prefix, not try to allocate or block.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor: &[u8] = &wire;
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Err(WireError::Frame(FrameError::Oversized { len, max })) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, DEFAULT_MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_count_cannot_overallocate() {
        // A Hits frame declaring 2^32/12 hits in a 30-byte payload must be
        // rejected by the remaining-bytes check before any allocation.
        let mut payload = BytesMut::new();
        payload.put_u32_le(PROTOCOL_MAGIC);
        payload.put_u32_le(PROTOCOL_VERSION);
        payload.put_u64_le(1);
        payload.put_u8(OP_HITS);
        payload.put_u32_le(u32::MAX / 12);
        assert_eq!(decode_payload(&payload), Err(FrameError::Truncated));
    }
}
