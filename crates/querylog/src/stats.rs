//! Frequency statistics over a query log.
//!
//! Algorithm 1 of the paper needs "the popularity function f() that computes
//! the frequency of a query topic in Q". [`FreqTable`] materializes it once
//! per log.

use crate::record::{QueryId, QueryLog};

/// Submission counts per distinct query.
#[derive(Debug, Clone, Default)]
pub struct FreqTable {
    counts: Vec<u64>,
    total: u64,
}

impl FreqTable {
    /// Count query submissions in `log`.
    pub fn build(log: &QueryLog) -> Self {
        let mut counts = vec![0u64; log.num_queries()];
        for r in log.records() {
            counts[r.query.index()] += 1;
        }
        let total = counts.iter().sum();
        FreqTable { counts, total }
    }

    /// Click-weighted popularity — the paper's future work (ii), "the use
    /// of click-through data to improve our effectiveness results": a
    /// submission counts `1 + click_weight · #clicks`, so queries whose
    /// results users actually engage with weigh more in Algorithm 1's
    /// filter and in the Definition-1 probabilities. With
    /// `click_weight = 0` this is exactly [`FreqTable::build`].
    pub fn build_click_weighted(log: &QueryLog, click_weight: u64) -> Self {
        let mut counts = vec![0u64; log.num_queries()];
        for r in log.records() {
            counts[r.query.index()] += 1 + click_weight * r.clicks.len() as u64;
        }
        let total = counts.iter().sum();
        FreqTable { counts, total }
    }

    /// `f(q)`: number of submissions of `q`.
    pub fn freq(&self, q: QueryId) -> u64 {
        self.counts.get(q.index()).copied().unwrap_or(0)
    }

    /// Relative frequency of `q` in the log.
    pub fn rel_freq(&self, q: QueryId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.freq(q) as f64 / self.total as f64
        }
    }

    /// Total number of submissions counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `n` most frequent queries, by decreasing frequency (ties by id).
    pub fn top(&self, n: usize) -> Vec<(QueryId, u64)> {
        let mut pairs: Vec<(QueryId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (QueryId(i as u32), c))
            .collect();
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(n);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogRecord, UserId};

    fn log() -> QueryLog {
        let mut log = QueryLog::new();
        for (q, t) in [("a", 0), ("b", 1), ("a", 2), ("a", 3), ("c", 4)] {
            let query = log.intern_query(q);
            log.push(LogRecord {
                query,
                user: UserId(0),
                time: t,
                results: Vec::new(),
                clicks: Vec::new(),
            });
        }
        log
    }

    #[test]
    fn counts_are_correct() {
        let log = log();
        let f = FreqTable::build(&log);
        assert_eq!(f.freq(log.query_id("a").unwrap()), 3);
        assert_eq!(f.freq(log.query_id("b").unwrap()), 1);
        assert_eq!(f.total(), 5);
        assert_eq!(f.freq(QueryId(99)), 0);
    }

    #[test]
    fn relative_frequency() {
        let log = log();
        let f = FreqTable::build(&log);
        assert!((f.rel_freq(log.query_id("a").unwrap()) - 0.6).abs() < 1e-12);
        let empty = FreqTable::build(&QueryLog::new());
        assert_eq!(empty.rel_freq(QueryId(0)), 0.0);
    }

    #[test]
    fn click_weighting_boosts_engaged_queries() {
        use serpdiv_index::DocId;
        let mut log = QueryLog::new();
        // "a" submitted twice without clicks; "b" once with two clicks.
        for (q, t, clicks) in [
            ("a", 0u64, vec![]),
            ("a", 1, vec![]),
            ("b", 2, vec![DocId(1), DocId(2)]),
        ] {
            let query = log.intern_query(q);
            log.push(LogRecord {
                query,
                user: UserId(0),
                time: t,
                results: vec![DocId(1), DocId(2), DocId(3)],
                clicks,
            });
        }
        let plain = FreqTable::build(&log);
        let weighted = FreqTable::build_click_weighted(&log, 2);
        let a = log.query_id("a").unwrap();
        let b = log.query_id("b").unwrap();
        assert!(plain.freq(a) > plain.freq(b));
        // Weighted: a = 2, b = 1 + 2·2 = 5.
        assert_eq!(weighted.freq(a), 2);
        assert_eq!(weighted.freq(b), 5);
        assert!(weighted.rel_freq(b) > weighted.rel_freq(a));
        // Zero weight degenerates to the plain counts.
        let zero = FreqTable::build_click_weighted(&log, 0);
        assert_eq!(zero.freq(a), plain.freq(a));
        assert_eq!(zero.freq(b), plain.freq(b));
    }

    #[test]
    fn top_orders_by_frequency() {
        let log = log();
        let f = FreqTable::build(&log);
        let top = f.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, log.query_id("a").unwrap());
        assert_eq!(top[0].1, 3);
    }
}
