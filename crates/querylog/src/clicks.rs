//! User click models.
//!
//! The log records carry a click set `Cᵢ` (§3.1); the paper lists
//! "the use of click-through data to improve our effectiveness results"
//! as future work (§6). This module provides the standard click models
//! from the literature so that extension is exercisable:
//!
//! * [`PositionModel`] — examination decays geometrically with rank;
//!   clicks are independent given examination (Craswell et al.'s
//!   baseline),
//! * [`CascadeModel`] — the user scans top-down and stops at the first
//!   satisfying click (Craswell et al., WSDM 2008),
//! * [`ClickStats`] — empirical click-through rates per rank, and the
//!   **click entropy** of a query — Clough et al.'s (SIGIR 2009) signal
//!   for ambiguity, which the paper's related-work section discusses.

use crate::record::QueryLog;
use rand::Rng;
use serpdiv_index::DocId;

/// A model deciding which of a ranked result list's items get clicked.
pub trait ClickModel {
    /// Simulate the clicks on `results` (best rank first).
    fn clicks<R: Rng + ?Sized>(&self, results: &[DocId], rng: &mut R) -> Vec<DocId>;
}

/// Examination decays by `decay` per rank; a clicked item is clicked with
/// `p_click` given examination; examination continues regardless of
/// clicks (independent-click position model).
#[derive(Debug, Clone, Copy)]
pub struct PositionModel {
    /// Click probability at an examined rank.
    pub p_click: f64,
    /// Multiplicative examination decay per rank.
    pub decay: f64,
}

impl Default for PositionModel {
    fn default() -> Self {
        PositionModel {
            p_click: 0.6,
            decay: 0.75,
        }
    }
}

impl ClickModel for PositionModel {
    fn clicks<R: Rng + ?Sized>(&self, results: &[DocId], rng: &mut R) -> Vec<DocId> {
        let mut out = Vec::new();
        let mut p = self.p_click;
        for &doc in results {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                out.push(doc);
            }
            p *= self.decay;
        }
        out
    }
}

/// The cascade model: scan top-down, click with `p_click`, stop after the
/// first click with probability `p_satisfied`.
#[derive(Debug, Clone, Copy)]
pub struct CascadeModel {
    /// Click probability at the currently examined rank.
    pub p_click: f64,
    /// Probability a click satisfies the user (scan stops).
    pub p_satisfied: f64,
}

impl Default for CascadeModel {
    fn default() -> Self {
        CascadeModel {
            p_click: 0.45,
            p_satisfied: 0.7,
        }
    }
}

impl ClickModel for CascadeModel {
    fn clicks<R: Rng + ?Sized>(&self, results: &[DocId], rng: &mut R) -> Vec<DocId> {
        let mut out = Vec::new();
        for &doc in results {
            if rng.gen_bool(self.p_click.clamp(0.0, 1.0)) {
                out.push(doc);
                if rng.gen_bool(self.p_satisfied.clamp(0.0, 1.0)) {
                    break;
                }
            }
        }
        out
    }
}

/// Empirical click statistics over a log.
#[derive(Debug, Default, Clone)]
pub struct ClickStats {
    /// clicks[r] = number of clicks at result rank r (0-based).
    per_rank: Vec<u64>,
    /// Total records with at least one recorded result.
    records_with_results: u64,
}

impl ClickStats {
    /// Scan `log` and accumulate per-rank click counts.
    pub fn build(log: &QueryLog) -> Self {
        let mut per_rank: Vec<u64> = Vec::new();
        let mut records_with_results = 0u64;
        for r in log.records() {
            if r.results.is_empty() {
                continue;
            }
            records_with_results += 1;
            for c in &r.clicks {
                if let Some(rank) = r.results.iter().position(|d| d == c) {
                    if per_rank.len() <= rank {
                        per_rank.resize(rank + 1, 0);
                    }
                    per_rank[rank] += 1;
                }
            }
        }
        ClickStats {
            per_rank,
            records_with_results,
        }
    }

    /// Click-through rate at `rank` (0-based).
    pub fn ctr_at(&self, rank: usize) -> f64 {
        if self.records_with_results == 0 {
            return 0.0;
        }
        self.per_rank.get(rank).copied().unwrap_or(0) as f64 / self.records_with_results as f64
    }

    /// Deepest clicked rank observed.
    pub fn max_clicked_rank(&self) -> Option<usize> {
        if self.per_rank.is_empty() {
            None
        } else {
            Some(self.per_rank.len() - 1)
        }
    }

    /// Click entropy of one query (Clough et al.): the Shannon entropy of
    /// the distribution of clicked documents over all submissions of the
    /// query. High entropy ⇒ users click many different results ⇒ the
    /// query is likely ambiguous.
    pub fn click_entropy(log: &QueryLog, query: crate::record::QueryId) -> f64 {
        use std::collections::HashMap;
        let mut counts: HashMap<DocId, u64> = HashMap::new();
        let mut total = 0u64;
        for r in log.records() {
            if r.query != query {
                continue;
            }
            for &c in &r.clicks {
                *counts.entry(c).or_insert(0) += 1;
                total += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogRecord, QueryLog, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn docs(n: u32) -> Vec<DocId> {
        (0..n).map(DocId).collect()
    }

    #[test]
    fn position_model_prefers_top_ranks() {
        let model = PositionModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let results = docs(10);
        let mut rank_counts = [0usize; 10];
        for _ in 0..5_000 {
            for c in model.clicks(&results, &mut rng) {
                rank_counts[c.0 as usize] += 1;
            }
        }
        assert!(rank_counts[0] > rank_counts[4]);
        assert!(rank_counts[4] > rank_counts[9]);
    }

    #[test]
    fn cascade_model_stops_after_satisfaction() {
        let model = CascadeModel {
            p_click: 1.0,
            p_satisfied: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let clicks = model.clicks(&docs(10), &mut rng);
        assert_eq!(clicks, vec![DocId(0)], "always clicks rank 1 and stops");
    }

    #[test]
    fn empty_results_yield_no_clicks() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(PositionModel::default().clicks(&[], &mut rng).is_empty());
        assert!(CascadeModel::default().clicks(&[], &mut rng).is_empty());
    }

    fn log_with_clicks(clicks_per_record: &[Vec<u32>]) -> QueryLog {
        let mut log = QueryLog::new();
        let q = log.intern_query("q");
        for (t, clicked) in clicks_per_record.iter().enumerate() {
            log.push(LogRecord {
                query: q,
                user: UserId(0),
                time: t as u64,
                results: docs(5),
                clicks: clicked.iter().map(|&d| DocId(d)).collect(),
            });
        }
        log
    }

    #[test]
    fn click_stats_ctr() {
        let log = log_with_clicks(&[vec![0], vec![0, 2], vec![1]]);
        let stats = ClickStats::build(&log);
        assert!((stats.ctr_at(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.ctr_at(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.ctr_at(4), 0.0);
        assert_eq!(stats.max_clicked_rank(), Some(2));
    }

    #[test]
    fn click_entropy_separates_focused_from_diffuse() {
        // Focused: every submission clicks the same doc → entropy 0.
        let focused = log_with_clicks(&[vec![0], vec![0], vec![0]]);
        let q = focused.query_id("q").unwrap();
        assert_eq!(ClickStats::click_entropy(&focused, q), 0.0);
        // Diffuse: three different docs → entropy log2(3).
        let diffuse = log_with_clicks(&[vec![0], vec![1], vec![2]]);
        let q = diffuse.query_id("q").unwrap();
        assert!((ClickStats::click_entropy(&diffuse, q) - 3f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn entropy_of_unclicked_query_is_zero() {
        let log = log_with_clicks(&[vec![]]);
        let q = log.query_id("q").unwrap();
        assert_eq!(ClickStats::click_entropy(&log, q), 0.0);
    }
}
