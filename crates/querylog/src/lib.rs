//! Query-log substrate.
//!
//! §3.1 of the paper: "a query log Q is composed by a set of records
//! ⟨qᵢ, uᵢ, tᵢ, Vᵢ, Cᵢ⟩ storing, for each submitted query qᵢ: (i) the
//! anonymized user uᵢ; (ii) the timestamp tᵢ; (iii) the set Vᵢ of URLs of
//! documents returned as top-k results, and (iv) the set Cᵢ of URLs
//! corresponding to results clicked by uᵢ."
//!
//! The paper uses the AOL log (20M queries, 650k users, 3 months) and the
//! MSN log (15M queries, 1 month). Both are unavailable (AOL withdrawn, MSN
//! restricted), so [`generator`] synthesizes logs with the statistical
//! properties the method depends on — Zipfian topic popularity and sessions
//! in which ambiguous queries are refined into specializations with
//! probability proportional to subtopic popularity (see DESIGN.md §2).
//!
//! * [`record`] — interned queries, log records, the [`QueryLog`] container,
//! * [`generator`] — the seeded session-level user simulator with
//!   [`LogConfig::aol_like`] / [`LogConfig::msn_like`] presets,
//! * [`session`] — timeout-based session splitting (the baseline; the
//!   query-flow-graph splitter lives in `serpdiv-mining`),
//! * [`stats`] — frequency tables: the popularity function `f()` of
//!   Algorithm 1.

pub mod clicks;
pub mod generator;
pub mod record;
pub mod session;
pub mod stats;

pub use clicks::{CascadeModel, ClickModel, ClickStats, PositionModel};
pub use generator::{GroundTruth, LogConfig, QueryKind, QueryLogGenerator};
pub use record::{LogRecord, QueryId, QueryLog, UserId};
pub use session::{split_sessions, Session, SessionSplitter};
pub use stats::FreqTable;
