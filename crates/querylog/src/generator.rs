//! Synthetic query-log generation — the AOL/MSN stand-in.
//!
//! The user model captures exactly the behaviour the paper mines (§3): "the
//! presence of the same query refinements in several sessions issued by
//! different users gives us evidence that a query is ambiguous, while the
//! relative popularity of its specializations allow us to compute the
//! probabilities of the different meanings."
//!
//! Each simulated session: pick a user and a Zipf-popular topic; with some
//! probability start with the topic's *ambiguous* query and then refine it
//! to a specialization drawn from the topic's ground-truth interpretation
//! distribution; otherwise query the specialization directly. A configurable
//! fraction of sessions are non-topical noise. Timestamps place sessions
//! uniformly over the log period with realistic intra-session gaps, so
//! timeout splitting recovers the sessions.

use crate::record::{LogRecord, QueryId, QueryLog, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serpdiv_corpus::{Topic, Zipf};
use serpdiv_index::SearchEngine;

/// What a logged query string means, ground truth for evaluation only —
/// the mining pipeline never sees this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// The ambiguous query of a topic.
    Ambiguous {
        /// Topic index.
        topic: usize,
    },
    /// A specialization (subtopic query).
    Specialization {
        /// Topic index.
        topic: usize,
        /// Subtopic index within the topic.
        subtopic: usize,
    },
    /// Non-topical noise.
    Noise,
}

/// Ground-truth annotation of every interned query.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    kinds: Vec<QueryKind>,
}

impl GroundTruth {
    fn record(&mut self, id: QueryId, kind: QueryKind) {
        if id.index() >= self.kinds.len() {
            self.kinds.resize(id.index() + 1, QueryKind::Noise);
        }
        self.kinds[id.index()] = kind;
    }

    /// The kind of query `id`.
    pub fn kind(&self, id: QueryId) -> Option<QueryKind> {
        self.kinds.get(id.index()).copied()
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogConfig {
    /// Number of sessions to simulate.
    pub num_sessions: usize,
    /// Number of distinct users.
    pub num_users: usize,
    /// Log period in days (AOL: 92, MSN: 31).
    pub days: u64,
    /// Probability a topical session starts with the ambiguous query.
    pub p_start_ambiguous: f64,
    /// Probability the ambiguous query is refined into a specialization.
    pub p_refine: f64,
    /// Probability of a second refinement after the first.
    pub p_second_refine: f64,
    /// Fraction of sessions that are non-topical noise.
    pub noise_fraction: f64,
    /// Zipf exponent of topic popularity.
    pub topic_exponent: f64,
    /// Seed; generation is deterministic in it.
    pub seed: u64,
}

impl LogConfig {
    /// AOL-like preset: 3-month period, larger volume, more users.
    pub fn aol_like(num_sessions: usize) -> Self {
        LogConfig {
            num_sessions,
            num_users: (num_sessions / 8).max(1),
            days: 92,
            p_start_ambiguous: 0.55,
            p_refine: 0.70,
            p_second_refine: 0.25,
            noise_fraction: 0.35,
            topic_exponent: 0.9,
            seed: 0xA01,
        }
    }

    /// MSN-like preset: 1-month period, denser per-user activity.
    pub fn msn_like(num_sessions: usize) -> Self {
        LogConfig {
            num_sessions,
            num_users: (num_sessions / 12).max(1),
            days: 31,
            p_start_ambiguous: 0.60,
            p_refine: 0.75,
            p_second_refine: 0.20,
            noise_fraction: 0.30,
            topic_exponent: 1.0,
            seed: 0x135,
        }
    }

    /// Tiny preset for unit tests.
    pub fn tiny() -> Self {
        LogConfig {
            num_sessions: 300,
            num_users: 40,
            days: 7,
            p_start_ambiguous: 0.6,
            p_refine: 0.8,
            p_second_refine: 0.2,
            noise_fraction: 0.2,
            topic_exponent: 0.8,
            seed: 42,
        }
    }
}

/// The session-level user simulator.
#[derive(Debug)]
pub struct QueryLogGenerator<'a> {
    config: LogConfig,
    topics: &'a [Topic],
    noise_vocab: &'a [String],
}

impl<'a> QueryLogGenerator<'a> {
    /// Create a generator over `topics` with `noise_vocab` supplying the
    /// non-topical query words.
    ///
    /// # Panics
    /// Panics when `topics` or `noise_vocab` is empty.
    pub fn new(config: LogConfig, topics: &'a [Topic], noise_vocab: &'a [String]) -> Self {
        assert!(!topics.is_empty(), "topics required");
        assert!(!noise_vocab.is_empty(), "noise vocabulary required");
        QueryLogGenerator {
            config,
            topics,
            noise_vocab,
        }
    }

    /// Generate the log and its ground-truth annotation.
    pub fn generate(&self) -> (QueryLog, GroundTruth) {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut log = QueryLog::new();
        let mut truth = GroundTruth::default();
        let topic_dist = Zipf::new(self.topics.len(), cfg.topic_exponent);
        let period = cfg.days * 86_400;

        for _ in 0..cfg.num_sessions {
            let user = UserId(rng.gen_range(0..cfg.num_users) as u32);
            let mut t = rng.gen_range(0..period.saturating_sub(600).max(1));
            let push = |log: &mut QueryLog,
                        truth: &mut GroundTruth,
                        text: &str,
                        kind: QueryKind,
                        time: u64| {
                let query = log.intern_query(text);
                truth.record(query, kind);
                log.push(LogRecord {
                    query,
                    user,
                    time,
                    results: Vec::new(),
                    clicks: Vec::new(),
                });
            };

            if rng.gen_bool(cfg.noise_fraction) {
                let n = rng.gen_range(1..=3);
                for _ in 0..n {
                    let w1 = &self.noise_vocab[rng.gen_range(0..self.noise_vocab.len())];
                    let w2 = &self.noise_vocab[rng.gen_range(0..self.noise_vocab.len())];
                    push(
                        &mut log,
                        &mut truth,
                        &format!("{w1} {w2}"),
                        QueryKind::Noise,
                        t,
                    );
                    t += rng.gen_range(10..=180);
                }
                continue;
            }

            let topic_idx = topic_dist.sample(&mut rng);
            let topic = &self.topics[topic_idx];
            if rng.gen_bool(cfg.p_start_ambiguous) {
                push(
                    &mut log,
                    &mut truth,
                    &topic.query,
                    QueryKind::Ambiguous { topic: topic_idx },
                    t,
                );
                t += rng.gen_range(10..=180);
                if rng.gen_bool(cfg.p_refine) {
                    let sub = sample_subtopic(topic, &mut rng);
                    push(
                        &mut log,
                        &mut truth,
                        &topic.subtopics[sub].query,
                        QueryKind::Specialization {
                            topic: topic_idx,
                            subtopic: sub,
                        },
                        t,
                    );
                    t += rng.gen_range(10..=180);
                    if rng.gen_bool(cfg.p_second_refine) {
                        let sub2 = sample_subtopic(topic, &mut rng);
                        push(
                            &mut log,
                            &mut truth,
                            &topic.subtopics[sub2].query,
                            QueryKind::Specialization {
                                topic: topic_idx,
                                subtopic: sub2,
                            },
                            t,
                        );
                    }
                }
            } else {
                // The user knows what they want: direct specialization.
                let sub = sample_subtopic(topic, &mut rng);
                push(
                    &mut log,
                    &mut truth,
                    &topic.subtopics[sub].query,
                    QueryKind::Specialization {
                        topic: topic_idx,
                        subtopic: sub,
                    },
                    t,
                );
            }
        }
        log.sort_by_time();
        (log, truth)
    }

    /// Fill `Vᵢ` (top-`k` results) and `Cᵢ` (intent-aware position-biased
    /// clicks) of every record by running each distinct query once through
    /// `engine`.
    ///
    /// The click model examines results top-down with probability
    /// `0.6 · 0.75^pos` (position bias as observed in real logs), boosted
    /// for results matching the user's *intent*: for a specialization
    /// query, documents titled with that specialization; for an ambiguous
    /// query, the user's hidden intent is drawn from the topic's subtopic
    /// distribution — so clicks on ambiguous queries scatter over
    /// interpretations (the click-entropy signal of Clough et al., which
    /// the paper's related work discusses). Records of the same query
    /// share results but draw intents and clicks independently.
    pub fn attach_results(&self, log: &mut QueryLog, engine: &SearchEngine<'_>, k: usize) -> usize {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xC11C);
        // Retrieve once per distinct query; keep result titles for the
        // intent preference.
        let mut results_cache: Vec<Option<Vec<(serpdiv_index::DocId, String)>>> =
            vec![None; log.num_queries()];
        let mut filled = 0usize;
        let texts: Vec<String> = (0..log.num_queries())
            .map(|i| log.query_text(QueryId(i as u32)).unwrap().to_string())
            .collect();
        let n = log.len();
        for idx in 0..n {
            let qid = log.records()[idx].query;
            if results_cache[qid.index()].is_none() {
                let hits = engine.search(&texts[qid.index()], k);
                let docs = hits
                    .into_iter()
                    .map(|h| {
                        let title = engine
                            .index()
                            .store()
                            .get(h.doc)
                            .map(|d| d.title.clone())
                            .unwrap_or_default();
                        (h.doc, title)
                    })
                    .collect();
                results_cache[qid.index()] = Some(docs);
            }
            let results = results_cache[qid.index()].as_ref().unwrap().clone();

            // The user's intent: the title pattern of the pages they want.
            let query_text = &texts[qid.index()];
            let intent_title: Option<String> =
                if let Some(topic) = self.topics.iter().find(|t| &t.query == query_text) {
                    // Ambiguous query: draw the hidden intent.
                    let sub = sample_subtopic(topic, &mut rng);
                    Some(topic.subtopics[sub].query.clone())
                } else if self
                    .topics
                    .iter()
                    .any(|t| t.subtopics.iter().any(|s| &s.query == query_text))
                {
                    Some(query_text.clone())
                } else {
                    None
                };

            let mut clicks = Vec::new();
            for (pos, (doc, title)) in results.iter().enumerate() {
                let mut p = 0.6 * 0.75f64.powi(pos as i32);
                match &intent_title {
                    Some(want) if title == want => p = (p * 1.8).min(0.95),
                    Some(_) => p *= 0.35,
                    None => {}
                }
                if rng.gen_bool(p) {
                    clicks.push(*doc);
                }
            }
            let rec = &mut log_records_mut(log)[idx];
            rec.results = results.into_iter().map(|(d, _)| d).collect();
            rec.clicks = clicks;
            filled += 1;
        }
        filled
    }
}

/// Sample a subtopic index according to the topic's weight distribution.
fn sample_subtopic<R: Rng + ?Sized>(topic: &Topic, rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, s) in topic.subtopics.iter().enumerate() {
        acc += s.weight;
        if u <= acc {
            return i;
        }
    }
    topic.subtopics.len() - 1
}

// Private mutable access to the record vector, kept out of the public API
// so the time-ordering invariant stays under QueryLog's control.
fn log_records_mut(log: &mut QueryLog) -> &mut Vec<LogRecord> {
    // SAFETY of the invariant: attach_results only mutates results/clicks,
    // never query/user/time.
    log.records_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_corpus::{Testbed, TestbedConfig};

    fn small_bed() -> Testbed {
        let mut cfg = TestbedConfig::small();
        cfg.num_topics = 4;
        cfg.docs_per_subtopic = 5;
        cfg.noise_docs = 50;
        Testbed::generate(cfg)
    }

    fn noise_vocab() -> Vec<String> {
        (0..100).map(|i| format!("noise{i:03}")).collect()
    }

    #[test]
    fn generates_requested_sessions() {
        let bed = small_bed();
        let nv = noise_vocab();
        let gen = QueryLogGenerator::new(LogConfig::tiny(), &bed.topics, &nv);
        let (log, truth) = gen.generate();
        assert!(log.len() >= 300, "at least one query per session");
        // Every interned query has a ground-truth kind.
        for i in 0..log.num_queries() {
            assert!(truth.kind(QueryId(i as u32)).is_some());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let bed = small_bed();
        let nv = noise_vocab();
        let gen = QueryLogGenerator::new(LogConfig::tiny(), &bed.topics, &nv);
        let (a, _) = gen.generate();
        let (b, _) = gen.generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[0].time, b.records()[0].time);
        assert_eq!(a.num_queries(), b.num_queries());
    }

    #[test]
    fn records_are_time_sorted() {
        let bed = small_bed();
        let nv = noise_vocab();
        let gen = QueryLogGenerator::new(LogConfig::tiny(), &bed.topics, &nv);
        let (log, _) = gen.generate();
        for w in log.records().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn refinements_follow_ambiguous_queries_in_sessions() {
        let bed = small_bed();
        let nv = noise_vocab();
        let gen = QueryLogGenerator::new(LogConfig::tiny(), &bed.topics, &nv);
        let (log, truth) = gen.generate();
        let sessions = crate::session::split_sessions(&log);
        // Count sessions where an ambiguous query is directly followed by a
        // specialization of the same topic — the signal Algorithm 1 mines.
        let mut refined = 0usize;
        for s in &sessions {
            for w in s.records.windows(2) {
                let a = truth.kind(log.records()[w[0]].query);
                let b = truth.kind(log.records()[w[1]].query);
                if let (
                    Some(QueryKind::Ambiguous { topic: t1 }),
                    Some(QueryKind::Specialization { topic: t2, .. }),
                ) = (a, b)
                {
                    if t1 == t2 {
                        refined += 1;
                    }
                }
            }
        }
        // tiny(): 300 sessions, 80% topical, 60% start ambiguous, 80% refine
        // ⇒ expect ≳ 100; demand a loose lower bound.
        assert!(refined > 50, "only {refined} refinement pairs");
    }

    #[test]
    fn popular_subtopics_dominate() {
        let bed = small_bed();
        let nv = noise_vocab();
        let mut cfg = LogConfig::tiny();
        cfg.num_sessions = 2000;
        let gen = QueryLogGenerator::new(cfg, &bed.topics, &nv);
        let (log, _) = gen.generate();
        let topic = &bed.topics[0];
        let f = crate::stats::FreqTable::build(&log);
        let first = log
            .query_id(&topic.subtopics[0].query)
            .map(|q| f.freq(q))
            .unwrap_or(0);
        let last = log
            .query_id(&topic.subtopics.last().unwrap().query)
            .map(|q| f.freq(q))
            .unwrap_or(0);
        assert!(
            first > last,
            "heaviest subtopic {first} must out-submit lightest {last}"
        );
    }

    #[test]
    fn attach_results_fills_records() {
        let bed = small_bed();
        let nv = noise_vocab();
        let mut cfg = LogConfig::tiny();
        cfg.num_sessions = 50;
        let gen = QueryLogGenerator::new(cfg, &bed.topics, &nv);
        let (mut log, _) = gen.generate();
        let index = bed.build_index();
        let engine = SearchEngine::new(&index);
        let filled = gen.attach_results(&mut log, &engine, 10);
        assert_eq!(filled, log.len());
        // Topical queries must have results; clicks ⊆ results.
        let mut any_results = false;
        for r in log.records() {
            any_results |= !r.results.is_empty();
            for c in &r.clicks {
                assert!(r.results.contains(c));
            }
        }
        assert!(any_results);
    }
}
