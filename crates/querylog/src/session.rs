//! Timeout-based session splitting.
//!
//! §3: "Splitting the chronologically ordered sequence of queries submitted
//! by a given user into sessions is a challenging research topic." The
//! classic baseline segments each user's stream at inactivity gaps (30
//! minutes is the standard threshold). The paper's preferred *logical*
//! sessions come from the Query-Flow Graph (`serpdiv-mining::qfg`), which
//! refines these physical sessions; both implement the same output shape.

use crate::record::{QueryLog, UserId};
use std::collections::HashMap;

/// One session: indices into `QueryLog::records`, time-ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The user owning the session.
    pub user: UserId,
    /// Record indices, in chronological order.
    pub records: Vec<usize>,
}

impl Session {
    /// Number of queries in the session.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True for an empty session (never produced by the splitters).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Timeout-based splitter.
#[derive(Debug, Clone, Copy)]
pub struct SessionSplitter {
    /// Maximum inactivity gap within a session, in seconds.
    pub timeout: u64,
}

impl Default for SessionSplitter {
    fn default() -> Self {
        // The conventional 30-minute session timeout.
        SessionSplitter { timeout: 30 * 60 }
    }
}

impl SessionSplitter {
    /// Split `log` into per-user sessions at inactivity gaps.
    ///
    /// Sessions are returned ordered by (user, start time); every record
    /// belongs to exactly one session.
    pub fn split(&self, log: &QueryLog) -> Vec<Session> {
        // Group record indices per user, preserving time order.
        let mut per_user: HashMap<UserId, Vec<usize>> = HashMap::new();
        let mut order: Vec<(u64, usize)> = log
            .records()
            .iter()
            .enumerate()
            .map(|(i, r)| (r.time, i))
            .collect();
        order.sort_unstable();
        for &(_, i) in &order {
            per_user.entry(log.records()[i].user).or_default().push(i);
        }
        let mut users: Vec<UserId> = per_user.keys().copied().collect();
        users.sort_unstable();

        let mut sessions = Vec::new();
        for user in users {
            let indices = &per_user[&user];
            let mut current: Vec<usize> = Vec::new();
            let mut last_time: Option<u64> = None;
            for &i in indices {
                let t = log.records()[i].time;
                if let Some(lt) = last_time {
                    if t.saturating_sub(lt) > self.timeout {
                        sessions.push(Session {
                            user,
                            records: std::mem::take(&mut current),
                        });
                    }
                }
                current.push(i);
                last_time = Some(t);
            }
            if !current.is_empty() {
                sessions.push(Session {
                    user,
                    records: current,
                });
            }
        }
        sessions
    }
}

/// Split with the default 30-minute timeout.
pub fn split_sessions(log: &QueryLog) -> Vec<Session> {
    SessionSplitter::default().split(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogRecord, QueryLog};

    fn log_with(entries: &[(&str, u32, u64)]) -> QueryLog {
        let mut log = QueryLog::new();
        for &(q, u, t) in entries {
            let query = log.intern_query(q);
            log.push(LogRecord {
                query,
                user: UserId(u),
                time: t,
                results: Vec::new(),
                clicks: Vec::new(),
            });
        }
        log
    }

    #[test]
    fn gap_splits_sessions() {
        let log = log_with(&[
            ("a", 1, 0),
            ("b", 1, 60),
            ("c", 1, 60 + 31 * 60), // beyond the 30-min timeout
        ]);
        let sessions = split_sessions(&log);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].records, vec![0, 1]);
        assert_eq!(sessions[1].records, vec![2]);
    }

    #[test]
    fn users_are_separated() {
        let log = log_with(&[("a", 1, 0), ("b", 2, 10), ("c", 1, 20)]);
        let sessions = split_sessions(&log);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].user, UserId(1));
        assert_eq!(sessions[0].records, vec![0, 2]);
        assert_eq!(sessions[1].user, UserId(2));
    }

    #[test]
    fn out_of_order_records_are_time_sorted() {
        let log = log_with(&[("b", 1, 100), ("a", 1, 0)]);
        let sessions = split_sessions(&log);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].records, vec![1, 0]);
    }

    #[test]
    fn every_record_in_exactly_one_session() {
        let log = log_with(&[
            ("a", 1, 0),
            ("b", 2, 5),
            ("c", 1, 3600 * 2),
            ("d", 3, 7),
            ("e", 2, 3600 * 5),
        ]);
        let sessions = split_sessions(&log);
        let mut seen: Vec<usize> = sessions.iter().flat_map(|s| s.records.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_log() {
        let log = QueryLog::new();
        assert!(split_sessions(&log).is_empty());
    }

    #[test]
    fn custom_timeout() {
        let log = log_with(&[("a", 1, 0), ("b", 1, 100)]);
        let strict = SessionSplitter { timeout: 50 };
        assert_eq!(strict.split(&log).len(), 2);
        let lax = SessionSplitter { timeout: 200 };
        assert_eq!(lax.split(&log).len(), 1);
    }
}
