//! Log records and the query-log container.
//!
//! Query strings are interned to dense [`QueryId`]s: the mining structures
//! (query-flow graph, frequency tables, recommendation model) all work on
//! integer ids and only materialize strings at the API boundary.

use serde::{Deserialize, Serialize};
use serpdiv_index::DocId;
use std::collections::HashMap;

/// Dense identifier of a distinct query string.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Anonymized user identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

/// One record ⟨q, u, t, V, C⟩ of the log (Definition in §3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogRecord {
    /// The submitted query.
    pub query: QueryId,
    /// The anonymized user.
    pub user: UserId,
    /// Submission timestamp, seconds since the log epoch.
    pub time: u64,
    /// Top-k result documents (Vᵢ) — may be empty if results were not
    /// recorded (the diversification method itself never reads them).
    pub results: Vec<DocId>,
    /// Clicked documents (Cᵢ) ⊆ results.
    pub clicks: Vec<DocId>,
}

/// A query log: interned query strings plus time-ordered records.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct QueryLog {
    queries: Vec<String>,
    #[serde(skip)]
    by_text: HashMap<String, QueryId>,
    records: Vec<LogRecord>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text`, returning its stable id.
    pub fn intern_query(&mut self, text: &str) -> QueryId {
        if let Some(&id) = self.by_text.get(text) {
            return id;
        }
        let id = QueryId(self.queries.len() as u32);
        self.queries.push(text.to_string());
        self.by_text.insert(text.to_string(), id);
        id
    }

    /// Id of `text` if it occurs in the log.
    pub fn query_id(&self, text: &str) -> Option<QueryId> {
        self.by_text.get(text).copied()
    }

    /// The string of `id`.
    pub fn query_text(&self, id: QueryId) -> Option<&str> {
        self.queries.get(id.index()).map(String::as_str)
    }

    /// Number of distinct queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Append a record. Records should be pushed in nondecreasing time
    /// order; [`QueryLog::sort_by_time`] restores the invariant otherwise.
    pub fn push(&mut self, record: LogRecord) {
        debug_assert!(
            record.query.index() < self.queries.len(),
            "unknown query id"
        );
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records (query submissions).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sort records chronologically (stable: preserves submission order of
    /// equal timestamps).
    pub fn sort_by_time(&mut self) {
        self.records.sort_by_key(|r| r.time);
    }

    /// Crate-private mutable access for the generator's `attach_results`;
    /// callers must preserve the time-ordering invariant.
    pub(crate) fn records_mut(&mut self) -> &mut Vec<LogRecord> {
        &mut self.records
    }

    /// Split the record stream at `fraction` (by position in time order)
    /// into a training log and a test log sharing this log's interning.
    ///
    /// Appendix C: "The two query logs were split into two different
    /// subsets. The first one (containing approximatively the 70% of the
    /// queries) was used for training ... and the second one for testing."
    pub fn split_train_test(&self, fraction: f64) -> (QueryLog, QueryLog) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let cut = (self.records.len() as f64 * fraction).round() as usize;
        let make = |records: &[LogRecord]| QueryLog {
            queries: self.queries.clone(),
            by_text: self.by_text.clone(),
            records: records.to_vec(),
        };
        (make(&self.records[..cut]), make(&self.records[cut..]))
    }

    /// Rebuild the text→id map after deserialization.
    pub fn rebuild_reverse_index(&mut self) {
        self.by_text = self
            .queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.clone(), QueryId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(log: &mut QueryLog, q: &str, u: u32, t: u64) -> LogRecord {
        let query = log.intern_query(q);
        LogRecord {
            query,
            user: UserId(u),
            time: t,
            results: Vec::new(),
            clicks: Vec::new(),
        }
    }

    #[test]
    fn interning_is_stable() {
        let mut log = QueryLog::new();
        let a = log.intern_query("apple");
        let b = log.intern_query("apple");
        assert_eq!(a, b);
        assert_eq!(log.num_queries(), 1);
        assert_eq!(log.query_text(a), Some("apple"));
        assert_eq!(log.query_id("apple"), Some(a));
        assert_eq!(log.query_id("pear"), None);
    }

    #[test]
    fn push_and_iterate() {
        let mut log = QueryLog::new();
        let r = rec(&mut log, "apple", 1, 100);
        log.push(r);
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].time, 100);
    }

    #[test]
    fn sort_by_time() {
        let mut log = QueryLog::new();
        let r2 = rec(&mut log, "b", 1, 200);
        let r1 = rec(&mut log, "a", 1, 100);
        log.push(r2);
        log.push(r1);
        log.sort_by_time();
        assert_eq!(log.records()[0].time, 100);
    }

    #[test]
    fn train_test_split_shares_interning() {
        let mut log = QueryLog::new();
        for i in 0..10u64 {
            let r = rec(&mut log, &format!("q{i}"), 1, i);
            log.push(r);
        }
        let (train, test) = log.split_train_test(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Shared interning: a query occurring only in the test slice still
        // resolves in the training log's dictionary.
        assert!(train.query_id("q9").is_some());
        assert_eq!(test.records()[0].time, 7);
    }

    #[test]
    fn split_edge_fractions() {
        let mut log = QueryLog::new();
        let r = rec(&mut log, "a", 1, 0);
        log.push(r);
        let (tr, te) = log.split_train_test(0.0);
        assert_eq!((tr.len(), te.len()), (0, 1));
        let (tr, te) = log.split_train_test(1.0);
        assert_eq!((tr.len(), te.len()), (1, 0));
    }
}
