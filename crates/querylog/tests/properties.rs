//! Property-based tests for the query-log substrate.

use proptest::prelude::*;
use serpdiv_querylog::{split_sessions, LogRecord, QueryLog, SessionSplitter, UserId};

fn build_log(entries: &[(u8, u32)]) -> QueryLog {
    // (user, time) pairs; query text derives from the pair.
    let mut log = QueryLog::new();
    for &(u, t) in entries {
        let q = log.intern_query(&format!("q{}", t % 7));
        log.push(LogRecord {
            query: q,
            user: UserId(u32::from(u % 5)),
            time: u64::from(t),
            results: Vec::new(),
            clicks: Vec::new(),
        });
    }
    log
}

proptest! {
    /// Session splitting is a partition: every record in exactly one
    /// session, sessions time-ordered within, single-user.
    #[test]
    fn session_split_is_a_partition(entries in prop::collection::vec((any::<u8>(), 0u32..100_000), 0..120)) {
        let log = build_log(&entries);
        let sessions = split_sessions(&log);
        let mut seen: Vec<usize> = sessions.iter().flat_map(|s| s.records.clone()).collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..log.len()).collect();
        prop_assert_eq!(seen, expected);
        for s in &sessions {
            prop_assert!(!s.is_empty());
            for w in s.records.windows(2) {
                prop_assert!(log.records()[w[0]].time <= log.records()[w[1]].time);
                prop_assert_eq!(log.records()[w[0]].user, s.user);
            }
        }
    }

    /// Within a session, consecutive gaps never exceed the timeout; the
    /// next session of the same user starts after a gap above it.
    #[test]
    fn session_gaps_respect_timeout(
        entries in prop::collection::vec((any::<u8>(), 0u32..50_000), 1..80),
        timeout in 1u64..5_000,
    ) {
        let log = build_log(&entries);
        let splitter = SessionSplitter { timeout };
        let sessions = splitter.split(&log);
        for s in &sessions {
            for w in s.records.windows(2) {
                let gap = log.records()[w[1]].time - log.records()[w[0]].time;
                prop_assert!(gap <= timeout, "gap {gap} > timeout {timeout}");
            }
        }
    }

    /// Train/test split preserves record count and order for any fraction.
    #[test]
    fn train_test_split_partitions(
        entries in prop::collection::vec((any::<u8>(), 0u32..10_000), 0..60),
        fraction in 0.0f64..1.0,
    ) {
        let mut log = build_log(&entries);
        log.sort_by_time();
        let (train, test) = log.split_train_test(fraction);
        prop_assert_eq!(train.len() + test.len(), log.len());
        // Concatenation reproduces the original record times.
        let combined: Vec<u64> = train
            .records()
            .iter()
            .chain(test.records())
            .map(|r| r.time)
            .collect();
        let original: Vec<u64> = log.records().iter().map(|r| r.time).collect();
        prop_assert_eq!(combined, original);
    }

    /// Frequency table totals match the record count.
    #[test]
    fn freq_table_total(entries in prop::collection::vec((any::<u8>(), 0u32..10_000), 0..60)) {
        let log = build_log(&entries);
        let f = serpdiv_querylog::FreqTable::build(&log);
        prop_assert_eq!(f.total(), log.len() as u64);
        let sum: u64 = (0..log.num_queries())
            .map(|i| f.freq(serpdiv_querylog::QueryId(i as u32)))
            .sum();
        prop_assert_eq!(sum, log.len() as u64);
    }
}
