//! Wilcoxon signed-rank test (paired, two-sided).
//!
//! §5: "none of these differences can be classified as statistically
//! significant according to the Wilcoxon signed-rank test at 0.05 level of
//! significance" — the Table 3 harness reruns this check.
//!
//! Implementation: zero differences are dropped (the standard Wilcoxon
//! convention), absolute differences are ranked with midranks for ties,
//! and the two-sided p-value uses the normal approximation with tie
//! correction and continuity correction — accurate for n ≳ 10 and the
//! standard approach in IR evaluation (50 topics).

/// Outcome of the test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences.
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of nonzero paired differences actually tested.
    pub n: usize,
    /// Two-sided p-value (1.0 when n == 0: no evidence either way).
    pub p_value: f64,
}

impl WilcoxonResult {
    /// Is the difference significant at `level` (e.g. 0.05)?
    pub fn significant_at(&self, level: f64) -> bool {
        self.p_value < level
    }
}

/// Run the test on paired samples `a` and `b` (testing `a − b`).
///
/// # Panics
/// Panics when the samples have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    // Nonzero differences.
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| d.abs() > 1e-15)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult {
            w_plus: 0.0,
            w_minus: 0.0,
            n: 0,
            p_value: 1.0,
        };
    }
    // Rank |d| ascending with midranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&i, &j| diffs[i].abs().total_cmp(&diffs[j].abs()));
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[order[j + 1]].abs() - diffs[order[i]].abs()).abs() < 1e-15 {
            j += 1;
        }
        // Tied block [i..=j] shares the midrank.
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }

    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }

    // Normal approximation with tie and continuity corrections.
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    let w = w_plus.min(w_minus);
    let p_value = if var <= 0.0 {
        1.0
    } else {
        let z = (w - mean + 0.5) / var.sqrt();
        // Two-sided: 2·Φ(z) with z ≤ 0 by construction of w = min(...).
        (2.0 * phi(z)).clamp(0.0, 1.0)
    };
    WilcoxonResult {
        w_plus,
        w_minus,
        n,
        p_value,
    }
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 polynomial, |ε| < 1.5e-7).
fn phi(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = vec![0.2, 0.3, 0.4, 0.5];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n, 0);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn clearly_shifted_samples_are_significant() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 5.0).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.n, 30);
        assert_eq!(r.w_plus, 0.0);
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn symmetric_noise_is_not_significant() {
        // Alternating ±δ differences cancel out.
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..40)
            .map(|i| i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
        assert!((r.w_plus + r.w_minus - (40.0 * 41.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn rank_sums_are_complementary() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![0.5, 2.5, 2.0, 4.5, 4.0, 7.0];
        let r = wilcoxon_signed_rank(&a, &b);
        let total = r.n as f64 * (r.n as f64 + 1.0) / 2.0;
        assert!((r.w_plus + r.w_minus - total).abs() < 1e-9);
    }

    #[test]
    fn p_value_in_unit_interval() {
        let a = vec![0.1, 0.9, 0.3, 0.7, 0.5];
        let b = vec![0.2, 0.8, 0.4, 0.6, 0.5];
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn known_value_sanity() {
        // n=10 with all differences positive: W- = 0, classic critical
        // region ⇒ p ≈ 0.002 (exact two-sided 2/1024 ≈ 0.00195).
        let a: Vec<f64> = (1..=10).map(|i| i as f64 + 1.0).collect();
        let b: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value < 0.02, "p = {}", r.p_value);
        assert!(r.p_value > 0.0005);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}
