//! Intent-aware precision (IA-P; Agrawal et al., WSDM 2009).
//!
//! §5: IA-P "extends the traditional notion of precision in order to
//! account for the possible aspects underlying a query and their relative
//! importance":
//!
//! ```text
//! IA-P@k = Σ_i P(i|q) · Precision_i@k
//! Precision_i@k = |{d ∈ top-k : J(d, i)}| / k
//! ```
//!
//! With no intent distribution supplied, intents are uniform — the TREC
//! 2009 Diversity-task convention the paper follows.

use serpdiv_corpus::{Qrels, TopicId};
use serpdiv_index::DocId;

/// IA-P@k with uniform intent weights.
pub fn ia_precision_at(ranking: &[DocId], qrels: &Qrels, topic: TopicId, k: usize) -> f64 {
    let m = qrels.num_subtopics(topic);
    if m == 0 || k == 0 {
        return 0.0;
    }
    let weights = vec![1.0 / m as f64; m];
    ia_precision_weighted_at(ranking, qrels, topic, &weights, k)
}

/// IA-P@k with explicit intent weights (must have one weight per subtopic).
///
/// # Panics
/// Panics when the weight count differs from the declared subtopic count.
pub fn ia_precision_weighted_at(
    ranking: &[DocId],
    qrels: &Qrels,
    topic: TopicId,
    weights: &[f64],
    k: usize,
) -> f64 {
    let m = qrels.num_subtopics(topic);
    assert_eq!(weights.len(), m, "one weight per subtopic");
    if m == 0 || k == 0 {
        return 0.0;
    }
    let mut score = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        let hits = ranking
            .iter()
            .take(k)
            .filter(|&&d| qrels.is_relevant(topic, i, d))
            .count();
        score += w * hits as f64 / k as f64;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qrels() -> Qrels {
        let mut q = Qrels::new();
        q.declare_topic(0, 2);
        q.add(0, 0, DocId(0));
        q.add(0, 0, DocId(1));
        q.add(0, 1, DocId(2));
        q
    }

    #[test]
    fn uniform_weights() {
        let q = qrels();
        // top-2 = {0, 2}: sub0 precision 1/2, sub1 precision 1/2.
        let s = ia_precision_at(&[DocId(0), DocId(2)], &q, 0, 2);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn covering_both_intents_beats_one() {
        let q = qrels();
        let both = ia_precision_at(&[DocId(0), DocId(2)], &q, 0, 2);
        let one = ia_precision_at(&[DocId(0), DocId(1)], &q, 0, 2);
        // both: .5·.5 + .5·.5 = .5 ; one: .5·1 + .5·0 = .5 — equal here,
        // but at k=1 vs deeper pools weighting matters; use weighted form.
        assert!((both - one).abs() < 1e-12);
        let weighted_both = ia_precision_weighted_at(&[DocId(0), DocId(2)], &q, 0, &[0.2, 0.8], 2);
        let weighted_one = ia_precision_weighted_at(&[DocId(0), DocId(1)], &q, 0, &[0.2, 0.8], 2);
        assert!(weighted_both > weighted_one);
    }

    #[test]
    fn empty_and_unknown_cases() {
        let q = qrels();
        assert_eq!(ia_precision_at(&[], &q, 0, 5), 0.0);
        assert_eq!(ia_precision_at(&[DocId(0)], &q, 0, 0), 0.0);
        assert_eq!(ia_precision_at(&[DocId(0)], &q, 9, 5), 0.0);
    }

    #[test]
    fn k_denominator_penalizes_short_relevance() {
        let q = qrels();
        // One relevant doc in a k=4 window: precision_i = 1/4.
        let s = ia_precision_at(&[DocId(0), DocId(9), DocId(8), DocId(7)], &q, 0, 4);
        assert!((s - 0.5 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_one() {
        let mut q = Qrels::new();
        q.declare_topic(0, 1);
        q.add(0, 0, DocId(0));
        q.add(0, 0, DocId(1));
        let s = ia_precision_at(&[DocId(0), DocId(1)], &q, 0, 2);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per subtopic")]
    fn weight_count_mismatch_panics() {
        let q = qrels();
        let _ = ia_precision_weighted_at(&[DocId(0)], &q, 0, &[1.0], 1);
    }
}
