//! Fixed-width table formatting for the experiment binaries.
//!
//! Every bench binary prints its table in the same layout as the paper
//! (Table 2, Table 3, Figure 1's series) so EXPERIMENTS.md can juxtapose
//! paper-vs-measured rows directly.

/// A simple fixed-width text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are right-aligned; the first column left).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", cell, width = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with three decimals (the paper's Table 3 precision).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a duration in milliseconds with two decimals (Table 2 style).
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["algo", "k=10", "k=1000"]);
        t.row(vec!["OptSelect".into(), "0.34".into(), "0.98".into()]);
        t.row(vec!["xQuAD".into(), "0.43".into(), "30.18".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("algo"));
        assert!(lines[2].contains("OptSelect"));
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.21349), "0.213");
        assert_eq!(ms(1425.8211), "1425.82");
    }
}
