//! Diversity-aware retrieval evaluation.
//!
//! §5 of the paper: "The results obtained for the diversity task of the
//! TREC 2009 Web track are evaluated according to the two official metrics:
//! α-NDCG and IA-P ... both are reported at five different rank cutoffs: 5,
//! 10, 20, 100, and 1000 ... α-NDCG is computed with α = 0.5" and
//! significance is checked with "the Wilcoxon signed-rank test at 0.05
//! level of significance".
//!
//! * [`andcg`] — α-NDCG (Clarke et al., SIGIR 2008) with the standard
//!   greedy ideal ranking,
//! * [`iap`] — intent-aware precision (Agrawal et al., WSDM 2009),
//! * [`ndcg`] — classic NDCG (Järvelin & Kekäläinen) — the α = 0 limit,
//! * [`wilcoxon`] — the Wilcoxon signed-rank test,
//! * [`report`] — fixed-width table formatting shared by the bench
//!   binaries that regenerate the paper's tables.

pub mod andcg;
pub mod extra;
pub mod iap;
pub mod ndcg;
pub mod report;
pub mod wilcoxon;

pub use andcg::{alpha_dcg_at, alpha_ndcg_at, ideal_alpha_dcg_at};
pub use extra::{
    average_precision, ia_average_precision, ia_mrr, mrr, precision_at, subtopic_recall_at,
};
pub use iap::ia_precision_at;
pub use ndcg::ndcg_at;
pub use report::Table;
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};

// Re-export the qrels types evaluated against (they live in the corpus
// crate because the synthetic testbed emits them at generation time).
pub use serpdiv_corpus::{Qrels, SubtopicId, TopicId};

/// The paper's five rank cutoffs (Table 3 columns).
pub const PAPER_CUTOFFS: [usize; 5] = [5, 10, 20, 100, 1000];
