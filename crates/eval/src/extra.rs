//! Additional retrieval/diversity metrics.
//!
//! The paper's §2 notes that Agrawal et al. "generalize some classical IR
//! metrics, including NDCG, MRR, and MAP, to explicitly account for the
//! value of diversification"; Zhai et al.'s subtopic-retrieval work
//! introduced subtopic recall. This module supplies those companions to
//! the two official metrics:
//!
//! * [`subtopic_recall_at`] — S-recall@k: fraction of a topic's subtopics
//!   covered by the top-k (Zhai, Cohen & Lafferty, SIGIR 2003),
//! * [`precision_at`] / [`average_precision`] — classical P@k and AP with
//!   any-subtopic binary relevance,
//! * [`ia_average_precision`] — intent-aware MAP (MAP-IA) with uniform
//!   intent weights,
//! * [`mrr`] / [`ia_mrr`] — (intent-aware) mean reciprocal rank.

use serpdiv_corpus::{Qrels, TopicId};
use serpdiv_index::DocId;

/// S-recall@k: `|∪_{d ∈ top-k} subtopics(d)| / #subtopics`.
pub fn subtopic_recall_at(ranking: &[DocId], qrels: &Qrels, topic: TopicId, k: usize) -> f64 {
    let m = qrels.num_subtopics(topic);
    if m == 0 {
        return 0.0;
    }
    let mut covered = vec![false; m];
    for &doc in ranking.iter().take(k) {
        for s in qrels.subtopics_of(topic, doc) {
            covered[s] = true;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / m as f64
}

/// Classical precision@k with any-subtopic binary relevance.
pub fn precision_at(ranking: &[DocId], qrels: &Qrels, topic: TopicId, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|&&d| qrels.is_relevant_any(topic, d))
        .count();
    hits as f64 / k as f64
}

/// Classical average precision (any-subtopic relevance), normalized by
/// the number of relevant documents of the topic.
pub fn average_precision(ranking: &[DocId], qrels: &Qrels, topic: TopicId) -> f64 {
    let m = qrels.num_subtopics(topic);
    let mut relevant: Vec<DocId> = Vec::new();
    for i in 0..m {
        for d in qrels.relevant_docs(topic, i) {
            if !relevant.contains(&d) {
                relevant.push(d);
            }
        }
    }
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (idx, &doc) in ranking.iter().enumerate() {
        if qrels.is_relevant_any(topic, doc) {
            hits += 1;
            sum += hits as f64 / (idx + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Intent-aware MAP with uniform intent weights: the mean over subtopics
/// of the per-subtopic average precision.
pub fn ia_average_precision(ranking: &[DocId], qrels: &Qrels, topic: TopicId) -> f64 {
    let m = qrels.num_subtopics(topic);
    if m == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..m {
        let relevant = qrels.relevant_docs(topic, i);
        if relevant.is_empty() {
            continue;
        }
        let mut hits = 0usize;
        let mut sum = 0.0;
        for (idx, &doc) in ranking.iter().enumerate() {
            if qrels.is_relevant(topic, i, doc) {
                hits += 1;
                sum += hits as f64 / (idx + 1) as f64;
            }
        }
        total += sum / relevant.len() as f64;
    }
    total / m as f64
}

/// Reciprocal rank of the first any-subtopic-relevant document.
pub fn mrr(ranking: &[DocId], qrels: &Qrels, topic: TopicId) -> f64 {
    ranking
        .iter()
        .position(|&d| qrels.is_relevant_any(topic, d))
        .map(|idx| 1.0 / (idx + 1) as f64)
        .unwrap_or(0.0)
}

/// Intent-aware MRR: mean over subtopics of the reciprocal rank of the
/// first document relevant to that subtopic.
pub fn ia_mrr(ranking: &[DocId], qrels: &Qrels, topic: TopicId) -> f64 {
    let m = qrels.num_subtopics(topic);
    if m == 0 {
        return 0.0;
    }
    (0..m)
        .map(|i| {
            ranking
                .iter()
                .position(|&d| qrels.is_relevant(topic, i, d))
                .map(|idx| 1.0 / (idx + 1) as f64)
                .unwrap_or(0.0)
        })
        .sum::<f64>()
        / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 subtopics: docs 0,1 → s0; doc 2 → s1; doc 3 → s2.
    fn qrels() -> Qrels {
        let mut q = Qrels::new();
        q.declare_topic(0, 3);
        q.add(0, 0, DocId(0));
        q.add(0, 0, DocId(1));
        q.add(0, 1, DocId(2));
        q.add(0, 2, DocId(3));
        q
    }

    #[test]
    fn s_recall_counts_distinct_subtopics() {
        let q = qrels();
        let r = vec![DocId(0), DocId(1), DocId(2)];
        assert!((subtopic_recall_at(&r, &q, 0, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((subtopic_recall_at(&r, &q, 0, 3) - 2.0 / 3.0).abs() < 1e-12);
        let diverse = vec![DocId(0), DocId(2), DocId(3)];
        assert!((subtopic_recall_at(&diverse, &q, 0, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_counts_relevant_prefix() {
        let q = qrels();
        let r = vec![DocId(0), DocId(9), DocId(2), DocId(8)];
        assert!((precision_at(&r, &q, 0, 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at(&r, &q, 0, 0), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        let q = qrels();
        let perfect = vec![DocId(0), DocId(1), DocId(2), DocId(3)];
        assert!((average_precision(&perfect, &q, 0) - 1.0).abs() < 1e-12);
        let nothing = vec![DocId(7), DocId(8)];
        assert_eq!(average_precision(&nothing, &q, 0), 0.0);
    }

    #[test]
    fn ia_map_rewards_early_coverage_of_all_intents() {
        let q = qrels();
        // Covering the two singleton intents first beats spending the
        // first two ranks on the doubly-judged subtopic 0.
        let diverse = vec![DocId(2), DocId(3), DocId(0)];
        let redundant = vec![DocId(0), DocId(1), DocId(2)];
        let d = ia_average_precision(&diverse, &q, 0);
        let r = ia_average_precision(&redundant, &q, 0);
        assert!(d > r, "diverse {d} vs redundant {r}");
        assert!((d - (1.0 / 6.0 + 1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_variants() {
        let q = qrels();
        let r = vec![DocId(9), DocId(2), DocId(3)];
        assert!((mrr(&r, &q, 0) - 0.5).abs() < 1e-12);
        // ia_mrr: s0 never found (0), s1 at rank 2 (0.5), s2 at rank 3.
        let expected = (0.0 + 0.5 + 1.0 / 3.0) / 3.0;
        assert!((ia_mrr(&r, &q, 0) - expected).abs() < 1e-12);
        assert_eq!(mrr(&[], &q, 0), 0.0);
    }

    #[test]
    fn unknown_topic_scores_zero() {
        let q = qrels();
        let r = vec![DocId(0)];
        assert_eq!(subtopic_recall_at(&r, &q, 7, 5), 0.0);
        assert_eq!(ia_average_precision(&r, &q, 7), 0.0);
        assert_eq!(ia_mrr(&r, &q, 7), 0.0);
    }
}
