//! Classic NDCG (Järvelin & Kekäläinen, TOIS 2002) with binary
//! any-subtopic gains — the α = 0 limit of α-NDCG (§5: "when α = 0, only
//! relevance is rewarded, and this metric is equivalent to the traditional
//! NDCG").

use serpdiv_corpus::{Qrels, TopicId};
use serpdiv_index::DocId;

/// NDCG@k with binary gains ("relevant to any subtopic").
pub fn ndcg_at(ranking: &[DocId], qrels: &Qrels, topic: TopicId, k: usize) -> f64 {
    let dcg: f64 = ranking
        .iter()
        .take(k)
        .enumerate()
        .filter(|&(_, &d)| qrels.is_relevant_any(topic, d))
        .map(|(idx, _)| 1.0 / (2.0 + idx as f64).log2())
        .sum();
    // Ideal: count all relevant documents of the topic.
    let m = qrels.num_subtopics(topic);
    let mut relevant: Vec<DocId> = Vec::new();
    for i in 0..m {
        for d in qrels.relevant_docs(topic, i) {
            if !relevant.contains(&d) {
                relevant.push(d);
            }
        }
    }
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|idx| 1.0 / (2.0 + idx as f64).log2())
        .sum();
    if ideal <= 0.0 {
        0.0
    } else {
        (dcg / ideal).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qrels() -> Qrels {
        let mut q = Qrels::new();
        q.declare_topic(0, 2);
        q.add(0, 0, DocId(0));
        q.add(0, 1, DocId(1));
        q
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let q = qrels();
        assert!((ndcg_at(&[DocId(0), DocId(1)], &q, 0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn later_relevance_scores_lower() {
        let q = qrels();
        let early = ndcg_at(&[DocId(0), DocId(9)], &q, 0, 2);
        let late = ndcg_at(&[DocId(9), DocId(0)], &q, 0, 2);
        assert!(early > late && late > 0.0);
    }

    #[test]
    fn no_relevant_scores_zero() {
        let q = qrels();
        assert_eq!(ndcg_at(&[DocId(5)], &q, 0, 5), 0.0);
        assert_eq!(ndcg_at(&[], &q, 0, 5), 0.0);
    }

    #[test]
    fn agrees_with_alpha_ndcg_at_alpha_zero_on_disjoint_subtopics() {
        // With one doc per subtopic (no redundancy possible) α=0-NDCG and
        // classic NDCG coincide.
        let q = qrels();
        let ranking = vec![DocId(1), DocId(5), DocId(0)];
        let a = crate::andcg::alpha_ndcg_at(&ranking, &q, 0, 0.0, 3);
        let c = ndcg_at(&ranking, &q, 0, 3);
        assert!((a - c).abs() < 1e-9, "α-NDCG {a} vs NDCG {c}");
    }
}
