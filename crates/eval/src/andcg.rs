//! α-NDCG — novelty-and-diversity NDCG (Clarke et al., SIGIR 2008).
//!
//! The gain of the document at rank `r` (1-based) is
//!
//! ```text
//! G[r] = Σ_i J(d_r, i) · (1 − α)^{c_i(r−1)}
//! ```
//!
//! where `J(d,i)` is the binary subtopic judgement and `c_i(r−1)` counts
//! earlier documents relevant to subtopic `i` — repeated coverage of the
//! same subtopic decays geometrically by `1 − α`. Gains are discounted by
//! `log₂(1 + r)` and normalized by the *ideal* DCG, computed greedily (the
//! true ideal is NP-hard; the greedy ideal is the standard used by TREC's
//! `ndeval`). At `α = 0` the metric degenerates to classic NDCG with
//! binary any-subtopic gains (§5 of the paper).

use serpdiv_corpus::{Qrels, TopicId};
use serpdiv_index::DocId;

/// α-DCG@k of `ranking` for `topic`.
pub fn alpha_dcg_at(ranking: &[DocId], qrels: &Qrels, topic: TopicId, alpha: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "α must lie in [0,1]");
    let m = qrels.num_subtopics(topic);
    let mut seen = vec![0u32; m];
    let mut dcg = 0.0;
    for (idx, &doc) in ranking.iter().take(k).enumerate() {
        let rank = idx + 1;
        let mut gain = 0.0;
        for (i, count) in seen.iter_mut().enumerate() {
            if qrels.is_relevant(topic, i, doc) {
                gain += (1.0 - alpha).powi(*count as i32);
                *count += 1;
            }
        }
        dcg += gain / (1.0 + rank as f64).log2();
    }
    dcg
}

/// Greedy ideal α-DCG@k: repeatedly append the judged document with the
/// largest marginal gain.
pub fn ideal_alpha_dcg_at(qrels: &Qrels, topic: TopicId, alpha: f64, k: usize) -> f64 {
    let m = qrels.num_subtopics(topic);
    // Pool: every document judged relevant to at least one subtopic.
    let mut pool: Vec<DocId> = Vec::new();
    for i in 0..m {
        for d in qrels.relevant_docs(topic, i) {
            if !pool.contains(&d) {
                pool.push(d);
            }
        }
    }
    pool.sort_unstable();

    let mut seen = vec![0u32; m];
    let mut used = vec![false; pool.len()];
    let mut dcg = 0.0;
    for rank in 1..=k.min(pool.len()) {
        // Pick the unused document with the largest marginal gain.
        let mut best: Option<(f64, usize)> = None;
        for (pi, &doc) in pool.iter().enumerate() {
            if used[pi] {
                continue;
            }
            let gain: f64 = (0..m)
                .filter(|&i| qrels.is_relevant(topic, i, doc))
                .map(|i| (1.0 - alpha).powi(seen[i] as i32))
                .sum();
            let better = match best {
                None => true,
                Some((bg, _)) => gain > bg,
            };
            if better {
                best = Some((gain, pi));
            }
        }
        let Some((gain, pi)) = best else { break };
        if gain <= 0.0 {
            break;
        }
        used[pi] = true;
        for (i, count) in seen.iter_mut().enumerate() {
            if qrels.is_relevant(topic, i, pool[pi]) {
                *count += 1;
            }
        }
        dcg += gain / (1.0 + rank as f64).log2();
    }
    dcg
}

/// α-NDCG@k = α-DCG@k / ideal-α-DCG@k (0 when the topic has no relevant
/// documents).
pub fn alpha_ndcg_at(
    ranking: &[DocId],
    qrels: &Qrels,
    topic: TopicId,
    alpha: f64,
    k: usize,
) -> f64 {
    let ideal = ideal_alpha_dcg_at(qrels, topic, alpha, k);
    if ideal <= 0.0 {
        return 0.0;
    }
    (alpha_dcg_at(ranking, qrels, topic, alpha, k) / ideal).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Topic 0 with 2 subtopics: docs 0,1 → sub0; docs 2,3 → sub1.
    fn qrels() -> Qrels {
        let mut q = Qrels::new();
        q.declare_topic(0, 2);
        q.add(0, 0, DocId(0));
        q.add(0, 0, DocId(1));
        q.add(0, 1, DocId(2));
        q.add(0, 1, DocId(3));
        q
    }

    #[test]
    fn diverse_ranking_beats_redundant_ranking() {
        let q = qrels();
        let diverse = vec![DocId(0), DocId(2), DocId(1), DocId(3)];
        let redundant = vec![DocId(0), DocId(1), DocId(2), DocId(3)];
        let nd = alpha_ndcg_at(&diverse, &q, 0, 0.5, 4);
        let nr = alpha_ndcg_at(&redundant, &q, 0, 0.5, 4);
        assert!(nd > nr, "diverse {nd} must beat redundant {nr}");
    }

    #[test]
    fn ideal_ranking_scores_one() {
        let q = qrels();
        // The greedy ideal alternates subtopics.
        let ideal = vec![DocId(0), DocId(2), DocId(1), DocId(3)];
        let score = alpha_ndcg_at(&ideal, &q, 0, 0.5, 4);
        assert!((score - 1.0).abs() < 1e-9, "got {score}");
    }

    #[test]
    fn alpha_zero_ignores_redundancy() {
        let q = qrels();
        let diverse = vec![DocId(0), DocId(2)];
        let redundant = vec![DocId(0), DocId(1)];
        let nd = alpha_ndcg_at(&diverse, &q, 0, 0.0, 2);
        let nr = alpha_ndcg_at(&redundant, &q, 0, 0.0, 2);
        assert!((nd - nr).abs() < 1e-12, "α=0 is diversity-blind");
    }

    #[test]
    fn irrelevant_ranking_scores_zero() {
        let q = qrels();
        let bad = vec![DocId(7), DocId(8)];
        assert_eq!(alpha_ndcg_at(&bad, &q, 0, 0.5, 2), 0.0);
    }

    #[test]
    fn score_is_bounded() {
        let q = qrels();
        for ranking in [
            vec![DocId(0), DocId(1), DocId(2), DocId(3)],
            vec![DocId(3), DocId(3), DocId(0)], // duplicates in ranking
            vec![],
        ] {
            let s = alpha_ndcg_at(&ranking, &q, 0, 0.5, 5);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn repeated_subtopic_gain_decays() {
        let q = qrels();
        // Second doc of the same subtopic at rank 2 gains (1-α) = 0.5.
        let dcg = alpha_dcg_at(&[DocId(0), DocId(1)], &q, 0, 0.5, 2);
        let expected = 1.0 / 2.0f64.log2() + 0.5 / 3.0f64.log2();
        assert!((dcg - expected).abs() < 1e-12);
    }

    #[test]
    fn unknown_topic_scores_zero() {
        let q = qrels();
        assert_eq!(alpha_ndcg_at(&[DocId(0)], &q, 9, 0.5, 5), 0.0);
    }

    #[test]
    fn cutoff_truncates() {
        let q = qrels();
        let ranking = vec![DocId(9), DocId(0)]; // relevant doc at rank 2
        assert_eq!(alpha_ndcg_at(&ranking, &q, 0, 0.5, 1), 0.0);
        assert!(alpha_ndcg_at(&ranking, &q, 0, 0.5, 2) > 0.0);
    }
}
