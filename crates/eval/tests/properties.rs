//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;
use serpdiv_corpus::Qrels;
use serpdiv_eval::{
    alpha_ndcg_at, ia_precision_at, ndcg_at, subtopic_recall_at, wilcoxon_signed_rank,
};
use serpdiv_index::DocId;

/// Random qrels over `subtopics` subtopics and doc ids < 30, plus a random
/// ranking (possibly containing unjudged docs).
fn arb_world() -> impl Strategy<Value = (Qrels, Vec<DocId>)> {
    (
        1usize..6,
        prop::collection::vec((0usize..6, 0u32..30), 0..40),
        prop::collection::vec(0u32..40, 0..25),
    )
        .prop_map(|(m, judgments, ranking)| {
            let mut q = Qrels::new();
            q.declare_topic(0, m);
            for (sub, doc) in judgments {
                q.add(0, sub % m, DocId(doc));
            }
            (q, ranking.into_iter().map(DocId).collect())
        })
}

proptest! {
    /// All metrics stay in [0, 1] on arbitrary inputs.
    #[test]
    fn metrics_bounded((qrels, ranking) in arb_world(), k in 0usize..30, alpha in 0.0f64..1.0) {
        let a = alpha_ndcg_at(&ranking, &qrels, 0, alpha, k);
        prop_assert!((0.0..=1.0).contains(&a), "alpha-ndcg {a}");
        let i = ia_precision_at(&ranking, &qrels, 0, k);
        prop_assert!((0.0..=1.0).contains(&i), "ia-p {i}");
        let n = ndcg_at(&ranking, &qrels, 0, k);
        prop_assert!((0.0..=1.0).contains(&n), "ndcg {n}");
        let s = subtopic_recall_at(&ranking, &qrels, 0, k);
        prop_assert!((0.0..=1.0).contains(&s), "s-recall {s}");
    }

    /// Metrics are monotone in the cutoff for recall-type measures and the
    /// ideal ranking scores exactly 1 where defined.
    #[test]
    fn s_recall_monotone_in_k((qrels, ranking) in arb_world()) {
        let mut prev = 0.0;
        for k in 0..=ranking.len() {
            let s = subtopic_recall_at(&ranking, &qrels, 0, k);
            prop_assert!(s >= prev - 1e-12);
            prev = s;
        }
    }

    /// α-NDCG of any ranking never exceeds the greedy ideal's own score
    /// (the ideal reranking of the judged pool scores 1).
    #[test]
    fn alpha_ndcg_le_one_for_any_permutation((qrels, _r) in arb_world(), seed in 0u64..50) {
        // Build a permutation of the judged pool.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut pool: Vec<DocId> = (0..30).map(DocId).filter(|&d| {
            (0..qrels.num_subtopics(0)).any(|s| qrels.is_relevant(0, s, d))
        }).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        pool.shuffle(&mut rng);
        let score = alpha_ndcg_at(&pool, &qrels, 0, 0.5, pool.len().max(1));
        prop_assert!(score <= 1.0 + 1e-9);
    }

    /// Wilcoxon: p ∈ (0, 1], symmetric in the argument order, and equal
    /// samples give p = 1.
    #[test]
    fn wilcoxon_properties(
        a in prop::collection::vec(-100.0f64..100.0, 0..40),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.9 + 1.0).collect();
        let ab = wilcoxon_signed_rank(&a, &b);
        let ba = wilcoxon_signed_rank(&b, &a);
        prop_assert!(ab.p_value > 0.0 && ab.p_value <= 1.0);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9, "symmetry");
        prop_assert_eq!(ab.w_plus, ba.w_minus);
        let same = wilcoxon_signed_rank(&a, &a);
        prop_assert_eq!(same.p_value, 1.0);
    }
}
