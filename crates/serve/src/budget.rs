//! Per-request deadline budgets.
//!
//! A [`Budget`] is the absolute-deadline form of
//! [`EngineConfig::deadline_us`](crate::EngineConfig::deadline_us):
//! derived once when the engine accepts the request, carried through the
//! [`PipelineContext`](crate::PipelineContext), checked at every stage
//! edge by the driver, and propagated into the retrieval layer (where a
//! distributed retriever clamps its per-shard wire deadlines to
//! `min(configured, remaining)` — see
//! [`Retriever::retrieve_with_status_within`](serpdiv_index::Retriever::retrieve_with_status_within)).
//!
//! Checking against an absolute `Instant` rather than re-deriving
//! "elapsed ≥ deadline" at each site keeps every consumer consistent:
//! there is exactly one notion of "out of time" per request.

use std::time::{Duration, Instant};

/// The compute budget of one request: an absolute deadline, or unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget that never exhausts (deadline disabled).
    pub fn unlimited() -> Self {
        Budget { deadline: None }
    }

    /// The budget of a request accepted at `started` with `deadline_us`
    /// microseconds of compute (`0` ⇒ unlimited, matching the
    /// `EngineConfig` convention).
    pub fn from_deadline_us(started: Instant, deadline_us: u64) -> Self {
        if deadline_us == 0 {
            return Self::unlimited();
        }
        Budget {
            deadline: Some(started + Duration::from_micros(deadline_us)),
        }
    }

    /// Whether this budget ever exhausts.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
    }

    /// `true` once the deadline has passed (always `false` when
    /// unlimited).
    pub fn exhausted(&self) -> bool {
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Microseconds left before the deadline: `None` when unlimited,
    /// `Some(0)` once exhausted.
    pub fn remaining_us(&self) -> Option<u64> {
        self.deadline.map(|deadline| {
            deadline
                .saturating_duration_since(Instant::now())
                .as_micros()
                .min(u128::from(u64::MAX)) as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.exhausted());
        assert_eq!(b.remaining_us(), None);
        // The 0 convention maps to unlimited.
        assert_eq!(Budget::from_deadline_us(Instant::now(), 0), b);
    }

    #[test]
    fn deadline_counts_down_and_exhausts() {
        let b = Budget::from_deadline_us(Instant::now(), 1_000_000);
        assert!(b.is_limited());
        assert!(!b.exhausted());
        let remaining = b.remaining_us().unwrap();
        assert!(remaining > 0 && remaining <= 1_000_000);

        let spent = Budget::from_deadline_us(Instant::now() - Duration::from_millis(5), 1_000);
        assert!(spent.exhausted());
        assert_eq!(spent.remaining_us(), Some(0));
    }
}
