//! The serving engine: a thin driver over the stage pipeline, reading
//! all serving state through an epoch-published [`Generation`].

use crate::budget::Budget;
use crate::cache::{CachedSerp, ShardedResultCache};
use crate::generation::{
    BackgroundMerger, Generation, GenerationArtifacts, GenerationHandle, GenerationId, PublishError,
};
use crate::metrics::{Degradation, MetricsSnapshot, ServeMetrics};
use crate::request::{QueryRequest, RankedResult, SearchResponse, StageTimings};
use crate::slo::SloConfig;
use crate::stages::{default_stage_chain, PipelineContext, Stage, StageOutcome};
use crate::surrogates::SurrogateCache;
use parking_lot::RwLock;
use serpdiv_core::{
    AlgorithmKind, CompiledSpecStore, Diversifier, PipelineParams, SpecializationStore,
};
use serpdiv_index::{
    merge_sealed, DeltaIndex, DeltaRetriever, DocId, Document, ForwardIndex, InvertedIndex,
    Retriever, ScoredDoc, ScoringExecutor, SearchEngine as DphEngine, ShardedIndex,
    SnippetGenerator, SparseVector,
};
use serpdiv_mining::SpecializationModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deployment-time configuration of a [`SearchEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// `|Rq|`: candidates retrieved per diversified query (paper §5
    /// evaluates with a few hundred).
    pub n_candidates: usize,
    /// Diversification parameters (λ, threshold `c`, `|R_q′|`, snippet
    /// window).
    pub params: PipelineParams,
    /// Result-cache shards (more shards ⇒ less lock contention).
    pub cache_shards: usize,
    /// Total result-cache entries across shards; 0 disables the cache.
    pub cache_capacity: usize,
    /// Total candidate-surrogate cache entries (keyed `(generation, doc,
    /// query terms)`), sharded like the result cache; 0 disables it.
    pub surrogate_cache_capacity: usize,
    /// Document partitions of the retrieval layer: 1 serves from the
    /// plain index, ≥ 2 deploys a [`ShardedIndex`] that scores shards in
    /// parallel and scatter-gathers a bit-identical top-k.
    pub index_shards: usize,
    /// Size of the persistent [`ScoringExecutor`] pool backing parallel
    /// scatter (only meaningful with `index_shards ≥ 2`): 0 keeps the
    /// legacy per-query scoped-thread path; ≥ 1 deploys a long-lived
    /// pinned-scratch pool the sharded retriever submits latched task
    /// batches to, so scatter parallelism *composes* with the request
    /// [`WorkerPool`](crate::pool::WorkerPool) — scoring threads bounded
    /// by `request_workers + executor_threads`, each request worker
    /// helping drain only its own batch — instead of oversubscribing
    /// `request_workers × cores`. Deployments running several engines
    /// over one corpus should share a single executor (and retriever)
    /// through [`SearchEngine::with_retriever_and_forward`] rather than
    /// letting each engine build its own here.
    pub executor_threads: usize,
    /// Per-request compute budget in microseconds, materialized as a
    /// [`Budget`] when the engine accepts the request and enforced at
    /// **every stage edge** by the driver (plus inside the retrieve and
    /// select stages): when exhausted, the remaining stages are skipped
    /// and the baseline ranking prefix is served (`"DPH (degraded)"`).
    /// The remaining budget also clamps a distributed retriever's
    /// per-shard wire deadlines. 0 disables the deadline.
    pub deadline_us: u64,
    /// Compile a [`ForwardIndex`] at deploy time and serve snippet
    /// surrogates from it (zero-string `TermId`-stream path). `false`
    /// falls back to the per-request text path — surrogates are
    /// bit-identical either way, this only trades deploy-time compilation
    /// and memory for request latency.
    pub forward_index: bool,
    /// Hold the engine to a served-latency SLO: burn-rate alerting over
    /// the request stream, surfaced as
    /// [`MetricsSnapshot::slo_burn_alerts`]. `None` disables monitoring.
    pub slo: Option<SloConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_candidates: 100,
            params: PipelineParams::default(),
            cache_shards: 8,
            cache_capacity: 4096,
            surrogate_cache_capacity: 32_768,
            index_shards: 1,
            executor_threads: 0,
            deadline_us: 0,
            forward_index: true,
            slo: None,
        }
    }
}

/// The interned per-document `(url, title)` presentation table —
/// `Arc`-shared both across the engines of one deployment (see
/// [`SearchEngine::with_presentation`]) and into every
/// [`RankedResult`] an engine serves.
pub type PresentationTable = Arc<[(Arc<str>, Arc<str>)]>;

/// The five algorithm kinds, in the order the engine's pre-built
/// diversifier table is laid out.
const ALGORITHMS: [AlgorithmKind; 5] = [
    AlgorithmKind::Baseline,
    AlgorithmKind::OptSelect,
    AlgorithmKind::IaSelect,
    AlgorithmKind::XQuad,
    AlgorithmKind::Mmr,
];

/// A deployed, thread-safe diversified-search engine.
///
/// All read-only serving state — index, retrieval layer, specialization
/// model and stores, forward index, presentation table — lives in an
/// immutable [`Generation`] published through a [`GenerationHandle`]:
/// each request pins the current generation once and runs its whole
/// pipeline against that pin, so a concurrent
/// [`publish`](SearchEngine::publish) (hot swap) can never tear a
/// request across two epochs. All per-request state lives in a
/// [`PipelineContext`] on the request's own stack, so `&SearchEngine` is
/// `Sync` and one instance serves arbitrary concurrency.
///
/// The uncached path is a chain of [`Stage`] units (Detect → Retrieve →
/// Surrogate → Utility → Select by default); [`SearchEngine::search`] is
/// only the generation pin, the cache probe, and the stage-driver loop.
pub struct SearchEngine {
    /// The epoch-swap cell: requests pin, deploys publish.
    generations: GenerationHandle,
    stages: Vec<Box<dyn Stage>>,
    /// Pre-built diversifier trait objects, aligned with [`ALGORITHMS`].
    diversifiers: Vec<Box<dyn Diversifier + Send + Sync>>,
    cache: Option<ShardedResultCache>,
    surrogates: Option<SurrogateCache>,
    /// The standing cache carry-over decision from the latest publish,
    /// applied lazily on cache misses (see [`Self::plan_carry_over`]).
    carry: RwLock<Option<Arc<CarryPlan>>>,
    metrics: ServeMetrics,
    config: EngineConfig,
}

impl SearchEngine {
    /// Deploy the engine: builds the §4.1 [`SpecializationStore`] eagerly
    /// (one retrieval + snippet pass per distinct specialization in
    /// `model`), compiles it into the inverted utility index, and starts
    /// with empty caches at generation 1.
    pub fn deploy(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        config: EngineConfig,
    ) -> Self {
        let store = {
            let engine = DphEngine::new(&index);
            Arc::new(SpecializationStore::build(
                &model,
                &engine,
                config.params.k_spec_results,
                config.params.snippet_window,
            ))
        };
        Self::with_store(index, model, store, config)
    }

    /// Deploy with an externally built (possibly shared) store; compiles
    /// the inverted utility index from it.
    pub fn with_store(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        config: EngineConfig,
    ) -> Self {
        let compiled = Arc::new(CompiledSpecStore::compile(&store));
        Self::with_compiled_store(index, model, store, compiled, config)
    }

    /// Deploy with both the raw store and an externally compiled index
    /// (lets several engines — e.g. one per benchmarked algorithm — share
    /// one compilation). Builds the retrieval layer from
    /// [`EngineConfig::index_shards`]: the plain index at 1, a
    /// [`ShardedIndex`] otherwise — backed by a fresh persistent
    /// [`ScoringExecutor`] when [`EngineConfig::executor_threads`] is
    /// set. With one shard there is nothing to scatter, so
    /// `executor_threads` is normalized to 0 in the stored config —
    /// [`SearchEngine::config`] never reports a pool that was not built.
    /// Deployments with *several* engines should instead build one
    /// retriever + one executor and share them through
    /// [`Self::with_retriever_and_forward`].
    pub fn with_compiled_store(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        compiled: Arc<CompiledSpecStore>,
        mut config: EngineConfig,
    ) -> Self {
        if config.index_shards <= 1 {
            config.executor_threads = 0;
        }
        let retriever = Self::build_retriever(&index, &config);
        Self::with_retriever(index, retriever, model, store, compiled, config)
    }

    /// Deploy with an explicit retrieval layer. Compiles the
    /// [`ForwardIndex`] here when [`EngineConfig::forward_index`] is set;
    /// callers that deploy several engines over one corpus (e.g. the
    /// benches) should build it once and use
    /// [`with_retriever_and_forward`](Self::with_retriever_and_forward)
    /// instead.
    ///
    /// With an explicit retriever, [`EngineConfig::index_shards`] is *not*
    /// consulted to build anything — it only echoes through
    /// [`SearchEngine::config`] for reporting, so keep it consistent with
    /// the retriever you pass (e.g. the shard count of the shared
    /// `ShardedIndex`).
    pub fn with_retriever(
        index: Arc<InvertedIndex>,
        retriever: Arc<dyn Retriever>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        compiled: Arc<CompiledSpecStore>,
        config: EngineConfig,
    ) -> Self {
        let forward = config
            .forward_index
            .then(|| Arc::new(ForwardIndex::build(&index)));
        Self::with_retriever_and_forward(index, retriever, model, store, compiled, forward, config)
    }

    /// Deploy with every offline artifact supplied explicitly. Lets
    /// callers share one (expensive-to-build) [`ShardedIndex`] *and* one
    /// compiled [`ForwardIndex`] across several engines. `forward: None`
    /// serves surrogates through the per-request text path regardless of
    /// [`EngineConfig::forward_index`].
    pub fn with_retriever_and_forward(
        index: Arc<InvertedIndex>,
        retriever: Arc<dyn Retriever>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        compiled: Arc<CompiledSpecStore>,
        forward: Option<Arc<ForwardIndex>>,
        config: EngineConfig,
    ) -> Self {
        let generation = Arc::new(Generation::new(
            1, index, retriever, model, store, compiled, forward,
        ));
        Self::from_generation(generation, config)
    }

    /// Deploy around an already-bundled serving [`Generation`] — the
    /// constructor every other one funnels into, and the entry point for
    /// standing an engine up on a generation bundled elsewhere.
    pub fn from_generation(generation: Arc<Generation>, config: EngineConfig) -> Self {
        let cache = if config.cache_capacity > 0 {
            Some(ShardedResultCache::new(
                config.cache_shards.max(1),
                config.cache_capacity,
            ))
        } else {
            None
        };
        let surrogates = if config.surrogate_cache_capacity > 0 {
            Some(SurrogateCache::new(
                config.cache_shards.max(1),
                config.surrogate_cache_capacity,
            ))
        } else {
            None
        };
        SearchEngine {
            generations: GenerationHandle::new(generation),
            stages: default_stage_chain(),
            diversifiers: ALGORITHMS
                .iter()
                .map(|&a| a.diversifier(&config.params))
                .collect(),
            cache,
            surrogates,
            carry: RwLock::new(None),
            metrics: ServeMetrics::with_slo(config.slo),
            config,
        }
    }

    /// The retrieval layer [`EngineConfig`] describes, over `index`:
    /// the plain index at 1 shard, a (possibly executor-backed)
    /// [`ShardedIndex`] otherwise. Also used to re-derive the layer when
    /// a publish replaces the sealed index.
    fn build_retriever(index: &Arc<InvertedIndex>, config: &EngineConfig) -> Arc<dyn Retriever> {
        if config.index_shards > 1 {
            let mut sharded = ShardedIndex::build(index.clone(), config.index_shards);
            if config.executor_threads > 0 {
                sharded =
                    sharded.with_executor(Arc::new(ScoringExecutor::new(config.executor_threads)));
            }
            Arc::new(sharded)
        } else {
            index.clone()
        }
    }

    /// Replace the stage chain (builder-style, before the engine is
    /// shared). The default is [`default_stage_chain`]; custom chains
    /// insert, reorder or replace stages without touching the driver.
    pub fn with_stage_chain(mut self, stages: Vec<Box<dyn Stage>>) -> Self {
        assert!(!stages.is_empty(), "the stage chain cannot be empty");
        self.stages = stages;
        self
    }

    /// Intern the `(url, title)` presentation table of a corpus — the
    /// one-off string copy behind [`SearchEngine::with_presentation`];
    /// engines that never receive one build it lazily on first use.
    pub fn intern_presentation(index: &InvertedIndex) -> PresentationTable {
        index
            .store()
            .iter()
            .map(|d| (Arc::from(d.url.as_str()), Arc::from(d.title.as_str())))
            .collect()
    }

    /// Inject a shared presentation table into the current generation
    /// (builder-style, before the engine is shared), so several engines
    /// deployed over one corpus intern the urls/titles once instead of
    /// once each.
    ///
    /// # Panics
    /// Panics when the table size does not match the document store —
    /// a mismatched table would silently serve the wrong urls.
    pub fn with_presentation(self, table: PresentationTable) -> Self {
        self.generations.pin().set_presentation(table);
        self
    }

    /// Serve one request: pin the current generation, probe the result
    /// cache under that generation's tag, then drive the stage chain
    /// (see [`crate::stages`] for the lifecycle). The pin is taken
    /// exactly once — a hot swap completing mid-request is invisible to
    /// this request and takes effect from the next `search` call.
    pub fn search(&self, req: QueryRequest) -> SearchResponse {
        let start = Instant::now();
        let generation = self.generations.pin();
        if let Some(cache) = &self.cache {
            let found = cache
                .get(generation.id(), &req.query, req.k, req.algorithm)
                .or_else(|| self.carried_result(&generation, &req));
            if let Some(serp) = found {
                let timings = StageTimings {
                    total_us: elapsed_us(start),
                    ..StageTimings::default()
                };
                self.metrics
                    .record(true, serp.diversified, Degradation::None, timings);
                return SearchResponse {
                    query: req.query,
                    algorithm: serp.algorithm,
                    diversified: serp.diversified,
                    cache_hit: true,
                    degraded: false,
                    results: serp.results,
                    generation: generation.id(),
                    timings,
                };
            }
        }

        let (response, degradation) = self.compute(&generation, &req, start);
        // Degraded pages are an accident of this request (an exhausted
        // budget, a lost shard), not the canonical SERP — never cache
        // them.
        if !response.degraded {
            if let Some(cache) = &self.cache {
                cache.insert(
                    req.cache_key(generation.id()),
                    CachedSerp {
                        results: response.results.clone(),
                        diversified: response.diversified,
                        algorithm: response.algorithm,
                    },
                );
            }
        }
        self.metrics
            .record(false, response.diversified, degradation, response.timings);
        response
    }

    /// The uncached path: drive the stage chain over one
    /// [`PipelineContext`] against the request's pinned `generation`,
    /// timing each stage into its accounting bucket. Returns the
    /// response together with its degradation class (the response itself
    /// carries only the boolean).
    fn compute(
        &self,
        generation: &Generation,
        req: &QueryRequest,
        start: Instant,
    ) -> (SearchResponse, Degradation) {
        let budget = Budget::from_deadline_us(start, self.config.deadline_us);
        let mut ctx = PipelineContext::new(req, start, budget);
        for stage in &self.stages {
            let _ = serpdiv_chaos::failpoint(stage.kind().failpoint_site());
            let t = Instant::now();
            let outcome = stage.run(self, generation, &mut ctx);
            ctx.timings.add(stage.kind(), elapsed_us(t));
            if outcome == StageOutcome::Finish {
                break;
            }
            // Stage-edge budget check: an exhausted request degrades to
            // the baseline prefix *now* instead of paying for the
            // remaining stages. Only once candidates exist — before
            // retrieval there is nothing to serve, and the retrieve
            // stage handles the exhausted-on-entry case itself.
            if ctx.budget.exhausted() && !ctx.candidates.is_empty() && ctx.page.is_empty() {
                ctx.page = ctx.candidates.iter().take(req.k).copied().collect();
                ctx.algorithm = "DPH (degraded)";
                ctx.degraded = true;
                ctx.diversified = false;
                break;
            }
        }
        let degradation = if !ctx.degraded {
            Degradation::None
        } else if ctx.shard_loss {
            Degradation::ShardLoss
        } else {
            Degradation::Deadline
        };
        let results = Arc::new(self.materialize(generation, &ctx.page));
        ctx.timings.total_us = elapsed_us(start);
        let response = SearchResponse {
            query: req.query.clone(),
            algorithm: ctx.algorithm,
            diversified: ctx.diversified,
            cache_hit: false,
            degraded: ctx.degraded,
            results,
            generation: generation.id(),
            timings: ctx.timings,
        };
        (response, degradation)
    }

    /// Record one worker-pool queue wait against this engine's metrics
    /// (called by [`WorkerPool`](crate::pool::WorkerPool) at pickup; the
    /// engine itself never sees the queue).
    pub fn record_queue_wait(&self, us: u64) {
        self.metrics.record_queue_wait(us);
    }

    /// Count one hedged re-dispatch (a pool duplicating a straggling
    /// request; the engine serves both copies, first completion wins).
    pub(crate) fn record_hedge(&self) {
        self.metrics.record_hedge();
    }

    /// Record one response the worker pool produced *without* running
    /// [`search`](Self::search) — a shed rejection
    /// ([`Degradation::Shed`]) or a contained worker panic
    /// ([`Degradation::Internal`]). Keeps the metrics' class partition
    /// (`requests = cache_hits + diversified + passthrough + shed +
    /// internal_errors`) true even for requests the engine never saw.
    pub(crate) fn record_out_of_band(&self, degradation: Degradation, timings: StageTimings) {
        self.metrics.record(false, false, degradation, timings);
    }

    /// The candidate snippet surrogates for one request against its
    /// pinned `generation`, through the `(generation, doc, query-terms)`
    /// cache when enabled. With a compiled [`ForwardIndex`] deployed, a
    /// miss is a `TermId`-stream window scan plus direct TF-IDF
    /// emission; without one it falls back to the text oracle
    /// (bit-identical vectors, so the cache can be shared).
    pub(crate) fn surrogate_vectors(
        &self,
        generation: &Generation,
        query: &str,
        baseline: &[ScoredDoc],
    ) -> Vec<Arc<SparseVector>> {
        let snippets = SnippetGenerator::with_window(self.config.params.snippet_window);
        let index = generation.index();
        let sealed = index.stats().num_docs as usize;
        let compute = |doc, qterms: &[serpdiv_text::TermId]| match generation.forward() {
            Some(forward) => serpdiv_core::candidate_surrogate(forward, doc, qterms, &snippets),
            None => serpdiv_core::candidate_surrogate_naive(index, doc, qterms, &snippets),
        };
        // Fresh (delta) documents are scored against the delta's own
        // small index, with the query re-analyzed under the delta
        // vocabulary: a query term first seen in a delta document has no
        // sealed TermId at all, so reusing the sealed qterms would
        // silently drop it — and reusing the sealed cache key would
        // alias two different vectors. Delta surrogates are therefore
        // computed uncached; the delta is small and short-lived by
        // design (the background merger seals it), so the cache would
        // barely amortize anyway.
        let mut delta_qterms: Option<Vec<serpdiv_text::TermId>> = None;
        let qterms = Arc::new(index.analyze_query(query));
        // One plan read for the whole candidate loop: the probe itself is
        // per-miss, but the lock is not.
        let plan = self
            .surrogates
            .as_ref()
            .and_then(|_| self.carry_plan(generation.id()));
        baseline
            .iter()
            .map(|h| {
                if h.doc.index() >= sealed {
                    let delta = generation
                        .delta()
                        .expect("document beyond the sealed collection without a delta");
                    let local = delta
                        .local_id(h.doc)
                        .expect("document beyond the generation's document space");
                    let qt = delta_qterms.get_or_insert_with(|| delta.local().analyze_query(query));
                    return Arc::new(serpdiv_core::candidate_surrogate_naive(
                        delta.local(),
                        local,
                        qt,
                        &snippets,
                    ));
                }
                match &self.surrogates {
                    // On a miss under the current tag, the predecessor's
                    // vector is promoted instead of recomputed whenever
                    // the standing carry plan proves it byte-identical.
                    Some(cache) => {
                        cache.get_or_compute((generation.id(), h.doc, qterms.clone()), || {
                            plan.as_deref()
                                .and_then(|p| {
                                    self.carried_surrogate(cache, p, generation, h.doc, &qterms)
                                })
                                .unwrap_or_else(|| Arc::new(compute(h.doc, &qterms)))
                        })
                    }
                    None => Arc::new(compute(h.doc, &qterms)),
                }
            })
            .collect()
    }

    /// Resolve scored docs into presentable results — refcount bumps into
    /// the generation's interned presentation table, no string copies.
    fn materialize(&self, generation: &Generation, docs: &[ScoredDoc]) -> Vec<RankedResult> {
        let table = generation.presentation();
        docs.iter()
            .map(|h| {
                let (url, title) = table
                    .get(h.doc.index())
                    .map(|(u, t)| (u.clone(), t.clone()))
                    .unwrap_or_else(|| (Arc::from(""), Arc::from("")));
                RankedResult {
                    doc: h.doc,
                    score: h.score,
                    url,
                    title,
                }
            })
            .collect()
    }

    /// Pin the currently published serving [`Generation`]: one
    /// shared-mode pointer read plus an `Arc` clone. Requests do this
    /// once per call to [`search`](Self::search); external readers (the
    /// background merger, tests, oracles) use it to observe a consistent
    /// bundle.
    pub fn generation(&self) -> Arc<Generation> {
        self.generations.pin()
    }

    /// The currently published generation id (lock-free).
    pub fn current_generation_id(&self) -> GenerationId {
        self.generations.current_id()
    }

    /// Validate-then-publish a candidate generation (see
    /// [`GenerationHandle::publish`]); counts the outcome in the swap
    /// metrics. On any error the old generation keeps serving untouched
    /// — in-flight requests are never dropped, stalled, or torn.
    ///
    /// A successful publish then installs a [`CarryPlan`] (see
    /// [`Self::plan_carry_over`]): the decision of which predecessor
    /// cache entries stay valid is made here in O(artifact comparisons),
    /// and individual entries are promoted lazily as requests miss under
    /// the new tag — publish latency never scales with cache occupancy.
    pub fn publish(&self, candidate: Arc<Generation>) -> Result<GenerationId, PublishError> {
        // Best-effort pin of the generation being replaced. A concurrent
        // publisher may slip between this pin and ours, in which case the
        // plan validates (and mostly skips) against an older bundle —
        // soundness never depends on which generation this is.
        let previous = self.generations.pin();
        match self.generations.publish(candidate.clone()) {
            Ok(id) => {
                self.metrics.record_swap();
                self.plan_carry_over(previous, &candidate);
                Ok(id)
            }
            Err(e) => {
                self.metrics.record_swap_rejected();
                Err(e)
            }
        }
    }

    /// Decide what the predecessor generation's cache entries are worth
    /// under the freshly published `new` one — the fix for swap-induced
    /// cache cold start. Generation-tagged keys mean every swap used to
    /// demote the whole result + surrogate cache population to misses at
    /// once, even when the swap changed nothing the entries depend on (a
    /// republish, a delta merge). The plan recorded here re-tags exactly
    /// the entries whose bytes are proven unchanged — but one at a time,
    /// on the cache miss that would otherwise recompute them (see
    /// [`Self::carried_result`] / [`Self::carried_surrogate`]), so a
    /// publish costs a handful of pointer comparisons plus one idf-table
    /// scan no matter how full the caches are. Outcomes are counted into
    /// [`MetricsSnapshot::carried_over`] / `carry_skipped`.
    ///
    /// Soundness — an entry is promoted only when recomputing it under
    /// `new` would reproduce its bytes exactly:
    ///
    /// * A surrogate is a pure function of `(compiled forward entry, idf
    ///   table, numeric query-term ids)`. Entries carry wholesale when
    ///   the sealed artifacts are shared (`Arc`-equal index + forward —
    ///   republish and delta ingest), or per document when the idf
    ///   tables are bit-equal and the document's compiled entry is
    ///   byte-identical.
    /// * A SERP is a deterministic function of its candidate set, the
    ///   candidates' surrogates, the model/compiled pair, and the
    ///   presentation table. Entries carry under the all-`Arc`s-shared
    ///   fast path, or when re-retrieval under both generations returns
    ///   f64-bit-identical candidates (union delta statistics are what
    ///   make this hold across the delta merge), every candidate's
    ///   surrogate is provably unchanged (diversified pages only), and
    ///   the page re-materializes the same presentation bytes.
    ///
    /// The plan pins a bounded chain of predecessor generations (at most
    /// [`MAX_CARRY_HOPS`]), nearest first, each with its own pairwise
    /// validation mode against `new`: a page cached three republishes
    /// ago is still one probe away, so entries outlive any number of
    /// swaps as long as they are re-requested inside the chain's window.
    /// Each publish re-evaluates the surviving hops against the *new*
    /// generation (pointer comparisons plus at most one idf-table scan
    /// per hop) and drops hops that can no longer contribute — a
    /// corpus-changing swap truncates the chain, so dead generations are
    /// not kept alive. Entries that stay hot re-anchor at the current
    /// generation on promotion; cold ones age out of the LRU unpromoted.
    fn plan_carry_over(&self, previous: Arc<Generation>, new: &Generation) {
        if self.cache.is_none() && self.surrogates.is_none() {
            return;
        }
        let mut hops = Vec::with_capacity(MAX_CARRY_HOPS);
        // The direct predecessor is always probed — even when it can
        // prove nothing (a corpus swap), the probe is what counts its
        // doomed entries as skipped.
        hops.push(self.hop_for(&previous, new));
        if let Some(old) = self.carry.read().clone() {
            for hop in old.hops.iter() {
                if hops.len() >= MAX_CARRY_HOPS {
                    break;
                }
                let h = self.hop_for(&hop.previous, new);
                if h.useful(self.cache.is_some(), self.surrogates.is_some(), new) {
                    hops.push(h);
                }
            }
        }
        *self.carry.write() = Some(Arc::new(CarryPlan {
            target: new.id(),
            hops,
        }));
    }

    /// One chain link: what `previous`'s cache entries are worth under
    /// `new`, decided pairwise so every hop of the chain validates
    /// against the exact bundle its entries were computed under.
    fn hop_for(&self, previous: &Arc<Generation>, new: &Generation) -> CarryHop {
        let artifacts_shared = Arc::ptr_eq(previous.index(), new.index())
            && arcs_equal(previous.forward(), new.forward());
        let surrogates = if artifacts_shared {
            SurrogateCarry::All
        } else {
            match (previous.forward(), new.forward()) {
                (Some(a), Some(b)) if idf_tables_equal(a, b) => SurrogateCarry::PerDoc,
                _ => SurrogateCarry::Nothing,
            }
        };
        let results_all = artifacts_shared
            && Arc::ptr_eq(previous.retriever(), new.retriever())
            && Arc::ptr_eq(previous.compiled(), new.compiled())
            && Arc::ptr_eq(previous.model(), new.model())
            && arcs_equal(previous.delta(), new.delta());
        CarryHop {
            previous: previous.clone(),
            results_all,
            surrogates,
        }
    }

    /// The standing carry plan, if it promotes into exactly `target` —
    /// a request that pinned an older generation mid-swap never probes.
    fn carry_plan(&self, target: GenerationId) -> Option<Arc<CarryPlan>> {
        let plan = self.carry.read().clone()?;
        (plan.target == target).then_some(plan)
    }

    /// Resolve a result-cache miss from the plan's predecessor chain:
    /// probe each hop's tag, nearest first, and promote the first entry
    /// whose bytes are provably what a recompute under `generation`
    /// would serve (see [`Self::plan_carry_over`] for the argument). A
    /// refused probe counts as skipped and the walk continues — a later
    /// miss falls through to the pipeline, whose fresh page then shadows
    /// the stale entries for future requests.
    fn carried_result(&self, generation: &Generation, req: &QueryRequest) -> Option<CachedSerp> {
        let cache = self.cache.as_ref()?;
        let plan = self.carry_plan(generation.id())?;
        for hop in &plan.hops {
            let Some(serp) = cache.peek(hop.previous.id(), &req.query, req.k, req.algorithm) else {
                continue;
            };
            let ok = hop.results_all
                || self.result_entry_carries(
                    &hop.previous,
                    generation,
                    &req.query,
                    req.k,
                    &serp,
                    &hop.surrogates,
                );
            if ok {
                cache.insert(req.cache_key(generation.id()), serp.clone());
                self.metrics.record_carry(1, 0);
                return Some(serp);
            }
            self.metrics.record_carry(0, 1);
        }
        None
    }

    /// Resolve a surrogate-cache miss from the plan's predecessor chain:
    /// the per-entry half of the plan installed by
    /// [`Self::plan_carry_over`]. Walks the hops nearest first and
    /// returns the first pinned vector a hop proves byte-identical under
    /// `generation`; the caller inserts it under the new tag. The plan is
    /// read once per request (see [`Self::surrogate_vectors`]), not per
    /// candidate — a publisher's exclusive plan install should never
    /// queue behind a candidate loop's worth of read locks.
    fn carried_surrogate(
        &self,
        cache: &SurrogateCache,
        plan: &CarryPlan,
        generation: &Generation,
        doc: DocId,
        qterms: &Arc<Vec<serpdiv_text::TermId>>,
    ) -> Option<Arc<SparseVector>> {
        for hop in &plan.hops {
            let Some(vector) = cache.peek(&(hop.previous.id(), doc, qterms.clone())) else {
                continue;
            };
            if surrogate_entry_carries(&hop.surrogates, &hop.previous, generation, doc) {
                self.metrics.record_carry(1, 0);
                return Some(vector);
            }
            self.metrics.record_carry(0, 1);
        }
        None
    }

    /// Whether one cached SERP can be carried across a swap that changed
    /// at least one artifact: every input its recomputation reads must be
    /// proven byte-unchanged (see [`Self::plan_carry_over`] for the argument).
    fn result_entry_carries(
        &self,
        previous: &Generation,
        new: &Generation,
        query: &str,
        k: usize,
        serp: &CachedSerp,
        surrogate_carry: &SurrogateCarry,
    ) -> bool {
        // Detection and utility read the model/compiled pair.
        if !Arc::ptr_eq(previous.model(), new.model())
            || !Arc::ptr_eq(previous.compiled(), new.compiled())
        {
            return false;
        }
        // The exact candidate set the pipeline would fetch: `k` for
        // baseline/passthrough pages, the full candidate pool for
        // diversified ones — f64 bit for bit under both generations.
        let n = if serp.diversified {
            self.config.n_candidates.max(k)
        } else {
            k
        };
        let before = previous.retriever().retrieve(query, n);
        let after = new.retriever().retrieve(query, n);
        if before.len() != after.len()
            || before
                .iter()
                .zip(&after)
                .any(|(x, y)| x.doc != y.doc || x.score.to_bits() != y.score.to_bits())
        {
            return false;
        }
        // A diversified page recomputes every candidate's surrogate; the
        // analyzed query feeding them must also be stable across the two
        // vocabularies.
        if serp.diversified {
            if previous.index().analyze_query(query) != new.index().analyze_query(query) {
                return false;
            }
            let previous_sealed = previous.index().stats().num_docs as usize;
            let surrogates_ok = before.iter().all(|h| {
                if h.doc.index() >= previous_sealed {
                    // Delta-document surrogates are recomputed from the
                    // delta's own local index on every request: identical
                    // only when the delta bundle itself is shared.
                    arcs_equal(previous.delta(), new.delta())
                } else {
                    surrogate_entry_carries(surrogate_carry, previous, new, h.doc)
                }
            });
            if !surrogates_ok {
                return false;
            }
        }
        // The carried page must re-materialize to exactly the bytes the
        // new generation would serve (urls/titles come from the new
        // presentation table on a recompute).
        let table = new.presentation();
        serp.results.iter().all(|r| {
            let (url, title) = table
                .get(r.doc.index())
                .map(|(u, t)| (u.as_ref(), t.as_ref()))
                .unwrap_or(("", ""));
            url == r.url.as_ref() && title == r.title.as_ref()
        })
    }

    /// Decode, validate, and publish a shipped artifact bundle — what a
    /// deploy pipeline calls on a running engine. Every buffer goes
    /// through its checked deserializer (bad magic, version mismatch,
    /// truncation and corruption all surface as
    /// [`DecodeError`](serpdiv_index::DecodeError)), and any failure is
    /// a counted rejection: the serving generation is untouched, the
    /// pipeline gets the error, nothing crashes. The retrieval layer
    /// over the decoded index is rebuilt from this engine's own config
    /// (shard count, executor pool); the specialization model and raw
    /// store carry over from the serving generation.
    pub fn publish_artifacts(
        &self,
        artifacts: &GenerationArtifacts,
    ) -> Result<GenerationId, PublishError> {
        let current = self.generations.pin();
        let decoded = (|| -> Result<_, PublishError> {
            let analyzer = current.index().analyzer().clone();
            let index = Arc::new(InvertedIndex::from_bytes(&artifacts.index, analyzer)?);
            let forward = match &artifacts.forward {
                Some(bytes) => Some(Arc::new(ForwardIndex::from_bytes(bytes)?)),
                None => None,
            };
            let compiled = Arc::new(CompiledSpecStore::from_bytes(&artifacts.compiled)?);
            Ok((index, forward, compiled))
        })();
        let (index, forward, compiled) = match decoded {
            Ok(v) => v,
            Err(e) => {
                self.metrics.record_swap_rejected();
                return Err(e);
            }
        };
        let retriever = Self::build_retriever(&index, &self.config);
        let candidate = Generation::new(
            artifacts.id,
            index,
            retriever,
            current.model().clone(),
            current.store().clone(),
            compiled,
            forward,
        );
        self.publish(Arc::new(candidate))
    }

    /// Ingest fresh documents without rebuilding the sealed index:
    /// publishes a successor generation whose [`DeltaIndex`] holds the
    /// current delta's documents plus `docs`, retrieved through a
    /// [`DeltaRetriever`] that gathers the sealed collection and the
    /// delta side by side. Near-real-time semantics: the new documents
    /// are searchable as soon as the publish lands; the background
    /// merger (or an explicit [`merge_delta`](Self::merge_delta)) later
    /// folds them into a sealed index bit-identical to a from-scratch
    /// build.
    ///
    /// # Panics
    /// Panics when `docs` do not continue the generation's document id
    /// space densely (delta ids must follow sealed + delta ids).
    pub fn ingest(&self, docs: Vec<Document>) -> Result<GenerationId, PublishError> {
        let current = self.generations.pin();
        let mut pending: Vec<Document> =
            current.delta().map_or_else(Vec::new, |d| d.docs().to_vec());
        pending.extend(docs);
        let delta = Arc::new(DeltaIndex::build(current.index(), pending));
        let retriever: Arc<dyn Retriever> = Arc::new(DeltaRetriever::new(
            current.sealed_retriever().clone(),
            current.index().clone(),
            delta.clone(),
        ));
        self.publish(Arc::new(current.next().with_delta(delta, retriever)))
    }

    /// Fold the current generation's delta into its sealed base
    /// ([`merge_sealed`] — bit-identical to a from-scratch build over
    /// the concatenated document stream) and publish the merged
    /// successor: fresh retrieval layer per this engine's config, fresh
    /// forward index when the generation served one, no delta.
    pub fn merge_delta(&self) -> Result<GenerationId, PublishError> {
        let current = self.generations.pin();
        let Some(delta) = current.delta() else {
            return Err(PublishError::Inconsistent("no delta to merge"));
        };
        let merged = Arc::new(merge_sealed(current.index(), delta));
        let forward = current
            .forward()
            .is_some()
            .then(|| Arc::new(ForwardIndex::build(&merged)));
        let retriever = Self::build_retriever(&merged, &self.config);
        self.publish(Arc::new(
            current.next().with_sealed(merged, retriever, forward),
        ))
    }

    /// Publish an identical successor under the next id — every artifact
    /// `Arc`-shared, so the swap is refcount-cheap. The soak suites and
    /// `serve_bench --swap-every` use this to exercise the full swap
    /// machinery under load without changing what is served.
    pub fn republish(&self) -> Result<GenerationId, PublishError> {
        self.publish(Arc::new(self.generations.pin().next()))
    }

    /// Start the background delta merger watching this engine: whenever
    /// the published generation's delta holds at least `threshold`
    /// documents, it is sealed via [`merge_delta`](Self::merge_delta).
    /// Dropping the returned handle stops and joins the thread.
    pub fn spawn_merger(self: &Arc<Self>, threshold: usize, poll: Duration) -> BackgroundMerger {
        BackgroundMerger::spawn(self.clone(), threshold, poll)
    }

    /// The current generation's sealed inverted index.
    pub fn index(&self) -> Arc<InvertedIndex> {
        self.generations.pin().index().clone()
    }

    /// The current generation's retrieval layer (plain, sharded, delta,
    /// or custom).
    pub fn retriever(&self) -> Arc<dyn Retriever> {
        self.generations.pin().retriever().clone()
    }

    /// The current generation's specialization model.
    pub fn model(&self) -> Arc<SpecializationModel> {
        self.generations.pin().model().clone()
    }

    /// The current generation's precomputed §4.1 store.
    pub fn store(&self) -> Arc<SpecializationStore> {
        self.generations.pin().store().clone()
    }

    /// The current generation's compiled inverted utility index.
    pub fn compiled(&self) -> Arc<CompiledSpecStore> {
        self.generations.pin().compiled().clone()
    }

    /// The current generation's compiled forward index (`None` ⇒ the
    /// engine serves surrogates through the text path).
    pub fn forward(&self) -> Option<Arc<ForwardIndex>> {
        self.generations.pin().forward().cloned()
    }

    /// The pre-built [`Diversifier`] for `kind` (trait objects are
    /// constructed once at deploy time and shared by every request).
    pub fn diversifier_for(&self, kind: AlgorithmKind) -> &(dyn Diversifier + Send + Sync) {
        // Exhaustive match: adding an AlgorithmKind without extending
        // ALGORITHMS is a compile error here, not a serving-time panic.
        let i = match kind {
            AlgorithmKind::Baseline => 0,
            AlgorithmKind::OptSelect => 1,
            AlgorithmKind::IaSelect => 2,
            AlgorithmKind::XQuad => 3,
            AlgorithmKind::Mmr => 4,
        };
        debug_assert_eq!(ALGORITHMS[i], kind);
        &*self.diversifiers[i]
    }

    /// The result cache (`None` when disabled by configuration).
    pub fn cache(&self) -> Option<&ShardedResultCache> {
        self.cache.as_ref()
    }

    /// The candidate-surrogate cache (`None` when disabled).
    pub fn surrogate_cache(&self) -> Option<&SurrogateCache> {
        self.surrogates.as_ref()
    }

    /// Deployment configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Total requests served so far — one relaxed atomic load, for
    /// pollers that must not pay the full [`metrics`](Self::metrics)
    /// histogram snapshot per probe.
    pub fn requests_served(&self) -> u64 {
        self.metrics.requests_served()
    }

    /// Cumulative request metrics, stamped with the currently published
    /// generation id.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.generation = self.generations.current_id();
        snap
    }
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// The publish-time carry-over decision, applied lazily: which
/// predecessor generation cache entries may promote into the new one,
/// and what each promotion must validate first (see
/// [`SearchEngine::plan_carry_over`]).
struct CarryPlan {
    /// The generation entries promote *into* — probes apply only to
    /// requests pinned to exactly this generation.
    target: GenerationId,
    /// Predecessor generations entries may promote from, nearest first.
    /// Probes walk the chain and stop at the first entry found.
    hops: Vec<CarryHop>,
}

/// How many predecessor generations a [`CarryPlan`] keeps reachable.
/// Deeper chains widen the window an entry must be re-requested within
/// to survive, at the cost of pinning that many old generations (cheap
/// when they `Arc`-share artifacts — the republish/ingest case — and
/// bounded regardless).
const MAX_CARRY_HOPS: usize = 8;

/// One link of a [`CarryPlan`]: a pinned predecessor generation plus
/// the validation mode its entries need to promote into the plan's
/// target, computed pairwise against that target.
struct CarryHop {
    /// The generation entries promote *from*, kept alive so validation
    /// can re-retrieve and compare against the exact artifacts the
    /// entries were computed under.
    previous: Arc<Generation>,
    /// Every serving artifact is `Arc`-shared (a republish): result
    /// pages promote without per-entry validation.
    results_all: bool,
    /// How much of the predecessor's surrogate space stays valid.
    surrogates: SurrogateCarry,
}

impl CarryHop {
    /// Whether keeping this hop in the chain can ever promote anything.
    /// Result pages need at least the model/compiled pair shared for
    /// probe-time validation to have a chance; surrogates need a
    /// non-[`Nothing`](SurrogateCarry::Nothing) mode.
    fn useful(&self, has_cache: bool, has_surrogates: bool, new: &Generation) -> bool {
        let results_viable = has_cache
            && Arc::ptr_eq(self.previous.model(), new.model())
            && Arc::ptr_eq(self.previous.compiled(), new.compiled());
        let surrogates_viable =
            has_surrogates && !matches!(self.surrogates, SurrogateCarry::Nothing);
        results_viable || surrogates_viable
    }
}

/// How much of the previous generation's surrogate space stays valid
/// under a freshly published one (see
/// [`SearchEngine::plan_carry_over`]).
enum SurrogateCarry {
    /// Sealed artifacts are `Arc`-shared (republish, delta ingest):
    /// every entry.
    All,
    /// Bit-equal idf tables: entries whose document's compiled forward
    /// entry is byte-identical.
    PerDoc,
    /// Different statistics, or no compiled path to compare: nothing.
    Nothing,
}

/// Whether one sealed document's surrogates are provably unchanged
/// across the swap.
fn surrogate_entry_carries(
    carry: &SurrogateCarry,
    previous: &Generation,
    new: &Generation,
    doc: DocId,
) -> bool {
    match carry {
        SurrogateCarry::All => true,
        SurrogateCarry::PerDoc => match (previous.forward(), new.forward()) {
            (Some(a), Some(b)) => {
                doc.index() < a.num_docs().min(b.num_docs())
                    && a.doc_tokens(doc) == b.doc_tokens(doc)
                    && a.title_tf(doc) == b.title_tf(doc)
            }
            _ => false,
        },
        SurrogateCarry::Nothing => false,
    }
}

/// `Arc` identity over optional artifacts: equal when both absent or
/// both the same allocation.
fn arcs_equal<T: ?Sized>(a: Option<&Arc<T>>, b: Option<&Arc<T>>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => Arc::ptr_eq(a, b),
        (None, None) => true,
        _ => false,
    }
}

/// Bit-equality of two compiled idf tables — the whole-table half of the
/// surrogate purity argument in [`SearchEngine::plan_carry_over`].
fn idf_tables_equal(a: &ForwardIndex, b: &ForwardIndex) -> bool {
    a.idf_table().len() == b.idf_table().len()
        && a.idf_table()
            .iter()
            .zip(b.idf_table())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_index::{Document, IndexBuilder};

    /// The two-interpretation "apple" world of the core framework tests.
    fn corpus() -> Vec<Document> {
        let mut docs = Vec::new();
        for i in 0..5u32 {
            docs.push(Document::new(
                i,
                format!("http://tech/{i}"),
                "apple iphone",
                "apple iphone smartphone review chip battery display camera",
            ));
        }
        for i in 5..10u32 {
            docs.push(Document::new(
                i,
                format!("http://food/{i}"),
                "apple fruit",
                "apple fruit orchard sweet harvest vitamin juice recipe",
            ));
        }
        for i in 10..15u32 {
            docs.push(Document::new(
                i,
                format!("http://misc/{i}"),
                "",
                "weather forecast rain cloud wind storm",
            ));
        }
        docs
    }

    fn test_model() -> Arc<SpecializationModel> {
        Arc::new(
            SpecializationModel::from_json(
                r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
            )
            .unwrap(),
        )
    }

    fn deploy_docs(docs: Vec<Document>, config: EngineConfig) -> SearchEngine {
        let mut b = IndexBuilder::new();
        for doc in docs {
            b.add(doc);
        }
        SearchEngine::deploy(Arc::new(b.build()), test_model(), config)
    }

    fn deploy(config: EngineConfig) -> SearchEngine {
        deploy_docs(corpus(), config)
    }

    fn diversifying_config() -> EngineConfig {
        EngineConfig {
            n_candidates: 10,
            params: PipelineParams {
                utility: serpdiv_core::UtilityParams { threshold_c: 0.4 },
                ..PipelineParams::default()
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn ambiguous_query_is_diversified_with_provenance() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(out.diversified);
        assert!(!out.cache_hit);
        assert!(!out.degraded);
        assert_eq!(out.algorithm, "OptSelect");
        assert_eq!(out.generation, 1, "fresh deployments serve generation 1");
        assert_eq!(out.results.len(), 4);
        let tech = out.results.iter().filter(|r| r.doc.0 < 5).count();
        let food = out
            .results
            .iter()
            .filter(|r| (5..10).contains(&r.doc.0))
            .count();
        assert!(tech >= 1 && food >= 1, "tech={tech} food={food}");
        assert!(out.results.iter().all(|r| !r.url.is_empty()));
        assert!(out.timings.total_us >= out.timings.select_us);
    }

    #[test]
    fn repeated_request_hits_the_cache_with_identical_results() {
        let engine = deploy(diversifying_config());
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let first = engine.search(req.clone());
        let second = engine.search(req);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.results, second.results);
        assert_eq!(first.algorithm, second.algorithm);
        assert_eq!(first.generation, second.generation);
        let stats = engine.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let m = engine.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.generation, 1);
    }

    #[test]
    fn non_ambiguous_query_passes_through() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new(
            "weather forecast",
            3,
            AlgorithmKind::OptSelect,
        ));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (passthrough)");
        assert_eq!(out.results.len(), 3);
        assert_eq!(engine.metrics().passthrough, 1);
    }

    #[test]
    fn baseline_algorithm_skips_detection() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("apple", 5, AlgorithmKind::Baseline));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH");
        assert_eq!(out.results.len(), 5);
    }

    #[test]
    fn unknown_query_yields_empty_page() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("zeppelin", 5, AlgorithmKind::XQuad));
        assert!(out.results.is_empty());
        assert!(!out.diversified);
    }

    #[test]
    fn all_algorithms_return_distinct_docs() {
        let engine = deploy(diversifying_config());
        for algo in [
            AlgorithmKind::OptSelect,
            AlgorithmKind::IaSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::Mmr,
        ] {
            let out = engine.search(QueryRequest::new("apple", 5, algo));
            assert_eq!(out.results.len(), 5, "{algo:?}");
            let mut ids: Vec<u32> = out.results.iter().map(|r| r.doc.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "{algo:?} duplicates");
        }
    }

    #[test]
    fn cache_can_be_disabled() {
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        });
        assert!(engine.cache().is_none());
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let a = engine.search(req.clone());
        let b = engine.search(req);
        assert!(!a.cache_hit && !b.cache_hit);
        assert_eq!(
            a.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            b.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            "no cache still deterministic"
        );
    }

    #[test]
    fn store_is_prebuilt_at_deploy_time() {
        let engine = deploy(diversifying_config());
        assert_eq!(engine.store().len(), 2);
        assert!(engine.store().byte_size() > 0);
        // The compiled inverted index is built from the same store.
        assert_eq!(engine.compiled().len(), 2);
        assert!(engine.compiled().num_terms() > 0);
    }

    #[test]
    fn surrogate_cache_amortizes_repeated_queries() {
        // Result cache off, surrogate cache on: the second identical
        // request recomputes the SERP but hits the surrogate cache for
        // every candidate.
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        });
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let a = engine.search(req.clone());
        let stats = engine.surrogate_cache().unwrap().stats();
        assert_eq!(stats.hits, 0);
        let misses_after_first = stats.misses;
        assert!(misses_after_first > 0);
        let b = engine.search(req);
        let stats = engine.surrogate_cache().unwrap().stats();
        assert_eq!(stats.misses, misses_after_first, "no new surrogate work");
        assert_eq!(stats.hits, misses_after_first);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn surrogate_cache_can_be_disabled_without_changing_results() {
        let with = deploy(diversifying_config());
        let without = deploy(EngineConfig {
            surrogate_cache_capacity: 0,
            ..diversifying_config()
        });
        assert!(without.surrogate_cache().is_none());
        for algo in [AlgorithmKind::OptSelect, AlgorithmKind::Mmr] {
            let a = with.search(QueryRequest::new("apple", 5, algo));
            let b = without.search(QueryRequest::new("apple", 5, algo));
            assert_eq!(a.results, b.results, "{algo:?}");
        }
    }

    #[test]
    fn forward_index_is_compiled_by_default_and_optional() {
        let with = deploy(diversifying_config());
        assert!(with.forward().is_some());
        let without = deploy(EngineConfig {
            forward_index: false,
            ..diversifying_config()
        });
        assert!(without.forward().is_none());
        // The two paths serve identical pages for every algorithm.
        for algo in [
            AlgorithmKind::OptSelect,
            AlgorithmKind::IaSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::Mmr,
            AlgorithmKind::Baseline,
        ] {
            for query in ["apple", "weather forecast"] {
                let a = with.search(QueryRequest::new(query, 5, algo));
                let b = without.search(QueryRequest::new(query, 5, algo));
                assert_eq!(a.results, b.results, "{query} {algo:?}");
                assert_eq!(a.algorithm, b.algorithm);
            }
        }
    }

    #[test]
    fn materialized_results_share_the_presentation_table() {
        let engine = deploy(diversifying_config());
        let a = engine.search(QueryRequest::new("apple", 3, AlgorithmKind::Baseline));
        // Result cache off for the second engine-level computation: use a
        // different k so the page is recomputed, not served from cache.
        let b = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::Baseline));
        let shared = a.results.iter().any(|ra| {
            b.results
                .iter()
                .any(|rb| ra.doc == rb.doc && Arc::ptr_eq(&ra.url, &rb.url))
        });
        assert!(shared, "urls must be interned, not copied per request");
    }

    #[test]
    fn presentation_table_can_be_shared_across_engines() {
        let a = deploy(diversifying_config());
        let table = SearchEngine::intern_presentation(&a.index());
        let b = deploy(diversifying_config()).with_presentation(table.clone());
        let ra = a.search(QueryRequest::new("apple", 3, AlgorithmKind::Baseline));
        let rb = b.search(QueryRequest::new("apple", 3, AlgorithmKind::Baseline));
        assert_eq!(ra.results, rb.results);
        // Engine b's urls are refcounts into the injected table, not
        // fresh copies.
        assert!(rb
            .results
            .iter()
            .all(|r| table.iter().any(|(u, _)| Arc::ptr_eq(u, &r.url))));
    }

    #[test]
    #[should_panic(expected = "cover the document store")]
    fn mismatched_presentation_table_is_rejected() {
        let engine = deploy(diversifying_config());
        let _ = deploy(diversifying_config()).with_presentation(
            engine
                .index()
                .store()
                .iter()
                .take(2)
                .fold(Vec::new(), |mut acc, d| {
                    acc.push((Arc::from(d.url.as_str()), Arc::from(d.title.as_str())));
                    acc
                })
                .into(),
        );
    }

    #[test]
    fn sharded_engine_serves_identical_pages() {
        let unsharded = deploy(diversifying_config());
        for shards in [2, 4, 7] {
            let sharded = deploy(EngineConfig {
                index_shards: shards,
                ..diversifying_config()
            });
            for (query, algo) in [
                ("apple", AlgorithmKind::OptSelect),
                ("apple", AlgorithmKind::Mmr),
                ("apple", AlgorithmKind::Baseline),
                ("weather forecast", AlgorithmKind::OptSelect),
            ] {
                let a = unsharded.search(QueryRequest::new(query, 5, algo));
                let b = sharded.search(QueryRequest::new(query, 5, algo));
                assert_eq!(a.results, b.results, "{query} {algo:?} shards={shards}");
                assert_eq!(a.algorithm, b.algorithm);
            }
        }
    }

    #[test]
    fn executor_backed_engine_serves_identical_pages() {
        use serpdiv_index::{ScoringExecutor, ShardedIndex};
        let unsharded = deploy(diversifying_config());
        // Build the executor-backed retriever explicitly (threshold 0 so
        // every retrieval actually rides the pool on this tiny corpus)
        // and funnel it into an engine sharing the unsharded deployment's
        // artifacts.
        let executor = Arc::new(ScoringExecutor::new(2));
        let retriever: Arc<dyn Retriever> = Arc::new(
            ShardedIndex::build(unsharded.index().clone(), 4)
                .with_executor(executor)
                .with_parallel_threshold(0),
        );
        let pooled = SearchEngine::with_retriever(
            unsharded.index().clone(),
            retriever,
            unsharded.model().clone(),
            unsharded.store().clone(),
            unsharded.compiled().clone(),
            EngineConfig {
                index_shards: 4,
                executor_threads: 2,
                ..diversifying_config()
            },
        );
        for algo in [
            AlgorithmKind::Baseline,
            AlgorithmKind::OptSelect,
            AlgorithmKind::Mmr,
        ] {
            for query in ["apple", "weather forecast"] {
                let a = unsharded.search(QueryRequest::new(query, 5, algo));
                let b = pooled.search(QueryRequest::new(query, 5, algo));
                assert_eq!(a.results, b.results, "{query} {algo:?}");
                assert_eq!(a.algorithm, b.algorithm);
            }
        }
    }

    #[test]
    fn executor_threads_knob_deploys_a_pooled_sharded_retriever() {
        // The convenience path: EngineConfig alone must coherently attach
        // an executor to the sharded retriever it builds.
        let engine = deploy(EngineConfig {
            index_shards: 3,
            executor_threads: 2,
            ..diversifying_config()
        });
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert_eq!(out.results.len(), 4);
        assert_eq!(engine.config().executor_threads, 2);
        // One shard ⇒ nothing to scatter ⇒ no pool is built, and the
        // stored config reports that truth rather than echoing the knob.
        let unsharded = deploy(EngineConfig {
            index_shards: 1,
            executor_threads: 4,
            ..diversifying_config()
        });
        assert_eq!(unsharded.config().executor_threads, 0);
    }

    #[test]
    fn exhausted_deadline_degrades_to_baseline_passthrough() {
        // A 1 µs budget is always exhausted by the time select runs.
        let engine = deploy(EngineConfig {
            deadline_us: 1,
            ..diversifying_config()
        });
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(out.degraded);
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (degraded)");
        assert_eq!(out.results.len(), 4);
        // The degraded page is the baseline ranking prefix.
        let baseline = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::Baseline));
        assert_eq!(
            out.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            baseline.results.iter().map(|r| r.doc).collect::<Vec<_>>()
        );
        // Degraded pages are not cached: a repeat recomputes (and degrades
        // again) instead of hitting the cache.
        let again = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!again.cache_hit);
        assert!(again.degraded);
        assert_eq!(engine.metrics().degraded, 2);
    }

    #[test]
    fn generous_deadline_does_not_degrade() {
        let engine = deploy(EngineConfig {
            deadline_us: 60_000_000,
            ..diversifying_config()
        });
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!out.degraded);
        assert!(out.diversified);
        assert_eq!(out.algorithm, "OptSelect");
        assert_eq!(engine.metrics().degraded, 0);
    }

    #[test]
    fn select_without_utility_stage_degrades_instead_of_panicking() {
        use crate::stages::{DetectStage, RetrieveStage, SelectStage};
        // A custom chain that skips the surrogate and utility stages: the
        // select stage has no input and must fall back to the baseline
        // prefix rather than killing the worker.
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        })
        .with_stage_chain(vec![
            Box::new(DetectStage),
            Box::new(RetrieveStage),
            Box::new(SelectStage),
        ]);
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (passthrough)");
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn utility_without_surrogate_stage_degrades_instead_of_panicking() {
        use crate::stages::{DetectStage, RetrieveStage, SelectStage, UtilityStage};
        // Utility present but surrogates skipped: the vector/candidate
        // mismatch must degrade to the baseline prefix, not panic.
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        })
        .with_stage_chain(vec![
            Box::new(DetectStage),
            Box::new(RetrieveStage),
            Box::new(UtilityStage),
            Box::new(SelectStage),
        ]);
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (passthrough)");
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn custom_stage_chain_plugs_in_without_touching_the_driver() {
        use crate::stages::{StageKind, StageOutcome};

        /// Serves every request as an empty page.
        struct RefuseAll;
        impl Stage for RefuseAll {
            fn kind(&self) -> StageKind {
                StageKind::Detect
            }
            fn run<'a>(
                &self,
                _engine: &SearchEngine,
                _generation: &'a Generation,
                ctx: &mut PipelineContext<'a>,
            ) -> StageOutcome {
                ctx.algorithm = "refused";
                StageOutcome::Finish
            }
        }

        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        })
        .with_stage_chain(vec![Box::new(RefuseAll)]);
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert_eq!(out.algorithm, "refused");
        assert!(out.results.is_empty());
    }

    #[test]
    fn republish_swaps_generations_without_changing_pages() {
        let engine = deploy(diversifying_config());
        let before = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert_eq!(before.generation, 1);
        assert_eq!(engine.republish().unwrap(), 2);
        assert_eq!(engine.current_generation_id(), 2);
        let after = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert_eq!(after.generation, 2);
        // Same artifacts under a new id: the publish proved every byte
        // unchanged and carried the entry into generation 2, so the
        // repeat is a warm hit serving the identical page.
        assert!(after.cache_hit, "republish must not cold-start the cache");
        assert_eq!(before.results, after.results);
        let m = engine.metrics();
        assert_eq!((m.swaps, m.swap_rejected, m.generation), (1, 0, 2));
        assert!(m.carried_over > 0, "caches warm across an identical swap");
        assert_eq!(m.carry_skipped, 0, "nothing changed, nothing to skip");
    }

    #[test]
    fn stale_publish_is_rejected_and_counted() {
        let engine = deploy(diversifying_config());
        let stale = Arc::new(Generation::new(
            1, // does not advance the published id
            engine.index(),
            engine.retriever(),
            engine.model(),
            engine.store(),
            engine.compiled(),
            engine.forward(),
        ));
        match engine.publish(stale) {
            Err(PublishError::Stale { candidate, current }) => {
                assert_eq!((candidate, current), (1, 1));
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        assert_eq!(engine.current_generation_id(), 1);
        let m = engine.metrics();
        assert_eq!((m.swaps, m.swap_rejected), (0, 1));
    }

    #[test]
    fn ingested_documents_are_searchable_and_merge_seals_them() {
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        });
        // New weather documents continuing the id space at 15.
        let fresh: Vec<Document> = (15..18u32)
            .map(|i| {
                Document::new(
                    i,
                    format!("http://fresh/{i}"),
                    "storm warning",
                    "weather storm warning wind forecast emergency",
                )
            })
            .collect();
        engine.ingest(fresh).unwrap();
        assert_eq!(engine.current_generation_id(), 2);
        let gen = engine.generation();
        assert_eq!(gen.delta().unwrap().len(), 3);
        let out = engine.search(QueryRequest::new("storm", 6, AlgorithmKind::Baseline));
        assert!(
            out.results.iter().any(|r| r.doc.0 >= 15),
            "delta docs must be retrievable: {:?}",
            out.results.iter().map(|r| r.doc).collect::<Vec<_>>()
        );
        assert!(
            out.results
                .iter()
                .filter(|r| r.doc.0 >= 15)
                .all(|r| r.url.starts_with("http://fresh/")),
            "delta docs must materialize their own urls"
        );
        // Score honesty *before* the merge: the delta path ranks with
        // union statistics, so the pre-merge page is already bit-identical
        // to a from-scratch deployment over the full corpus — the same
        // oracle the merge will be held to.
        let mut full = corpus();
        full.extend((15..18u32).map(|i| {
            Document::new(
                i,
                format!("http://fresh/{i}"),
                "storm warning",
                "weather storm warning wind forecast emergency",
            )
        }));
        let oracle = deploy_docs(
            full,
            EngineConfig {
                cache_capacity: 0,
                ..diversifying_config()
            },
        );
        let expected = oracle.search(QueryRequest::new("storm", 6, AlgorithmKind::Baseline));
        assert_eq!(
            out.results, expected.results,
            "pre-merge pages rank with union statistics, not delta-local ones"
        );
        for (a, b) in out.results.iter().zip(expected.results.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "f64-bit-identical");
        }
        // Merge: the sealed successor carries no delta and is
        // bit-identical to a from-scratch build over the full corpus, so
        // the page matches a fresh deployment's exactly.
        engine.merge_delta().unwrap();
        assert_eq!(engine.current_generation_id(), 3);
        assert!(engine.generation().delta().is_none());
        assert_eq!(
            engine.index().to_bytes(),
            oracle.index().to_bytes(),
            "merged index must be bit-identical to a from-scratch build"
        );
        let merged = engine.search(QueryRequest::new("storm", 6, AlgorithmKind::Baseline));
        assert_eq!(merged.results, expected.results);
    }

    #[test]
    fn merge_without_delta_is_refused() {
        let engine = deploy(diversifying_config());
        assert!(matches!(
            engine.merge_delta(),
            Err(PublishError::Inconsistent("no delta to merge"))
        ));
        assert_eq!(engine.current_generation_id(), 1);
    }
}
