//! The serving engine: a thin driver over the stage pipeline, sharing
//! immutable deployment state across worker threads.

use crate::cache::{CachedSerp, ShardedResultCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::request::{QueryRequest, RankedResult, SearchResponse, StageTimings};
use crate::stages::{default_stage_chain, PipelineContext, Stage, StageOutcome};
use crate::surrogates::SurrogateCache;
use serpdiv_core::{
    AlgorithmKind, CompiledSpecStore, Diversifier, PipelineParams, SpecializationStore,
};
use serpdiv_index::{
    InvertedIndex, Retriever, ScoredDoc, SearchEngine as DphEngine, ShardedIndex, SnippetGenerator,
    SparseVector,
};
use serpdiv_mining::SpecializationModel;
use std::sync::Arc;
use std::time::Instant;

/// Deployment-time configuration of a [`SearchEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// `|Rq|`: candidates retrieved per diversified query (paper §5
    /// evaluates with a few hundred).
    pub n_candidates: usize,
    /// Diversification parameters (λ, threshold `c`, `|R_q′|`, snippet
    /// window).
    pub params: PipelineParams,
    /// Result-cache shards (more shards ⇒ less lock contention).
    pub cache_shards: usize,
    /// Total result-cache entries across shards; 0 disables the cache.
    pub cache_capacity: usize,
    /// Total candidate-surrogate cache entries (keyed `(doc, query
    /// terms)`), sharded like the result cache; 0 disables it.
    pub surrogate_cache_capacity: usize,
    /// Document partitions of the retrieval layer: 1 serves from the
    /// plain index, ≥ 2 deploys a [`ShardedIndex`] that scores shards in
    /// parallel and scatter-gathers a bit-identical top-k.
    pub index_shards: usize,
    /// Per-request compute budget in microseconds, enforced before the
    /// select stage: when exhausted, the diversifier is skipped and the
    /// baseline ranking is served (`"DPH (degraded)"`). 0 disables the
    /// deadline.
    pub deadline_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_candidates: 100,
            params: PipelineParams::default(),
            cache_shards: 8,
            cache_capacity: 4096,
            surrogate_cache_capacity: 32_768,
            index_shards: 1,
            deadline_us: 0,
        }
    }
}

/// The five algorithm kinds, in the order the engine's pre-built
/// diversifier table is laid out.
const ALGORITHMS: [AlgorithmKind; 5] = [
    AlgorithmKind::Baseline,
    AlgorithmKind::OptSelect,
    AlgorithmKind::IaSelect,
    AlgorithmKind::XQuad,
    AlgorithmKind::Mmr,
];

/// A deployed, thread-safe diversified-search engine.
///
/// Shares one immutable [`InvertedIndex`], [`Retriever`],
/// [`SpecializationModel`] and [`SpecializationStore`] across every worker
/// thread via `Arc` — no per-request cloning of index data. All
/// per-request state lives in a [`PipelineContext`] on the request's own
/// stack, so `&SearchEngine` is `Sync` and one instance serves arbitrary
/// concurrency.
///
/// The uncached path is a chain of [`Stage`] units (Detect → Retrieve →
/// Surrogate → Utility → Select by default); [`SearchEngine::search`] is
/// only the cache probe plus the stage-driver loop.
pub struct SearchEngine {
    index: Arc<InvertedIndex>,
    retriever: Arc<dyn Retriever>,
    model: Arc<SpecializationModel>,
    store: Arc<SpecializationStore>,
    compiled: Arc<CompiledSpecStore>,
    stages: Vec<Box<dyn Stage>>,
    /// Pre-built diversifier trait objects, aligned with [`ALGORITHMS`].
    diversifiers: Vec<Box<dyn Diversifier + Send + Sync>>,
    cache: Option<ShardedResultCache>,
    surrogates: Option<SurrogateCache>,
    metrics: ServeMetrics,
    config: EngineConfig,
}

impl SearchEngine {
    /// Deploy the engine: builds the §4.1 [`SpecializationStore`] eagerly
    /// (one retrieval + snippet pass per distinct specialization in
    /// `model`), compiles it into the inverted utility index, and starts
    /// with empty caches.
    pub fn deploy(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        config: EngineConfig,
    ) -> Self {
        let store = {
            let engine = DphEngine::new(&index);
            Arc::new(SpecializationStore::build(
                &model,
                &engine,
                config.params.k_spec_results,
                config.params.snippet_window,
            ))
        };
        Self::with_store(index, model, store, config)
    }

    /// Deploy with an externally built (possibly shared) store; compiles
    /// the inverted utility index from it.
    pub fn with_store(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        config: EngineConfig,
    ) -> Self {
        let compiled = Arc::new(CompiledSpecStore::compile(&store));
        Self::with_compiled_store(index, model, store, compiled, config)
    }

    /// Deploy with both the raw store and an externally compiled index
    /// (lets several engines — e.g. one per benchmarked algorithm — share
    /// one compilation). Builds the retrieval layer from
    /// [`EngineConfig::index_shards`]: the plain index at 1, a
    /// [`ShardedIndex`] otherwise.
    pub fn with_compiled_store(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        compiled: Arc<CompiledSpecStore>,
        config: EngineConfig,
    ) -> Self {
        let retriever: Arc<dyn Retriever> = if config.index_shards > 1 {
            Arc::new(ShardedIndex::build(index.clone(), config.index_shards))
        } else {
            index.clone()
        };
        Self::with_retriever(index, retriever, model, store, compiled, config)
    }

    /// Deploy with an explicit retrieval layer — the constructor every
    /// other one funnels into. Lets callers share one (expensive-to-build)
    /// [`ShardedIndex`] across several engines, or plug in a custom
    /// [`Retriever`] implementation.
    ///
    /// With an explicit retriever, [`EngineConfig::index_shards`] is *not*
    /// consulted to build anything — it only echoes through
    /// [`SearchEngine::config`] for reporting, so keep it consistent with
    /// the retriever you pass (e.g. the shard count of the shared
    /// `ShardedIndex`).
    pub fn with_retriever(
        index: Arc<InvertedIndex>,
        retriever: Arc<dyn Retriever>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        compiled: Arc<CompiledSpecStore>,
        config: EngineConfig,
    ) -> Self {
        let cache = if config.cache_capacity > 0 {
            Some(ShardedResultCache::new(
                config.cache_shards.max(1),
                config.cache_capacity,
            ))
        } else {
            None
        };
        let surrogates = if config.surrogate_cache_capacity > 0 {
            Some(SurrogateCache::new(
                config.cache_shards.max(1),
                config.surrogate_cache_capacity,
            ))
        } else {
            None
        };
        SearchEngine {
            index,
            retriever,
            model,
            store,
            compiled,
            stages: default_stage_chain(),
            diversifiers: ALGORITHMS
                .iter()
                .map(|&a| a.diversifier(&config.params))
                .collect(),
            cache,
            surrogates,
            metrics: ServeMetrics::default(),
            config,
        }
    }

    /// Replace the stage chain (builder-style, before the engine is
    /// shared). The default is [`default_stage_chain`]; custom chains
    /// insert, reorder or replace stages without touching the driver.
    pub fn with_stage_chain(mut self, stages: Vec<Box<dyn Stage>>) -> Self {
        assert!(!stages.is_empty(), "the stage chain cannot be empty");
        self.stages = stages;
        self
    }

    /// Serve one request: probe the result cache, then drive the stage
    /// chain (see [`crate::stages`] for the lifecycle).
    pub fn search(&self, req: QueryRequest) -> SearchResponse {
        let start = Instant::now();
        if let Some(cache) = &self.cache {
            if let Some(serp) = cache.get(&req.query, req.k, req.algorithm) {
                let timings = StageTimings {
                    total_us: elapsed_us(start),
                    ..StageTimings::default()
                };
                self.metrics.record(true, serp.diversified, false, timings);
                return SearchResponse {
                    query: req.query,
                    algorithm: serp.algorithm,
                    diversified: serp.diversified,
                    cache_hit: true,
                    degraded: false,
                    results: serp.results,
                    timings,
                };
            }
        }

        let response = self.compute(&req, start);
        // Degraded pages are a budget accident of this request, not the
        // canonical SERP — never cache them.
        if !response.degraded {
            if let Some(cache) = &self.cache {
                cache.insert(
                    req.cache_key(),
                    CachedSerp {
                        results: response.results.clone(),
                        diversified: response.diversified,
                        algorithm: response.algorithm,
                    },
                );
            }
        }
        self.metrics.record(
            false,
            response.diversified,
            response.degraded,
            response.timings,
        );
        response
    }

    /// The uncached path: drive the stage chain over one
    /// [`PipelineContext`], timing each stage into its accounting bucket.
    fn compute(&self, req: &QueryRequest, start: Instant) -> SearchResponse {
        let mut ctx = PipelineContext::new(req, start);
        for stage in &self.stages {
            let t = Instant::now();
            let outcome = stage.run(self, &mut ctx);
            ctx.timings.add(stage.kind(), elapsed_us(t));
            if outcome == StageOutcome::Finish {
                break;
            }
        }
        let results = Arc::new(self.materialize(&ctx.page));
        ctx.timings.total_us = elapsed_us(start);
        SearchResponse {
            query: req.query.clone(),
            algorithm: ctx.algorithm,
            diversified: ctx.diversified,
            cache_hit: false,
            degraded: ctx.degraded,
            results,
            timings: ctx.timings,
        }
    }

    /// The candidate snippet surrogates for one request, through the
    /// `(doc, query-terms)` cache when enabled.
    pub(crate) fn surrogate_vectors(
        &self,
        query: &str,
        baseline: &[ScoredDoc],
    ) -> Vec<Arc<SparseVector>> {
        let Some(cache) = &self.surrogates else {
            return serpdiv_core::candidate_surrogates(
                &self.index,
                query,
                baseline,
                self.config.params.snippet_window,
            );
        };
        let qterms = Arc::new(self.index.analyze_query(query));
        let snippets = SnippetGenerator::with_window(self.config.params.snippet_window);
        baseline
            .iter()
            .map(|h| {
                cache.get_or_compute((h.doc, qterms.clone()), || {
                    serpdiv_core::candidate_surrogate(&self.index, h.doc, &qterms, &snippets)
                })
            })
            .collect()
    }

    /// Resolve scored docs into presentable results.
    fn materialize(&self, docs: &[ScoredDoc]) -> Vec<RankedResult> {
        docs.iter()
            .map(|h| {
                let (url, title) = self
                    .index
                    .store()
                    .get(h.doc)
                    .map(|d| (d.url.clone(), d.title.clone()))
                    .unwrap_or_default();
                RankedResult {
                    doc: h.doc,
                    score: h.score,
                    url,
                    title,
                }
            })
            .collect()
    }

    /// The shared index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The deployed retrieval layer (plain, sharded, or custom).
    pub fn retriever(&self) -> &dyn Retriever {
        &*self.retriever
    }

    /// The deployed specialization model.
    pub fn model(&self) -> &Arc<SpecializationModel> {
        &self.model
    }

    /// The precomputed §4.1 store.
    pub fn store(&self) -> &Arc<SpecializationStore> {
        &self.store
    }

    /// The compiled inverted utility index.
    pub fn compiled(&self) -> &Arc<CompiledSpecStore> {
        &self.compiled
    }

    /// The pre-built [`Diversifier`] for `kind` (trait objects are
    /// constructed once at deploy time and shared by every request).
    pub fn diversifier_for(&self, kind: AlgorithmKind) -> &(dyn Diversifier + Send + Sync) {
        // Exhaustive match: adding an AlgorithmKind without extending
        // ALGORITHMS is a compile error here, not a serving-time panic.
        let i = match kind {
            AlgorithmKind::Baseline => 0,
            AlgorithmKind::OptSelect => 1,
            AlgorithmKind::IaSelect => 2,
            AlgorithmKind::XQuad => 3,
            AlgorithmKind::Mmr => 4,
        };
        debug_assert_eq!(ALGORITHMS[i], kind);
        &*self.diversifiers[i]
    }

    /// The result cache (`None` when disabled by configuration).
    pub fn cache(&self) -> Option<&ShardedResultCache> {
        self.cache.as_ref()
    }

    /// The candidate-surrogate cache (`None` when disabled).
    pub fn surrogate_cache(&self) -> Option<&SurrogateCache> {
        self.surrogates.as_ref()
    }

    /// Deployment configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Cumulative request metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_index::{Document, IndexBuilder};

    /// The two-interpretation "apple" world of the core framework tests.
    fn deploy(config: EngineConfig) -> SearchEngine {
        let mut b = IndexBuilder::new();
        for i in 0..5u32 {
            b.add(Document::new(
                i,
                format!("http://tech/{i}"),
                "apple iphone",
                "apple iphone smartphone review chip battery display camera",
            ));
        }
        for i in 5..10u32 {
            b.add(Document::new(
                i,
                format!("http://food/{i}"),
                "apple fruit",
                "apple fruit orchard sweet harvest vitamin juice recipe",
            ));
        }
        for i in 10..15u32 {
            b.add(Document::new(
                i,
                format!("http://misc/{i}"),
                "",
                "weather forecast rain cloud wind storm",
            ));
        }
        let index = Arc::new(b.build());
        let model = Arc::new(
            SpecializationModel::from_json(
                r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
            )
            .unwrap(),
        );
        SearchEngine::deploy(index, model, config)
    }

    fn diversifying_config() -> EngineConfig {
        EngineConfig {
            n_candidates: 10,
            params: PipelineParams {
                utility: serpdiv_core::UtilityParams { threshold_c: 0.4 },
                ..PipelineParams::default()
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn ambiguous_query_is_diversified_with_provenance() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(out.diversified);
        assert!(!out.cache_hit);
        assert!(!out.degraded);
        assert_eq!(out.algorithm, "OptSelect");
        assert_eq!(out.results.len(), 4);
        let tech = out.results.iter().filter(|r| r.doc.0 < 5).count();
        let food = out
            .results
            .iter()
            .filter(|r| (5..10).contains(&r.doc.0))
            .count();
        assert!(tech >= 1 && food >= 1, "tech={tech} food={food}");
        assert!(out.results.iter().all(|r| !r.url.is_empty()));
        assert!(out.timings.total_us >= out.timings.select_us);
    }

    #[test]
    fn repeated_request_hits_the_cache_with_identical_results() {
        let engine = deploy(diversifying_config());
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let first = engine.search(req.clone());
        let second = engine.search(req);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.results, second.results);
        assert_eq!(first.algorithm, second.algorithm);
        let stats = engine.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let m = engine.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.cache_hits, 1);
    }

    #[test]
    fn non_ambiguous_query_passes_through() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new(
            "weather forecast",
            3,
            AlgorithmKind::OptSelect,
        ));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (passthrough)");
        assert_eq!(out.results.len(), 3);
        assert_eq!(engine.metrics().passthrough, 1);
    }

    #[test]
    fn baseline_algorithm_skips_detection() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("apple", 5, AlgorithmKind::Baseline));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH");
        assert_eq!(out.results.len(), 5);
    }

    #[test]
    fn unknown_query_yields_empty_page() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("zeppelin", 5, AlgorithmKind::XQuad));
        assert!(out.results.is_empty());
        assert!(!out.diversified);
    }

    #[test]
    fn all_algorithms_return_distinct_docs() {
        let engine = deploy(diversifying_config());
        for algo in [
            AlgorithmKind::OptSelect,
            AlgorithmKind::IaSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::Mmr,
        ] {
            let out = engine.search(QueryRequest::new("apple", 5, algo));
            assert_eq!(out.results.len(), 5, "{algo:?}");
            let mut ids: Vec<u32> = out.results.iter().map(|r| r.doc.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "{algo:?} duplicates");
        }
    }

    #[test]
    fn cache_can_be_disabled() {
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        });
        assert!(engine.cache().is_none());
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let a = engine.search(req.clone());
        let b = engine.search(req);
        assert!(!a.cache_hit && !b.cache_hit);
        assert_eq!(
            a.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            b.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            "no cache still deterministic"
        );
    }

    #[test]
    fn store_is_prebuilt_at_deploy_time() {
        let engine = deploy(diversifying_config());
        assert_eq!(engine.store().len(), 2);
        assert!(engine.store().byte_size() > 0);
        // The compiled inverted index is built from the same store.
        assert_eq!(engine.compiled().len(), 2);
        assert!(engine.compiled().num_terms() > 0);
    }

    #[test]
    fn surrogate_cache_amortizes_repeated_queries() {
        // Result cache off, surrogate cache on: the second identical
        // request recomputes the SERP but hits the surrogate cache for
        // every candidate.
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        });
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let a = engine.search(req.clone());
        let stats = engine.surrogate_cache().unwrap().stats();
        assert_eq!(stats.hits, 0);
        let misses_after_first = stats.misses;
        assert!(misses_after_first > 0);
        let b = engine.search(req);
        let stats = engine.surrogate_cache().unwrap().stats();
        assert_eq!(stats.misses, misses_after_first, "no new surrogate work");
        assert_eq!(stats.hits, misses_after_first);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn surrogate_cache_can_be_disabled_without_changing_results() {
        let with = deploy(diversifying_config());
        let without = deploy(EngineConfig {
            surrogate_cache_capacity: 0,
            ..diversifying_config()
        });
        assert!(without.surrogate_cache().is_none());
        for algo in [AlgorithmKind::OptSelect, AlgorithmKind::Mmr] {
            let a = with.search(QueryRequest::new("apple", 5, algo));
            let b = without.search(QueryRequest::new("apple", 5, algo));
            assert_eq!(a.results, b.results, "{algo:?}");
        }
    }

    #[test]
    fn sharded_engine_serves_identical_pages() {
        let unsharded = deploy(diversifying_config());
        for shards in [2, 4, 7] {
            let sharded = deploy(EngineConfig {
                index_shards: shards,
                ..diversifying_config()
            });
            for (query, algo) in [
                ("apple", AlgorithmKind::OptSelect),
                ("apple", AlgorithmKind::Mmr),
                ("apple", AlgorithmKind::Baseline),
                ("weather forecast", AlgorithmKind::OptSelect),
            ] {
                let a = unsharded.search(QueryRequest::new(query, 5, algo));
                let b = sharded.search(QueryRequest::new(query, 5, algo));
                assert_eq!(a.results, b.results, "{query} {algo:?} shards={shards}");
                assert_eq!(a.algorithm, b.algorithm);
            }
        }
    }

    #[test]
    fn exhausted_deadline_degrades_to_baseline_passthrough() {
        // A 1 µs budget is always exhausted by the time select runs.
        let engine = deploy(EngineConfig {
            deadline_us: 1,
            ..diversifying_config()
        });
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(out.degraded);
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (degraded)");
        assert_eq!(out.results.len(), 4);
        // The degraded page is the baseline ranking prefix.
        let baseline = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::Baseline));
        assert_eq!(
            out.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            baseline.results.iter().map(|r| r.doc).collect::<Vec<_>>()
        );
        // Degraded pages are not cached: a repeat recomputes (and degrades
        // again) instead of hitting the cache.
        let again = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!again.cache_hit);
        assert!(again.degraded);
        assert_eq!(engine.metrics().degraded, 2);
    }

    #[test]
    fn generous_deadline_does_not_degrade() {
        let engine = deploy(EngineConfig {
            deadline_us: 60_000_000,
            ..diversifying_config()
        });
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!out.degraded);
        assert!(out.diversified);
        assert_eq!(out.algorithm, "OptSelect");
        assert_eq!(engine.metrics().degraded, 0);
    }

    #[test]
    fn select_without_utility_stage_degrades_instead_of_panicking() {
        use crate::stages::{DetectStage, RetrieveStage, SelectStage};
        // A custom chain that skips the surrogate and utility stages: the
        // select stage has no input and must fall back to the baseline
        // prefix rather than killing the worker.
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        })
        .with_stage_chain(vec![
            Box::new(DetectStage),
            Box::new(RetrieveStage),
            Box::new(SelectStage),
        ]);
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (passthrough)");
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn utility_without_surrogate_stage_degrades_instead_of_panicking() {
        use crate::stages::{DetectStage, RetrieveStage, SelectStage, UtilityStage};
        // Utility present but surrogates skipped: the vector/candidate
        // mismatch must degrade to the baseline prefix, not panic.
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        })
        .with_stage_chain(vec![
            Box::new(DetectStage),
            Box::new(RetrieveStage),
            Box::new(UtilityStage),
            Box::new(SelectStage),
        ]);
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (passthrough)");
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn custom_stage_chain_plugs_in_without_touching_the_driver() {
        use crate::stages::{StageKind, StageOutcome};

        /// Serves every request as an empty page.
        struct RefuseAll;
        impl Stage for RefuseAll {
            fn kind(&self) -> StageKind {
                StageKind::Detect
            }
            fn run<'a>(
                &self,
                _engine: &'a SearchEngine,
                ctx: &mut PipelineContext<'a>,
            ) -> StageOutcome {
                ctx.algorithm = "refused";
                StageOutcome::Finish
            }
        }

        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        })
        .with_stage_chain(vec![Box::new(RefuseAll)]);
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert_eq!(out.algorithm, "refused");
        assert!(out.results.is_empty());
    }
}
