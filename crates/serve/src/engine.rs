//! The serving engine: per-request wiring of the full diversification
//! stack over shared immutable state.

use crate::cache::{CachedSerp, ShardedResultCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::request::{QueryRequest, RankedResult, SearchResponse, StageTimings};
use crate::surrogates::SurrogateCache;
use serpdiv_core::{
    assemble_input_from_surrogates, run_algorithm, AlgorithmKind, CompiledSpecStore,
    PipelineParams, SpecializationStore,
};
use serpdiv_index::{
    InvertedIndex, ScoredDoc, SearchEngine as Retriever, SnippetGenerator, SparseVector,
};
use serpdiv_mining::SpecializationModel;
use std::sync::Arc;
use std::time::Instant;

/// Deployment-time configuration of a [`SearchEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// `|Rq|`: candidates retrieved per diversified query (paper §5
    /// evaluates with a few hundred).
    pub n_candidates: usize,
    /// Diversification parameters (λ, threshold `c`, `|R_q′|`, snippet
    /// window).
    pub params: PipelineParams,
    /// Result-cache shards (more shards ⇒ less lock contention).
    pub cache_shards: usize,
    /// Total result-cache entries across shards; 0 disables the cache.
    pub cache_capacity: usize,
    /// Total candidate-surrogate cache entries (keyed `(doc, query
    /// terms)`), sharded like the result cache; 0 disables it.
    pub surrogate_cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_candidates: 100,
            params: PipelineParams::default(),
            cache_shards: 8,
            cache_capacity: 4096,
            surrogate_cache_capacity: 32_768,
        }
    }
}

/// A deployed, thread-safe diversified-search engine.
///
/// Shares one immutable [`InvertedIndex`], [`SpecializationModel`] and
/// [`SpecializationStore`] across every worker thread via `Arc` — no
/// per-request cloning of index data. All per-request state lives on the
/// request's own stack, so `&SearchEngine` is `Sync` and one instance
/// serves arbitrary concurrency.
pub struct SearchEngine {
    index: Arc<InvertedIndex>,
    model: Arc<SpecializationModel>,
    store: Arc<SpecializationStore>,
    compiled: Arc<CompiledSpecStore>,
    cache: Option<ShardedResultCache>,
    surrogates: Option<SurrogateCache>,
    metrics: ServeMetrics,
    config: EngineConfig,
}

impl SearchEngine {
    /// Deploy the engine: builds the §4.1 [`SpecializationStore`] eagerly
    /// (one retrieval + snippet pass per distinct specialization in
    /// `model`), compiles it into the inverted utility index, and starts
    /// with empty caches.
    pub fn deploy(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        config: EngineConfig,
    ) -> Self {
        let store = {
            let retriever = Retriever::new(&index);
            Arc::new(SpecializationStore::build(
                &model,
                &retriever,
                config.params.k_spec_results,
                config.params.snippet_window,
            ))
        };
        Self::with_store(index, model, store, config)
    }

    /// Deploy with an externally built (possibly shared) store; compiles
    /// the inverted utility index from it.
    pub fn with_store(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        config: EngineConfig,
    ) -> Self {
        let compiled = Arc::new(CompiledSpecStore::compile(&store));
        Self::with_compiled_store(index, model, store, compiled, config)
    }

    /// Deploy with both the raw store and an externally compiled index
    /// (lets several engines — e.g. one per benchmarked algorithm — share
    /// one compilation).
    pub fn with_compiled_store(
        index: Arc<InvertedIndex>,
        model: Arc<SpecializationModel>,
        store: Arc<SpecializationStore>,
        compiled: Arc<CompiledSpecStore>,
        config: EngineConfig,
    ) -> Self {
        let cache = if config.cache_capacity > 0 {
            Some(ShardedResultCache::new(
                config.cache_shards.max(1),
                config.cache_capacity,
            ))
        } else {
            None
        };
        let surrogates = if config.surrogate_cache_capacity > 0 {
            Some(SurrogateCache::new(
                config.cache_shards.max(1),
                config.surrogate_cache_capacity,
            ))
        } else {
            None
        };
        SearchEngine {
            index,
            model,
            store,
            compiled,
            cache,
            surrogates,
            metrics: ServeMetrics::default(),
            config,
        }
    }

    /// Serve one request through the full per-request lifecycle:
    ///
    /// 1. **cache** — `(query, k, algorithm)` probe;
    /// 2. **detect** — specialization-model lookup (Algorithm 1 ran
    ///    offline; online detection is a hash lookup, which is what makes
    ///    diversification affordable inside the serving loop);
    /// 3. **retrieve** — DPH top-`n` from the shared index;
    /// 4. **utility** — snippet surrogates + `Ũ(d|R_q′)` against the
    ///    precomputed store (§4.1);
    /// 5. **select** — the requested diversifier re-ranks the page.
    pub fn search(&self, req: QueryRequest) -> SearchResponse {
        let start = Instant::now();
        let key = req.cache_key();
        if let Some(cache) = &self.cache {
            if let Some(serp) = cache.get(&key) {
                let timings = StageTimings {
                    total_us: elapsed_us(start),
                    ..StageTimings::default()
                };
                self.metrics.record(true, serp.diversified, timings);
                return SearchResponse {
                    query: req.query,
                    algorithm: serp.algorithm,
                    diversified: serp.diversified,
                    cache_hit: true,
                    results: serp.results,
                    timings,
                };
            }
        }

        let response = self.compute(&req, start);
        if let Some(cache) = &self.cache {
            cache.insert(
                key,
                CachedSerp {
                    results: response.results.clone(),
                    diversified: response.diversified,
                    algorithm: response.algorithm,
                },
            );
        }
        self.metrics
            .record(false, response.diversified, response.timings);
        response
    }

    /// The uncached pipeline.
    fn compute(&self, req: &QueryRequest, start: Instant) -> SearchResponse {
        let retriever = Retriever::new(&self.index);
        let mut timings = StageTimings::default();

        // Detect.
        let t = Instant::now();
        let entry = if req.algorithm == AlgorithmKind::Baseline {
            None
        } else {
            self.model.get(&req.query)
        };
        timings.detect_us = elapsed_us(t);

        let (docs, diversified, name): (Vec<ScoredDoc>, bool, &'static str) = match entry {
            None => {
                // Baseline passthrough: retrieve exactly k.
                let t = Instant::now();
                let hits = retriever.search(&req.query, req.k);
                timings.retrieve_us = elapsed_us(t);
                let name = if req.algorithm == AlgorithmKind::Baseline {
                    "DPH"
                } else {
                    "DPH (passthrough)"
                };
                (hits, false, name)
            }
            Some(entry) => {
                // Retrieve the candidate pool.
                let t = Instant::now();
                let n = self.config.n_candidates.max(req.k);
                let baseline = retriever.search(&req.query, n);
                timings.retrieve_us = elapsed_us(t);
                if baseline.is_empty() {
                    (Vec::new(), false, "DPH (passthrough)")
                } else {
                    // Surrogates: snippet vectors per candidate, memoized
                    // by (doc, query-terms) when the cache is enabled.
                    let t = Instant::now();
                    let vectors = self.surrogate_vectors(&req.query, &baseline);
                    timings.surrogate_us = elapsed_us(t);

                    // Utility: sparse accumulation against the compiled
                    // specialization index.
                    let t = Instant::now();
                    let input = assemble_input_from_surrogates(
                        entry,
                        &self.compiled,
                        &self.config.params,
                        vectors,
                        &baseline,
                    );
                    timings.utility_us = elapsed_us(t);

                    // Select.
                    let t = Instant::now();
                    let (indices, name) =
                        run_algorithm(req.algorithm, &input, req.k, self.config.params);
                    timings.select_us = elapsed_us(t);

                    let docs = indices.into_iter().map(|i| baseline[i]).collect();
                    (docs, true, name)
                }
            }
        };

        let results = Arc::new(self.materialize(&docs));
        timings.total_us = elapsed_us(start);
        SearchResponse {
            query: req.query.clone(),
            algorithm: name,
            diversified,
            cache_hit: false,
            results,
            timings,
        }
    }

    /// The candidate snippet surrogates for one request, through the
    /// `(doc, query-terms)` cache when enabled.
    fn surrogate_vectors(&self, query: &str, baseline: &[ScoredDoc]) -> Vec<Arc<SparseVector>> {
        let Some(cache) = &self.surrogates else {
            return serpdiv_core::candidate_surrogates(
                &self.index,
                query,
                baseline,
                self.config.params.snippet_window,
            );
        };
        let qterms = Arc::new(self.index.analyze_query(query));
        let snippets = SnippetGenerator::with_window(self.config.params.snippet_window);
        baseline
            .iter()
            .map(|h| {
                cache.get_or_compute((h.doc, qterms.clone()), || {
                    serpdiv_core::candidate_surrogate(&self.index, h.doc, &qterms, &snippets)
                })
            })
            .collect()
    }

    /// Resolve scored docs into presentable results.
    fn materialize(&self, docs: &[ScoredDoc]) -> Vec<RankedResult> {
        docs.iter()
            .map(|h| {
                let (url, title) = self
                    .index
                    .store()
                    .get(h.doc)
                    .map(|d| (d.url.clone(), d.title.clone()))
                    .unwrap_or_default();
                RankedResult {
                    doc: h.doc,
                    score: h.score,
                    url,
                    title,
                }
            })
            .collect()
    }

    /// The shared index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The deployed specialization model.
    pub fn model(&self) -> &Arc<SpecializationModel> {
        &self.model
    }

    /// The precomputed §4.1 store.
    pub fn store(&self) -> &Arc<SpecializationStore> {
        &self.store
    }

    /// The compiled inverted utility index.
    pub fn compiled(&self) -> &Arc<CompiledSpecStore> {
        &self.compiled
    }

    /// The result cache (`None` when disabled by configuration).
    pub fn cache(&self) -> Option<&ShardedResultCache> {
        self.cache.as_ref()
    }

    /// The candidate-surrogate cache (`None` when disabled).
    pub fn surrogate_cache(&self) -> Option<&SurrogateCache> {
        self.surrogates.as_ref()
    }

    /// Deployment configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Cumulative request metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use serpdiv_index::{Document, IndexBuilder};

    /// The two-interpretation "apple" world of the core framework tests.
    fn deploy(config: EngineConfig) -> SearchEngine {
        let mut b = IndexBuilder::new();
        for i in 0..5u32 {
            b.add(Document::new(
                i,
                format!("http://tech/{i}"),
                "apple iphone",
                "apple iphone smartphone review chip battery display camera",
            ));
        }
        for i in 5..10u32 {
            b.add(Document::new(
                i,
                format!("http://food/{i}"),
                "apple fruit",
                "apple fruit orchard sweet harvest vitamin juice recipe",
            ));
        }
        for i in 10..15u32 {
            b.add(Document::new(
                i,
                format!("http://misc/{i}"),
                "",
                "weather forecast rain cloud wind storm",
            ));
        }
        let index = Arc::new(b.build());
        let model = Arc::new(
            SpecializationModel::from_json(
                r#"{"entries":{"apple":{"query":"apple","specializations":[["apple iphone",0.6],["apple fruit",0.4]]}}}"#,
            )
            .unwrap(),
        );
        SearchEngine::deploy(index, model, config)
    }

    fn diversifying_config() -> EngineConfig {
        EngineConfig {
            n_candidates: 10,
            params: PipelineParams {
                utility: serpdiv_core::UtilityParams { threshold_c: 0.4 },
                ..PipelineParams::default()
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn ambiguous_query_is_diversified_with_provenance() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("apple", 4, AlgorithmKind::OptSelect));
        assert!(out.diversified);
        assert!(!out.cache_hit);
        assert_eq!(out.algorithm, "OptSelect");
        assert_eq!(out.results.len(), 4);
        let tech = out.results.iter().filter(|r| r.doc.0 < 5).count();
        let food = out
            .results
            .iter()
            .filter(|r| (5..10).contains(&r.doc.0))
            .count();
        assert!(tech >= 1 && food >= 1, "tech={tech} food={food}");
        assert!(out.results.iter().all(|r| !r.url.is_empty()));
        assert!(out.timings.total_us >= out.timings.select_us);
    }

    #[test]
    fn repeated_request_hits_the_cache_with_identical_results() {
        let engine = deploy(diversifying_config());
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let first = engine.search(req.clone());
        let second = engine.search(req);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.results, second.results);
        assert_eq!(first.algorithm, second.algorithm);
        let stats = engine.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let m = engine.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.cache_hits, 1);
    }

    #[test]
    fn non_ambiguous_query_passes_through() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new(
            "weather forecast",
            3,
            AlgorithmKind::OptSelect,
        ));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH (passthrough)");
        assert_eq!(out.results.len(), 3);
        assert_eq!(engine.metrics().passthrough, 1);
    }

    #[test]
    fn baseline_algorithm_skips_detection() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("apple", 5, AlgorithmKind::Baseline));
        assert!(!out.diversified);
        assert_eq!(out.algorithm, "DPH");
        assert_eq!(out.results.len(), 5);
    }

    #[test]
    fn unknown_query_yields_empty_page() {
        let engine = deploy(diversifying_config());
        let out = engine.search(QueryRequest::new("zeppelin", 5, AlgorithmKind::XQuad));
        assert!(out.results.is_empty());
        assert!(!out.diversified);
    }

    #[test]
    fn all_algorithms_return_distinct_docs() {
        let engine = deploy(diversifying_config());
        for algo in [
            AlgorithmKind::OptSelect,
            AlgorithmKind::IaSelect,
            AlgorithmKind::XQuad,
            AlgorithmKind::Mmr,
        ] {
            let out = engine.search(QueryRequest::new("apple", 5, algo));
            assert_eq!(out.results.len(), 5, "{algo:?}");
            let mut ids: Vec<u32> = out.results.iter().map(|r| r.doc.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "{algo:?} duplicates");
        }
    }

    #[test]
    fn cache_can_be_disabled() {
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        });
        assert!(engine.cache().is_none());
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let a = engine.search(req.clone());
        let b = engine.search(req);
        assert!(!a.cache_hit && !b.cache_hit);
        assert_eq!(
            a.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            b.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
            "no cache still deterministic"
        );
    }

    #[test]
    fn store_is_prebuilt_at_deploy_time() {
        let engine = deploy(diversifying_config());
        assert_eq!(engine.store().len(), 2);
        assert!(engine.store().byte_size() > 0);
        // The compiled inverted index is built from the same store.
        assert_eq!(engine.compiled().len(), 2);
        assert!(engine.compiled().num_terms() > 0);
    }

    #[test]
    fn surrogate_cache_amortizes_repeated_queries() {
        // Result cache off, surrogate cache on: the second identical
        // request recomputes the SERP but hits the surrogate cache for
        // every candidate.
        let engine = deploy(EngineConfig {
            cache_capacity: 0,
            ..diversifying_config()
        });
        let req = QueryRequest::new("apple", 4, AlgorithmKind::OptSelect);
        let a = engine.search(req.clone());
        let stats = engine.surrogate_cache().unwrap().stats();
        assert_eq!(stats.hits, 0);
        let misses_after_first = stats.misses;
        assert!(misses_after_first > 0);
        let b = engine.search(req);
        let stats = engine.surrogate_cache().unwrap().stats();
        assert_eq!(stats.misses, misses_after_first, "no new surrogate work");
        assert_eq!(stats.hits, misses_after_first);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn surrogate_cache_can_be_disabled_without_changing_results() {
        let with = deploy(diversifying_config());
        let without = deploy(EngineConfig {
            surrogate_cache_capacity: 0,
            ..diversifying_config()
        });
        assert!(without.surrogate_cache().is_none());
        for algo in [AlgorithmKind::OptSelect, AlgorithmKind::Mmr] {
            let a = with.search(QueryRequest::new("apple", 5, algo));
            let b = without.search(QueryRequest::new("apple", 5, algo));
            assert_eq!(a.results, b.results, "{algo:?}");
        }
    }
}
