//! The candidate-surrogate cache.
//!
//! Building a candidate's snippet surrogate (snippet extraction +
//! tokenize/stem + TF-IDF weighting) is the per-document cost of the
//! utility stage, and it is fully determined by `(document, query terms)`
//! — the same document retrieved again for the same analyzed query always
//! yields the same vector. Under a Zipfian query stream the same
//! `(doc, terms)` pairs recur constantly (repeated queries, and head
//! documents shared across related queries), so a sharded LRU in front of
//! surrogate construction amortizes the snippet→vector work the way the
//! result cache amortizes whole SERPs — while still serving *uncached*
//! SERPs, which is what makes it effective even for the traffic the result
//! cache misses.
//!
//! Values are `Arc<SparseVector>`: a hit is a refcount bump, and the
//! vector is shared zero-copy with the diversification input (and MMR).

use crate::cache::CacheStats;
use crate::lru::LruCache;
use parking_lot::Mutex;
use serpdiv_index::{DocId, SparseVector};
use serpdiv_text::TermId;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: the generation the vector was computed against, the
/// document, and the analyzed query terms the snippet was extracted for.
/// The generation tag keeps a hot swap from serving a previous
/// generation's vectors (a new generation's index may assign the same
/// `DocId` different content); stale entries stop matching and age out of
/// the LRU — no flush stall. The term list is `Arc`'d so one allocation
/// is shared by all candidates of a request; hashing/equality go through
/// the contents, so equal term lists from different requests still
/// collide (that's the point).
pub type SurrogateKey = (u64, DocId, Arc<Vec<TermId>>);

/// Sharded LRU cache of `(generation, doc, query-terms) → snippet
/// surrogate`.
#[derive(Debug)]
pub struct SurrogateCache {
    shards: Vec<Mutex<LruCache<SurrogateKey, Arc<SparseVector>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SurrogateCache {
    /// A cache of `shards` LRU shards holding at least `capacity` entries
    /// in total (per-shard capacity rounds up).
    ///
    /// # Panics
    /// Panics when `shards == 0` or `capacity == 0`.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity > 0, "need nonzero capacity");
        let per_shard = capacity.div_ceil(shards);
        SurrogateCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SurrogateKey) -> &Mutex<LruCache<SurrogateKey, Arc<SparseVector>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Fetch the surrogate for `key`, computing and inserting it on a
    /// miss. `compute` runs outside the shard lock, so a slow surrogate
    /// build never blocks other workers' lookups (two racing misses both
    /// compute; the deterministic construction makes either result
    /// correct). It returns the `Arc` directly so a caller resolving the
    /// miss from elsewhere — the cross-generation carry-over probe —
    /// shares the vector instead of copying it.
    pub fn get_or_compute(
        &self,
        key: SurrogateKey,
        compute: impl FnOnce() -> Arc<SparseVector>,
    ) -> Arc<SparseVector> {
        let shard = self.shard(&key);
        if let Some(v) = shard.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        shard.lock().insert(key, v.clone());
        v
    }

    /// Probe without touching the hit/miss counters — the carry-over
    /// path's look at the *predecessor* generation's tag, which is not a
    /// request-facing lookup (the request's own probe is already counted
    /// by [`get_or_compute`](Self::get_or_compute)).
    pub fn peek(&self, key: &SurrogateKey) -> Option<Arc<SparseVector>> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len()).sum(),
        }
    }

    /// Drop every cached surrogate and reset the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(doc: u32, terms: &[u32]) -> SurrogateKey {
        (
            1,
            DocId(doc),
            Arc::new(terms.iter().map(|&t| TermId(t)).collect()),
        )
    }

    fn gen_key(generation: u64, doc: u32, terms: &[u32]) -> SurrogateKey {
        (
            generation,
            DocId(doc),
            Arc::new(terms.iter().map(|&t| TermId(t)).collect()),
        )
    }

    fn vector(seed: f32) -> SparseVector {
        SparseVector::from_pairs([(TermId(1), seed)])
    }

    #[test]
    fn computes_once_then_hits() {
        let cache = SurrogateCache::new(4, 64);
        let mut calls = 0;
        let a = cache.get_or_compute(key(7, &[1, 2]), || {
            calls += 1;
            Arc::new(vector(1.0))
        });
        let b = cache.get_or_compute(key(7, &[1, 2]), || {
            calls += 1;
            Arc::new(vector(2.0))
        });
        assert_eq!(calls, 1, "second lookup must hit");
        assert!(Arc::ptr_eq(&a, &b), "hit returns the shared vector");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn key_is_doc_and_term_contents() {
        let cache = SurrogateCache::new(2, 16);
        cache.get_or_compute(key(1, &[5]), || Arc::new(vector(1.0)));
        // Same doc, different query terms → different snippet → miss.
        cache.get_or_compute(key(1, &[6]), || Arc::new(vector(2.0)));
        // Different doc, same terms → miss.
        cache.get_or_compute(key(2, &[5]), || Arc::new(vector(3.0)));
        // Same doc and terms under a different generation → miss: a hot
        // swap must never serve the previous generation's vector.
        cache.get_or_compute(gen_key(2, 1, &[5]), || Arc::new(vector(4.0)));
        // Equal contents through a *different* Arc → hit.
        let hit = cache.get_or_compute(key(1, &[5]), || Arc::new(vector(9.0)));
        assert_eq!(hit.entries()[0].1, 1.0);
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn capacity_bounds_and_clear() {
        let cache = SurrogateCache::new(2, 4);
        for d in 0..100 {
            cache.get_or_compute(key(d, &[1]), || Arc::new(vector(d as f32 + 1.0)));
        }
        assert!(cache.stats().entries <= 4);
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(SurrogateCache::new(8, 256));
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let d = (t * 13 + i) % 32;
                        let got = cache
                            .get_or_compute(key(d, &[1, 2]), || Arc::new(vector(d as f32 + 1.0)));
                        assert_eq!(got.entries()[0].1, d as f32 + 1.0);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert!(stats.hits > 0);
    }
}
