//! SLO burn-rate monitoring over the serving metrics.
//!
//! The stage histograms (PR 8) attribute *where* latency goes; this
//! module answers the operator's next question: **is the error budget
//! burning fast enough to page someone?** An [`SloMonitor`] watches the
//! request stream in fixed-size count windows and compares each window's
//! bad-request rate against the configured objective, expressed as a
//! **burn rate** — the standard SRE multiple:
//!
//! ```text
//! burn = bad_rate / (1 − objective)
//! ```
//!
//! A burn of 1.0 consumes the error budget exactly as fast as the SLO
//! allows; an alert fires when a window's burn reaches
//! [`SloConfig::burn_threshold`] (e.g. 2.0 = burning budget twice as fast
//! as sustainable). The alert **latches** while consecutive windows stay
//! hot and **clears** on the first compliant window, so
//! [`alerts`](SloMonitor::alerts) counts incidents (rising edges), not
//! hot windows — the soak suites assert both the firing and the clearing.
//!
//! A request is *bad* when it was not served its full contract: any
//! degradation (deadline, shard loss, shed, contained panic) or an
//! end-to-end latency above [`SloConfig::target_us`]. Cache hits count —
//! they are real traffic with real latency.
//!
//! Windows are counted with relaxed atomics: under concurrency a bad
//! sample may slosh into the neighboring window. That is fine — burn-rate
//! alerting is a smoothed operational signal, not an exact ledger, and
//! the imprecision is bounded by one window.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The served-latency SLO an engine is held to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// A request slower than this (end-to-end `total_us`) is bad even if
    /// it was served its full page.
    pub target_us: u64,
    /// Fraction of requests that must be good (e.g. `0.99`); the error
    /// budget is `1 − objective`.
    pub objective: f64,
    /// Requests per evaluation window (clamped to ≥ 1).
    pub window: u64,
    /// Fire when a window's burn rate reaches this multiple of the
    /// sustainable rate.
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_us: 5_000,
            objective: 0.99,
            window: 256,
            burn_threshold: 2.0,
        }
    }
}

/// Windowed burn-rate evaluator fed by
/// [`ServeMetrics::record`](crate::ServeMetrics). Lock-free; one branch
/// and two relaxed atomics per request off the alerting path.
#[derive(Debug)]
pub struct SloMonitor {
    config: SloConfig,
    /// Requests observed in the current window.
    seen: AtomicU64,
    /// Bad requests in the current window.
    bad: AtomicU64,
    /// Cumulative rising-edge alert count.
    alerts: AtomicU64,
    /// Whether the alert is currently latched.
    active: AtomicBool,
}

impl SloMonitor {
    /// A monitor holding the engine to `config`.
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config,
            seen: AtomicU64::new(0),
            bad: AtomicU64::new(0),
            alerts: AtomicU64::new(0),
            active: AtomicBool::new(false),
        }
    }

    /// The configured SLO.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Feed one request outcome; evaluates the window when it fills.
    pub fn observe(&self, bad: bool) {
        if bad {
            self.bad.fetch_add(1, Ordering::Relaxed);
        }
        let window = self.config.window.max(1);
        let n = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(window) {
            let bad_in_window = self.bad.swap(0, Ordering::Relaxed);
            let bad_rate = bad_in_window as f64 / window as f64;
            let budget = (1.0 - self.config.objective).max(f64::EPSILON);
            let burn = bad_rate / budget;
            if burn >= self.config.burn_threshold {
                // Rising edge only: a latched alert staying hot is one
                // incident, not one alert per window.
                if !self.active.swap(true, Ordering::Relaxed) {
                    self.alerts.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                self.active.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Cumulative alert firings (rising edges).
    pub fn alerts(&self) -> u64 {
        self.alerts.load(Ordering::Relaxed)
    }

    /// Whether the alert is currently latched (the last evaluated window
    /// burned at or above threshold).
    pub fn alert_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(window: u64) -> SloMonitor {
        SloMonitor::new(SloConfig {
            target_us: 1_000,
            objective: 0.9, // budget 10%
            window,
            burn_threshold: 2.0, // alert at ≥ 20% bad per window
        })
    }

    #[test]
    fn clean_traffic_never_alerts() {
        let m = monitor(8);
        for _ in 0..64 {
            m.observe(false);
        }
        assert_eq!(m.alerts(), 0);
        assert!(!m.alert_active());
    }

    #[test]
    fn hot_window_fires_once_and_clear_window_clears() {
        let m = monitor(8);
        // Window 1: 4/8 bad = 50% ⇒ burn 5.0 ≥ 2.0 — fires.
        for i in 0..8 {
            m.observe(i % 2 == 0);
        }
        assert_eq!(m.alerts(), 1);
        assert!(m.alert_active());
        // Window 2: still hot — latched, no second alert.
        for i in 0..8 {
            m.observe(i % 2 == 0);
        }
        assert_eq!(m.alerts(), 1);
        assert!(m.alert_active());
        // Window 3: fully clean ⇒ burn 0 — clears.
        for _ in 0..8 {
            m.observe(false);
        }
        assert_eq!(m.alerts(), 1);
        assert!(!m.alert_active());
        // Window 4: hot again — a new incident, a second rising edge.
        for _ in 0..8 {
            m.observe(true);
        }
        assert_eq!(m.alerts(), 2);
    }

    #[test]
    fn burn_below_threshold_does_not_fire() {
        let m = monitor(16);
        // 1/16 bad ≈ 6.2% ⇒ burn 0.62 < 2.0.
        for i in 0..16 {
            m.observe(i == 3);
        }
        assert_eq!(m.alerts(), 0);
        assert!(!m.alert_active());
    }

    #[test]
    fn partial_window_holds_judgment() {
        let m = monitor(100);
        for _ in 0..99 {
            m.observe(true);
        }
        // The window has not filled: no verdict yet either way.
        assert_eq!(m.alerts(), 0);
        assert!(!m.alert_active());
        m.observe(true);
        assert_eq!(m.alerts(), 1);
    }

    #[test]
    fn zero_window_is_clamped_not_divided_by() {
        let m = SloMonitor::new(SloConfig {
            window: 0,
            ..SloConfig::default()
        });
        for _ in 0..4 {
            m.observe(true); // window clamps to 1: every request evaluates
        }
        assert_eq!(m.alerts(), 1, "latched after the first bad window");
        assert!(m.alert_active());
    }
}
